//! Circuit execution: binding inputs/parameters and running the simulator.
//!
//! [`run`] executes a [`Circuit`] on the exact statevector backend;
//! [`run_noisy`] executes it on the density-matrix backend with a
//! [`NoiseModel`] injecting a channel after every gate — the NISQ
//! mechanism used by the noise ablation.

use qmarl_qsim::density::DensityMatrix;
use qmarl_qsim::gate::Gate2;
use qmarl_qsim::noise::NoiseModel;
use qmarl_qsim::state::StateVector;

use crate::error::VqcError;
use crate::ir::{Angle, Circuit, InputId, Op, ParamId};

/// Resolves a symbolic angle against bound input/parameter vectors.
#[inline]
fn resolve(angle: Angle, inputs: &[f64], params: &[f64]) -> f64 {
    match angle {
        Angle::Input(InputId(i)) => inputs[i],
        Angle::Param(ParamId(p)) => params[p],
        Angle::Const(c) => c,
    }
}

fn check_bindings(circuit: &Circuit, inputs: &[f64], params: &[f64]) -> Result<(), VqcError> {
    if inputs.len() != circuit.input_count() {
        return Err(VqcError::InputLenMismatch {
            expected: circuit.input_count(),
            actual: inputs.len(),
        });
    }
    if params.len() != circuit.param_count() {
        return Err(VqcError::ParamLenMismatch {
            expected: circuit.param_count(),
            actual: params.len(),
        });
    }
    Ok(())
}

/// Runs the circuit from `|0…0⟩` with the given bindings, returning the
/// final pure state.
///
/// # Errors
///
/// Returns a binding-length error when `inputs`/`params` do not match the
/// circuit's declared arity; wire errors cannot occur for a validated
/// [`Circuit`].
pub fn run(circuit: &Circuit, inputs: &[f64], params: &[f64]) -> Result<StateVector, VqcError> {
    check_bindings(circuit, inputs, params)?;
    let mut state = StateVector::zero(circuit.n_qubits());
    for op in circuit.ops() {
        apply_op(&mut state, op, inputs, params)?;
    }
    Ok(state)
}

/// Applies one op to a statevector.
pub(crate) fn apply_op(
    state: &mut StateVector,
    op: &Op,
    inputs: &[f64],
    params: &[f64],
) -> Result<(), VqcError> {
    match *op {
        Op::Rot { qubit, axis, angle } => {
            let theta = resolve(angle, inputs, params);
            state.apply_gate1(qubit, &axis.gate(theta))?;
        }
        Op::ControlledRot {
            control,
            target,
            axis,
            angle,
        } => {
            let theta = resolve(angle, inputs, params);
            state.apply_controlled_gate1(control, target, &axis.gate(theta))?;
        }
        Op::Cnot { control, target } => state.apply_cnot(control, target)?,
        Op::Cz { control, target } => {
            state.apply_gate2(control, target, &Gate2::cz())?;
        }
        Op::Fixed { qubit, gate } => state.apply_gate1(qubit, &gate.gate())?,
    }
    Ok(())
}

/// Runs the circuit on the density-matrix backend, injecting the noise
/// model's channel after every gate (on every wire the gate touched).
///
/// # Errors
///
/// Returns binding-length errors as [`run`], or
/// [`VqcError::Simulator`] if a noise strength is invalid.
pub fn run_noisy(
    circuit: &Circuit,
    inputs: &[f64],
    params: &[f64],
    noise: &NoiseModel,
) -> Result<DensityMatrix, VqcError> {
    check_bindings(circuit, inputs, params)?;
    noise.validate()?;
    let mut rho = DensityMatrix::zero(circuit.n_qubits());
    for op in circuit.ops() {
        let (wires, is_two_qubit): (Vec<usize>, bool) = match *op {
            Op::Rot { qubit, axis, angle } => {
                let theta = resolve(angle, inputs, params);
                rho.apply_gate1(qubit, &axis.gate(theta))?;
                (vec![qubit], false)
            }
            Op::ControlledRot {
                control,
                target,
                axis,
                angle,
            } => {
                let theta = resolve(angle, inputs, params);
                rho.apply_gate2(control, target, &Gate2::controlled(&axis.gate(theta)))?;
                (vec![control, target], true)
            }
            Op::Cnot { control, target } => {
                rho.apply_gate2(control, target, &Gate2::cnot())?;
                (vec![control, target], true)
            }
            Op::Cz { control, target } => {
                rho.apply_gate2(control, target, &Gate2::cz())?;
                (vec![control, target], true)
            }
            Op::Fixed { qubit, gate } => {
                rho.apply_gate1(qubit, &gate.gate())?;
                (vec![qubit], false)
            }
        };
        let channel = if is_two_qubit {
            noise.after_gate2
        } else {
            noise.after_gate1
        };
        if let Some(c) = channel {
            let kraus = c.kraus_operators();
            for w in wires {
                rho.apply_kraus1(w, &kraus)?;
            }
        }
    }
    Ok(rho)
}

/// Runs **one quantum trajectory** of the circuit under the noise model:
/// the statevector interpreter with a Pauli error sampled from the
/// channel after every gate on every touched wire (control before target
/// — the same wire order as [`run_noisy`]'s Kraus application), drawn
/// from the caller's `rng`.
///
/// Averaging readouts over many trajectories with independent derived
/// streams converges to the [`run_noisy`] density result at
/// `O(1/√samples)` for Pauli channels (depolarizing, bit/phase flip);
/// damping channels are approximated — see
/// [`qmarl_qsim::noise::NoiseChannel::sample_pauli_error`]. This is the
/// reference interpreter the runtime's slab trajectory executor is tested
/// against.
///
/// # Errors
///
/// Returns binding-length errors as [`run`], or [`VqcError::Simulator`]
/// if a noise strength is invalid.
pub fn run_trajectory<R: rand::Rng + ?Sized>(
    circuit: &Circuit,
    inputs: &[f64],
    params: &[f64],
    noise: &NoiseModel,
    rng: &mut R,
) -> Result<StateVector, VqcError> {
    check_bindings(circuit, inputs, params)?;
    noise.validate()?;
    let mut state = StateVector::zero(circuit.n_qubits());
    for op in circuit.ops() {
        apply_op(&mut state, op, inputs, params)?;
        let (wires, channel) = match *op {
            Op::Rot { qubit, .. } | Op::Fixed { qubit, .. } => (vec![qubit], noise.after_gate1),
            Op::ControlledRot {
                control, target, ..
            }
            | Op::Cnot { control, target }
            | Op::Cz { control, target } => (vec![control, target], noise.after_gate2),
        };
        if let Some(c) = channel {
            for w in wires {
                if let Some(err) = c.sample_pauli_error(rng) {
                    state.apply_gate1(w, &err)?;
                }
            }
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{init_params, layered_ansatz};
    use crate::encoder::layered_angle_encoder;
    use qmarl_qsim::gate::RotationAxis as Ax;
    use qmarl_qsim::measure::expectation_z;
    use qmarl_qsim::noise::NoiseChannel;

    fn small_circuit() -> Circuit {
        let mut c = layered_angle_encoder(2, 2).unwrap();
        let var = layered_ansatz(2, 4).unwrap();
        c.append_shifted(&var).unwrap();
        c
    }

    #[test]
    fn binding_lengths_validated() {
        let c = small_circuit();
        assert!(run(&c, &[0.1], &[0.0; 4]).is_err());
        assert!(run(&c, &[0.1, 0.2], &[0.0; 3]).is_err());
        assert!(run(&c, &[0.1, 0.2], &[0.0; 4]).is_ok());
    }

    #[test]
    fn constant_angles_need_no_bindings() {
        let mut c = Circuit::new(1);
        c.rot(0, Ax::Y, Angle::Const(std::f64::consts::PI)).unwrap();
        let s = run(&c, &[], &[]).unwrap();
        assert!((expectation_z(&s, 0).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inputs_change_the_state() {
        let c = small_circuit();
        let params = init_params(4, 3);
        let a = run(&c, &[0.1, 0.2], &params).unwrap();
        let b = run(&c, &[1.4, -0.7], &params).unwrap();
        assert!(a.fidelity(&b).unwrap() < 1.0 - 1e-6);
    }

    #[test]
    fn params_change_the_state() {
        let c = small_circuit();
        let a = run(&c, &[0.3, 0.9], &init_params(4, 3)).unwrap();
        let b = run(&c, &[0.3, 0.9], &init_params(4, 4)).unwrap();
        assert!(a.fidelity(&b).unwrap() < 1.0 - 1e-6);
    }

    #[test]
    fn execution_preserves_norm() {
        let c = small_circuit();
        let s = run(&c, &[0.5, 1.1], &init_params(4, 0)).unwrap();
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noiseless_density_run_matches_statevector() {
        let c = small_circuit();
        let params = init_params(4, 5);
        let inputs = [0.4, 0.8];
        let psi = run(&c, &inputs, &params).unwrap();
        let rho = run_noisy(&c, &inputs, &params, &NoiseModel::noiseless()).unwrap();
        for q in 0..2 {
            let a = expectation_z(&psi, q).unwrap();
            let b = rho.expectation_z(q).unwrap();
            assert!((a - b).abs() < 1e-10);
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn noise_reduces_purity() {
        let c = small_circuit();
        let params = init_params(4, 5);
        let noise = NoiseModel::depolarizing(0.02, 0.05).unwrap();
        let rho = run_noisy(&c, &[0.4, 0.8], &params, &noise).unwrap();
        assert!(rho.purity() < 1.0 - 1e-4);
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_gates_more_noise() {
        // The paper's NISQ argument: error grows with gate count.
        let noise = NoiseModel {
            after_gate1: Some(NoiseChannel::Depolarizing { p: 0.01 }),
            after_gate2: Some(NoiseChannel::Depolarizing { p: 0.02 }),
        };
        let mut shallow = layered_angle_encoder(2, 2).unwrap();
        shallow
            .append_shifted(&layered_ansatz(2, 2).unwrap())
            .unwrap();
        let mut deep = layered_angle_encoder(2, 2).unwrap();
        deep.append_shifted(&layered_ansatz(2, 20).unwrap())
            .unwrap();

        let rho_s = run_noisy(&shallow, &[0.3, 0.6], &init_params(2, 1), &noise).unwrap();
        let rho_d = run_noisy(&deep, &[0.3, 0.6], &init_params(20, 1), &noise).unwrap();
        assert!(rho_d.purity() < rho_s.purity());
    }

    #[test]
    fn noiseless_trajectory_is_bit_identical_to_pure_run() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = small_circuit();
        let params = init_params(4, 5);
        let inputs = [0.4, 0.8];
        let mut rng = StdRng::seed_from_u64(7);
        let traj =
            run_trajectory(&c, &inputs, &params, &NoiseModel::noiseless(), &mut rng).unwrap();
        let pure = run(&c, &inputs, &params).unwrap();
        assert_eq!(traj.amplitudes(), pure.amplitudes());
    }

    #[test]
    fn certain_phase_flip_trajectory_is_deterministic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // p = 1 phase flips fire on every gate: the trajectory equals the
        // circuit with Z appended after each touched wire, independent of
        // the rng stream.
        let mut c = Circuit::new(2);
        c.fixed(0, crate::ir::FixedGate::H).unwrap();
        c.rot(1, Ax::Y, Angle::Const(0.8)).unwrap();
        c.cnot(0, 1).unwrap();
        let noise = NoiseModel {
            after_gate1: Some(NoiseChannel::PhaseFlip { p: 1.0 }),
            after_gate2: Some(NoiseChannel::PhaseFlip { p: 1.0 }),
        };
        let mut with_z = Circuit::new(2);
        with_z.fixed(0, crate::ir::FixedGate::H).unwrap();
        with_z.fixed(0, crate::ir::FixedGate::Z).unwrap();
        with_z.rot(1, Ax::Y, Angle::Const(0.8)).unwrap();
        with_z.fixed(1, crate::ir::FixedGate::Z).unwrap();
        with_z.cnot(0, 1).unwrap();
        with_z.fixed(0, crate::ir::FixedGate::Z).unwrap();
        with_z.fixed(1, crate::ir::FixedGate::Z).unwrap();
        for seed in [0u64, 9] {
            let mut rng = StdRng::seed_from_u64(seed);
            let traj = run_trajectory(&c, &[], &[], &noise, &mut rng).unwrap();
            let reference = run(&with_z, &[], &[]).unwrap();
            assert!((traj.fidelity(&reference).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectory_norm_is_preserved() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = small_circuit();
        let noise = NoiseModel::depolarizing(0.2, 0.3).unwrap();
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = run_trajectory(&c, &[0.5, 1.1], &init_params(4, 0), &noise, &mut rng).unwrap();
            assert!((s.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn controlled_rot_and_cz_execute() {
        let mut c = Circuit::new(2);
        c.fixed(0, crate::ir::FixedGate::H).unwrap();
        c.controlled_rot(0, 1, Ax::X, Angle::Const(1.2)).unwrap();
        c.cz(0, 1).unwrap();
        let s = run(&c, &[], &[]).unwrap();
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }
}
