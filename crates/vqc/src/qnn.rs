//! The VQC as a trainable model ("quantum neural network").
//!
//! A [`Vqc`] packages the three stages of Fig. 1 — state encoder `U_enc`,
//! parametrized circuit `U_var`, measurement `M` — together with classical
//! input scaling and an optional affine output head, behind a
//! forward/Jacobian interface an optimizer can drive. Parameters live in a
//! single flat `Vec<f64>` (circuit angles first, then output-head scales
//! and biases) so the same Adam implementation serves quantum and
//! classical models.

use qmarl_qsim::noise::NoiseModel;
use qmarl_qsim::state::StateVector;

use crate::ansatz;
use crate::encoder::InputScaling;
use crate::error::VqcError;
use crate::exec;
use crate::grad::{self, GradMethod, Jacobian};
use crate::ir::Circuit;
use crate::observable::Readout;

/// Optional classical post-processing of the readout vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OutputHead {
    /// Raw expectation values.
    None,
    /// Trainable per-output `scale · x + bias` — lets a critic whose `⟨Z⟩`
    /// readout lives in `[−1, 1]` represent returns of arbitrary magnitude.
    Affine,
}

/// A flat parameter vector split into `(circuit angles, head scales,
/// head biases)` slices — the layout [`Vqc::init_params`] produces.
pub type SplitParams<'p> = (&'p [f64], &'p [f64], &'p [f64]);

/// A complete variational quantum model.
///
/// # Examples
///
/// ```
/// use qmarl_vqc::prelude::*;
///
/// // A 4-qubit policy network in the paper's layout: 4 observation
/// // features, 46 circuit parameters + 4 output scales = 50 trainables.
/// let model = VqcBuilder::new(4)
///     .encoder_inputs(4)
///     .ansatz_params(46)
///     .readout(Readout::z_all(4))
///     .output_head(OutputHead::Affine)
///     .build()?;
/// assert_eq!(model.param_count(), 46 + 2 * 4);
/// let params = model.init_params(7);
/// let out = model.forward(&[0.1, 0.5, 0.9, 0.2], &params)?;
/// assert_eq!(out.len(), 4);
/// # Ok::<(), qmarl_vqc::error::VqcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Vqc {
    circuit: Circuit,
    readout: Readout,
    input_scaling: InputScaling,
    output_head: OutputHead,
}

impl Vqc {
    /// The underlying circuit (encoder + ansatz).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The readout scheme.
    pub fn readout(&self) -> &Readout {
        &self.readout
    }

    /// The classical input scaling applied before binding.
    pub fn input_scaling(&self) -> InputScaling {
        self.input_scaling
    }

    /// The output head configuration.
    pub fn output_head(&self) -> OutputHead {
        self.output_head
    }

    /// Number of classical input features expected.
    pub fn input_len(&self) -> usize {
        self.circuit.input_count()
    }

    /// Number of classical outputs produced.
    pub fn output_len(&self) -> usize {
        self.readout.output_len()
    }

    /// Trainable parameters in the quantum circuit alone.
    pub fn circuit_param_count(&self) -> usize {
        self.circuit.param_count()
    }

    /// Total trainable parameters (circuit + output head).
    pub fn param_count(&self) -> usize {
        self.circuit.param_count()
            + match self.output_head {
                OutputHead::None => 0,
                OutputHead::Affine => 2 * self.output_len(),
            }
    }

    /// Seeded initial parameter vector: circuit angles uniform in
    /// `[−π, π]`, affine scales 1, biases 0.
    pub fn init_params(&self, seed: u64) -> Vec<f64> {
        let mut p = ansatz::init_params(self.circuit.param_count(), seed);
        if self.output_head == OutputHead::Affine {
            p.extend(std::iter::repeat_n(1.0, self.output_len())); // scales
            p.extend(std::iter::repeat_n(0.0, self.output_len())); // biases
        }
        p
    }

    /// Splits a flat parameter vector into `(circuit angles, head scales,
    /// head biases)` — the layout [`Vqc::init_params`] produces. Exposed
    /// so external execution engines (the batched runtime) can bind the
    /// circuit segment directly.
    ///
    /// # Errors
    ///
    /// Returns [`VqcError::ParamLenMismatch`] on a bad length.
    pub fn split_params<'p>(&self, params: &'p [f64]) -> Result<SplitParams<'p>, VqcError> {
        if params.len() != self.param_count() {
            return Err(VqcError::ParamLenMismatch {
                expected: self.param_count(),
                actual: params.len(),
            });
        }
        let nc = self.circuit.param_count();
        let no = self.output_len();
        match self.output_head {
            OutputHead::None => Ok((&params[..nc], &[], &[])),
            OutputHead::Affine => Ok((&params[..nc], &params[nc..nc + no], &params[nc + no..])),
        }
    }

    /// The final quantum state for given inputs/parameters — used by the
    /// Fig. 4 qubit-state visualisation.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn state(&self, inputs: &[f64], params: &[f64]) -> Result<StateVector, VqcError> {
        let (circ, _, _) = self.split_params(params)?;
        let scaled = self.input_scaling.apply_all(inputs);
        exec::run(&self.circuit, &scaled, circ)
    }

    /// Forward pass: inputs → scaled angles → circuit → readout → head.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward(&self, inputs: &[f64], params: &[f64]) -> Result<Vec<f64>, VqcError> {
        let (circ, scales, biases) = self.split_params(params)?;
        let scaled = self.input_scaling.apply_all(inputs);
        let state = exec::run(&self.circuit, &scaled, circ)?;
        let raw = self.readout.evaluate(&state)?;
        Ok(self.apply_head(&raw, scales, biases))
    }

    /// Forward pass with finite-shot measurement: the circuit runs
    /// exactly, but the readout is estimated from `shots` samples — the
    /// noise profile of real hardware execution with a shot budget.
    ///
    /// # Errors
    ///
    /// Returns binding-length errors, or a simulator error when
    /// `shots == 0`.
    pub fn forward_shots<R: rand::Rng + ?Sized>(
        &self,
        inputs: &[f64],
        params: &[f64],
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, VqcError> {
        let (circ, scales, biases) = self.split_params(params)?;
        let scaled = self.input_scaling.apply_all(inputs);
        let state = exec::run(&self.circuit, &scaled, circ)?;
        let raw = self.readout.evaluate_shots(&state, shots, rng)?;
        Ok(self.apply_head(&raw, scales, biases))
    }

    /// Forward pass on the noisy (density-matrix) backend.
    ///
    /// # Errors
    ///
    /// Returns binding-length or noise-validation errors.
    pub fn forward_noisy(
        &self,
        inputs: &[f64],
        params: &[f64],
        noise: &NoiseModel,
    ) -> Result<Vec<f64>, VqcError> {
        let (circ, scales, biases) = self.split_params(params)?;
        let scaled = self.input_scaling.apply_all(inputs);
        let rho = exec::run_noisy(&self.circuit, &scaled, circ, noise)?;
        let raw = self.readout.evaluate_density(&rho)?;
        Ok(self.apply_head(&raw, scales, biases))
    }

    /// Applies the output head to a raw readout vector (public for
    /// external execution engines; pair with [`Vqc::split_params`]).
    pub fn apply_head(&self, raw: &[f64], scales: &[f64], biases: &[f64]) -> Vec<f64> {
        match self.output_head {
            OutputHead::None => raw.to_vec(),
            OutputHead::Affine => raw
                .iter()
                .enumerate()
                .map(|(j, &r)| scales[j] * r + biases[j])
                .collect(),
        }
    }

    /// Forward pass plus the full Jacobian `∂ outputs / ∂ params` over
    /// **all** trainables (circuit and output head).
    ///
    /// # Errors
    ///
    /// Returns binding-length errors.
    pub fn forward_with_jacobian(
        &self,
        inputs: &[f64],
        params: &[f64],
        method: GradMethod,
    ) -> Result<(Vec<f64>, Jacobian), VqcError> {
        let (circ, scales, biases) = self.split_params(params)?;
        let scaled = self.input_scaling.apply_all(inputs);
        let state = exec::run(&self.circuit, &scaled, circ)?;
        let raw = self.readout.evaluate(&state)?;
        let circ_jac = grad::jacobian(method, &self.circuit, &self.readout, &scaled, circ)?;
        Ok(self.assemble_jacobian(&raw, &circ_jac, scales, biases))
    }

    /// Chains a raw readout vector and its circuit-parameter Jacobian
    /// through the output head, producing the model outputs and the full
    /// Jacobian over **all** trainables. Public so external execution
    /// engines computing `circ_jac` by other means (e.g. the batched
    /// parameter-shift runtime) reuse the exact head calculus.
    pub fn assemble_jacobian(
        &self,
        raw: &[f64],
        circ_jac: &Jacobian,
        scales: &[f64],
        biases: &[f64],
    ) -> (Vec<f64>, Jacobian) {
        let n_out = self.output_len();
        let n_circ = self.circuit.param_count();
        let mut jac = Jacobian::zeros(n_out, self.param_count());
        match self.output_head {
            OutputHead::None => {
                for j in 0..n_out {
                    for p in 0..n_circ {
                        *jac.get_mut(j, p) = circ_jac.get(j, p);
                    }
                }
                (raw.to_vec(), jac)
            }
            OutputHead::Affine => {
                // out_j = scale_j · raw_j + bias_j
                for j in 0..n_out {
                    for p in 0..n_circ {
                        *jac.get_mut(j, p) = scales[j] * circ_jac.get(j, p);
                    }
                    *jac.get_mut(j, n_circ + j) = raw[j]; // ∂/∂scale_j
                    *jac.get_mut(j, n_circ + n_out + j) = 1.0; // ∂/∂bias_j
                }
                (self.apply_head(raw, scales, biases), jac)
            }
        }
    }
}

/// Builder for [`Vqc`] models in the paper's encoder/ansatz/readout shape.
#[derive(Debug, Clone)]
pub struct VqcBuilder {
    n_qubits: usize,
    n_inputs: usize,
    ansatz: AnsatzChoice,
    readout: Option<Readout>,
    input_scaling: InputScaling,
    output_head: OutputHead,
}

#[derive(Debug, Clone)]
enum AnsatzChoice {
    Layered { param_budget: usize },
    Random(ansatz::RandomLayerConfig),
    Custom(Circuit),
    FullCircuit(Circuit),
}

impl VqcBuilder {
    /// Starts a builder for an `n_qubits`-wire model.
    pub fn new(n_qubits: usize) -> Self {
        VqcBuilder {
            n_qubits,
            n_inputs: n_qubits,
            ansatz: AnsatzChoice::Layered { param_budget: 50 },
            readout: None,
            input_scaling: InputScaling::Pi,
            output_head: OutputHead::None,
        }
    }

    /// Number of classical input features (builds the layered encoder of
    /// Fig. 1 with `⌈n/n_qubits⌉` rotation layers).
    pub fn encoder_inputs(mut self, n_inputs: usize) -> Self {
        self.n_inputs = n_inputs;
        self
    }

    /// Structured ansatz with an exact trainable-parameter budget.
    pub fn ansatz_params(mut self, param_budget: usize) -> Self {
        self.ansatz = AnsatzChoice::Layered { param_budget };
        self
    }

    /// torchquantum-style random layer with a gate budget.
    pub fn random_ansatz(mut self, config: ansatz::RandomLayerConfig) -> Self {
        self.ansatz = AnsatzChoice::Random(config);
        self
    }

    /// A caller-supplied variational circuit (parameter ids starting at 0).
    pub fn custom_ansatz(mut self, circuit: Circuit) -> Self {
        self.ansatz = AnsatzChoice::Custom(circuit);
        self
    }

    /// Uses `circuit` as the **entire** model circuit — no implicit
    /// encoder is prepended. For architectures that interleave encoding
    /// and trainable blocks (e.g. data re-uploading built with
    /// [`crate::encoder::reuploading_circuit`]).
    pub fn full_circuit(mut self, circuit: Circuit) -> Self {
        self.ansatz = AnsatzChoice::FullCircuit(circuit);
        self
    }

    /// The measurement scheme.
    pub fn readout(mut self, readout: Readout) -> Self {
        self.readout = Some(readout);
        self
    }

    /// Input feature scaling (default: multiply by π).
    pub fn input_scaling(mut self, scaling: InputScaling) -> Self {
        self.input_scaling = scaling;
        self
    }

    /// Output head (default: none).
    pub fn output_head(mut self, head: OutputHead) -> Self {
        self.output_head = head;
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the encoder, ansatz or readout.
    pub fn build(self) -> Result<Vqc, VqcError> {
        let circuit = if let AnsatzChoice::FullCircuit(c) = &self.ansatz {
            if c.n_qubits() != self.n_qubits {
                return Err(VqcError::QubitCountMismatch {
                    expected: self.n_qubits,
                    actual: c.n_qubits(),
                });
            }
            c.clone()
        } else {
            let mut circuit = crate::encoder::layered_angle_encoder(self.n_qubits, self.n_inputs)?;
            let var = match self.ansatz {
                AnsatzChoice::Layered { param_budget } => {
                    ansatz::layered_ansatz(self.n_qubits, param_budget)?
                }
                AnsatzChoice::Random(cfg) => ansatz::random_layer_ansatz(self.n_qubits, cfg)?,
                AnsatzChoice::Custom(c) => c,
                AnsatzChoice::FullCircuit(_) => unreachable!("handled above"),
            };
            circuit.append_shifted(&var)?;
            circuit
        };
        let readout = self
            .readout
            .unwrap_or_else(|| Readout::z_all(self.n_qubits));
        readout.validate(self.n_qubits)?;
        Ok(Vqc {
            circuit,
            readout,
            input_scaling: self.input_scaling,
            output_head: self.output_head,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actor_like() -> Vqc {
        VqcBuilder::new(4)
            .encoder_inputs(4)
            .ansatz_params(46)
            .readout(Readout::z_all(4))
            .output_head(OutputHead::Affine)
            .build()
            .unwrap()
    }

    fn critic_like() -> Vqc {
        VqcBuilder::new(4)
            .encoder_inputs(16)
            .ansatz_params(48)
            .readout(Readout::mean_z(4))
            .output_head(OutputHead::Affine)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_parameter_budgets() {
        // Actor: 46 circuit + 4 scales + 4 biases = 54? No — the paper's
        // budget counts 50; our default actor uses 46+4 scale-only… the
        // affine head has both scale and bias per output, so 46+8 = 54.
        // The framework layer (qmarl-core) picks budgets so the *total*
        // hits 50; here we just verify the arithmetic is exposed.
        let a = actor_like();
        assert_eq!(a.circuit_param_count(), 46);
        assert_eq!(a.param_count(), 46 + 8);
        let c = critic_like();
        assert_eq!(c.circuit_param_count(), 48);
        assert_eq!(c.param_count(), 48 + 2);
        assert_eq!(c.output_len(), 1);
    }

    #[test]
    fn forward_shapes_and_ranges() {
        let m = actor_like();
        let params = m.init_params(3);
        let out = m.forward(&[0.2, 0.4, 0.6, 0.8], &params).unwrap();
        assert_eq!(out.len(), 4);
        // Fresh affine head is identity, so outputs are raw ⟨Z⟩ ∈ [−1, 1].
        assert!(out.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn forward_rejects_bad_lengths() {
        let m = actor_like();
        let params = m.init_params(3);
        assert!(m.forward(&[0.2; 3], &params).is_err());
        assert!(m.forward(&[0.2; 4], &params[..10]).is_err());
    }

    #[test]
    fn jacobian_matches_finite_difference_through_head() {
        let m = critic_like();
        let mut params = m.init_params(11);
        // Make the head non-trivial so scale gradients are exercised.
        let nc = m.circuit_param_count();
        params[nc] = 2.5; // scale
        params[nc + 1] = -0.7; // bias
        let inputs: Vec<f64> = (0..16).map(|i| (i as f64) / 16.0).collect();

        let (_, jac) = m
            .forward_with_jacobian(&inputs, &params, GradMethod::Adjoint)
            .unwrap();
        // Finite-difference over the full parameter vector.
        let eps = 1e-6;
        for p in 0..m.param_count() {
            let mut pp = params.clone();
            pp[p] += eps;
            let plus = m.forward(&inputs, &pp).unwrap()[0];
            pp[p] -= 2.0 * eps;
            let minus = m.forward(&inputs, &pp).unwrap()[0];
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (jac.get(0, p) - fd).abs() < 1e-5,
                "param {p}: {} vs {}",
                jac.get(0, p),
                fd
            );
        }
    }

    #[test]
    fn jacobian_methods_agree_through_model() {
        let m = actor_like();
        let params = m.init_params(9);
        let inputs = [0.3, 0.1, 0.9, 0.5];
        let (_, a) = m
            .forward_with_jacobian(&inputs, &params, GradMethod::ParameterShift)
            .unwrap();
        let (_, b) = m
            .forward_with_jacobian(&inputs, &params, GradMethod::Adjoint)
            .unwrap();
        assert!(a.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn init_params_layout() {
        let m = critic_like();
        let p = m.init_params(2);
        assert_eq!(p.len(), 50);
        let nc = m.circuit_param_count();
        assert_eq!(p[nc], 1.0); // scale starts at 1
        assert_eq!(p[nc + 1], 0.0); // bias starts at 0
    }

    #[test]
    fn shot_forward_converges_to_exact() {
        use rand::SeedableRng;
        let m = actor_like();
        let params = m.init_params(8);
        let obs = [0.2, 0.6, 0.4, 0.8];
        let exact = m.forward(&obs, &params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let coarse = m.forward_shots(&obs, &params, 32, &mut rng).unwrap();
        let fine = m.forward_shots(&obs, &params, 100_000, &mut rng).unwrap();
        let err = |v: &[f64]| -> f64 {
            v.iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&fine) < 0.02, "fine estimate off by {}", err(&fine));
        assert!(err(&fine) <= err(&coarse) + 1e-9);
        assert!(m.forward_shots(&obs, &params, 0, &mut rng).is_err());
    }

    #[test]
    fn noisy_forward_close_to_noiseless_at_low_noise() {
        let m = critic_like();
        let params = m.init_params(4);
        let inputs: Vec<f64> = (0..16).map(|i| (i as f64) * 0.05).collect();
        let clean = m.forward(&inputs, &params).unwrap()[0];
        let noise = NoiseModel::depolarizing(1e-4, 2e-4).unwrap();
        let noisy = m.forward_noisy(&inputs, &params, &noise).unwrap()[0];
        assert!(
            (clean - noisy).abs() < 0.05,
            "clean {clean} vs noisy {noisy}"
        );
    }

    #[test]
    fn state_exposes_final_register() {
        let m = actor_like();
        let params = m.init_params(1);
        let s = m.state(&[0.1, 0.2, 0.3, 0.4], &params).unwrap();
        assert_eq!(s.n_qubits(), 4);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_readout_is_z_all() {
        let m = VqcBuilder::new(3)
            .encoder_inputs(3)
            .ansatz_params(5)
            .build()
            .unwrap();
        assert_eq!(m.output_len(), 3);
        assert_eq!(m.param_count(), 5);
    }
}
