//! Parametrized circuits (`U_var` in the paper): the trainable part of a VQC.
//!
//! Two constructions are provided:
//!
//! * [`layered_ansatz`] — structured layers of per-qubit rotations followed
//!   by a CNOT entangling ring, built to an **exact trainable-parameter
//!   budget**. The paper fixes "the trainable parameters of these three
//!   frameworks … to 50", so exact budgeting is what the experiments need.
//! * [`random_layer_ansatz`] — torchquantum-style `RandomLayer`: a seeded
//!   random sequence of rotation/CNOT gates up to a **gate budget**
//!   (Table II: "The number of gates in `U_var` = 50"), mirroring the
//!   library the authors used.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qmarl_qsim::gate::RotationAxis;

use crate::error::VqcError;
use crate::ir::{Angle, Circuit, ParamId};

/// Builds a structured ansatz with exactly `param_budget` trainable
/// rotation gates on `n_qubits` wires.
///
/// Gates are laid down in layers: each layer applies one rotation per
/// qubit (axis cycling `Y → Z → Y → …`, a hardware-efficient pattern that
/// avoids all-Z layers which would be diagonal and untrainable from `|0⟩`)
/// followed by a CNOT ring `0→1→…→(n−1)→0`. The final layer is truncated
/// so the parameter count is exactly `param_budget`; entangling CNOTs
/// contribute gates but no parameters.
///
/// # Errors
///
/// Returns [`VqcError::InvalidConfig`] when `param_budget == 0`.
///
/// # Examples
///
/// ```
/// use qmarl_vqc::ansatz::layered_ansatz;
///
/// let var = layered_ansatz(4, 50)?;         // the paper's 50-parameter budget
/// assert_eq!(var.param_count(), 50);
/// # Ok::<(), qmarl_vqc::error::VqcError>(())
/// ```
pub fn layered_ansatz(n_qubits: usize, param_budget: usize) -> Result<Circuit, VqcError> {
    if param_budget == 0 {
        return Err(VqcError::InvalidConfig(
            "ansatz needs at least one parameter".into(),
        ));
    }
    let mut c = Circuit::new(n_qubits);
    let mut p = 0usize;
    let mut layer = 0usize;
    while p < param_budget {
        let axis = if layer.is_multiple_of(2) {
            RotationAxis::Y
        } else {
            RotationAxis::Z
        };
        for q in 0..n_qubits {
            if p >= param_budget {
                break;
            }
            c.rot(q, axis, Angle::Param(ParamId(p)))?;
            p += 1;
        }
        // Entangle after each full layer (skip if budget ran out mid-layer
        // or on single-qubit registers).
        if p.is_multiple_of(n_qubits) && p < param_budget && n_qubits > 1 {
            for q in 0..n_qubits {
                c.cnot(q, (q + 1) % n_qubits)?;
            }
        }
        layer += 1;
    }
    Ok(c)
}

/// Configuration for [`random_layer_ansatz`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RandomLayerConfig {
    /// Total number of gates to sample (Table II uses 50).
    pub gate_budget: usize,
    /// Probability that a sampled gate is a (trainable) rotation rather
    /// than a CNOT. torchquantum's default op pool is rotation-heavy.
    pub rotation_prob: f64,
    /// RNG seed, so circuits are reproducible across runs.
    pub seed: u64,
}

impl Default for RandomLayerConfig {
    fn default() -> Self {
        RandomLayerConfig {
            gate_budget: 50,
            rotation_prob: 0.75,
            seed: 7,
        }
    }
}

/// Builds a torchquantum-style random layer: `gate_budget` gates sampled
/// i.i.d. (rotation on a random wire with a fresh parameter, or CNOT on a
/// random wire pair).
///
/// # Errors
///
/// Returns [`VqcError::InvalidConfig`] when the budget is zero, the
/// probability is outside `[0, 1]`, or a CNOT is requested on a
/// single-wire register with `rotation_prob < 1`.
pub fn random_layer_ansatz(
    n_qubits: usize,
    config: RandomLayerConfig,
) -> Result<Circuit, VqcError> {
    if config.gate_budget == 0 {
        return Err(VqcError::InvalidConfig(
            "gate budget must be positive".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.rotation_prob) {
        return Err(VqcError::InvalidConfig(format!(
            "rotation probability {} not in [0, 1]",
            config.rotation_prob
        )));
    }
    if n_qubits < 2 && config.rotation_prob < 1.0 {
        return Err(VqcError::InvalidConfig(
            "cannot sample CNOTs on a single-qubit register".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut c = Circuit::new(n_qubits);
    let mut p = 0usize;
    for _ in 0..config.gate_budget {
        if rng.gen::<f64>() < config.rotation_prob {
            let q = rng.gen_range(0..n_qubits);
            let axis = RotationAxis::ALL[rng.gen_range(0..3)];
            c.rot(q, axis, Angle::Param(ParamId(p)))?;
            p += 1;
        } else {
            let control = rng.gen_range(0..n_qubits);
            let mut target = rng.gen_range(0..n_qubits - 1);
            if target >= control {
                target += 1;
            }
            c.cnot(control, target)?;
        }
    }
    Ok(c)
}

/// Seeded uniform parameter initialisation in `[−π, π]`, the customary
/// VQC starting distribution.
pub fn init_params(n_params: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_params)
        .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;

    #[test]
    fn layered_ansatz_hits_exact_budget() {
        for budget in [1, 4, 7, 16, 48, 50, 100] {
            let c = layered_ansatz(4, budget).unwrap();
            assert_eq!(c.param_count(), budget, "budget {budget}");
            assert_eq!(c.trainable_gate_count(), budget);
        }
    }

    #[test]
    fn layered_ansatz_entangles_between_layers() {
        let c = layered_ansatz(4, 12).unwrap();
        let cnots = c
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Cnot { .. }))
            .count();
        // 12 params = 3 full layers on 4 qubits → 2 interior rings of 4 CNOTs.
        assert_eq!(cnots, 8);
    }

    #[test]
    fn layered_ansatz_zero_budget_rejected() {
        assert!(layered_ansatz(4, 0).is_err());
    }

    #[test]
    fn layered_ansatz_single_qubit() {
        let c = layered_ansatz(1, 5).unwrap();
        assert_eq!(c.param_count(), 5);
        assert!(c.ops().iter().all(|o| matches!(o, Op::Rot { .. })));
    }

    #[test]
    fn random_layer_respects_gate_budget_and_seed() {
        let cfg = RandomLayerConfig {
            gate_budget: 50,
            rotation_prob: 0.75,
            seed: 42,
        };
        let a = random_layer_ansatz(4, cfg).unwrap();
        let b = random_layer_ansatz(4, cfg).unwrap();
        assert_eq!(a, b, "same seed must give the same circuit");
        assert_eq!(a.gate_count(), 50);
        assert!(a.param_count() > 20 && a.param_count() <= 50);

        let c = random_layer_ansatz(4, RandomLayerConfig { seed: 43, ..cfg }).unwrap();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_layer_all_rotations_when_prob_one() {
        let cfg = RandomLayerConfig {
            gate_budget: 50,
            rotation_prob: 1.0,
            seed: 1,
        };
        let c = random_layer_ansatz(4, cfg).unwrap();
        assert_eq!(c.param_count(), 50);
        assert_eq!(c.trainable_gate_count(), 50);
    }

    #[test]
    fn random_layer_validates_config() {
        assert!(random_layer_ansatz(
            4,
            RandomLayerConfig {
                gate_budget: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(random_layer_ansatz(
            4,
            RandomLayerConfig {
                rotation_prob: 1.4,
                ..Default::default()
            }
        )
        .is_err());
        assert!(random_layer_ansatz(1, RandomLayerConfig::default()).is_err());
        assert!(random_layer_ansatz(
            1,
            RandomLayerConfig {
                rotation_prob: 1.0,
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn init_params_deterministic_and_in_range() {
        let a = init_params(50, 9);
        let b = init_params(50, 9);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|t| (-std::f64::consts::PI..=std::f64::consts::PI).contains(t)));
        let c = init_params(50, 10);
        assert_ne!(a, c);
    }
}
