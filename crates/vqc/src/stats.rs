//! Circuit statistics: depth, gate-class counts, noise exposure.
//!
//! NISQ feasibility is governed by a handful of structural numbers — how
//! many gates (the paper budgets 50 in `U_var`), how many of them are
//! two-qubit (an order of magnitude noisier on hardware), and the circuit
//! depth (idle decoherence). [`CircuitStats`] extracts them from any
//! [`Circuit`] and estimates the total error exposure under a given
//! per-gate error rate.

use crate::ir::Circuit;

/// Structural statistics of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CircuitStats {
    /// Register width.
    pub n_qubits: usize,
    /// Total gates.
    pub gates: usize,
    /// Single-qubit gates.
    pub single_qubit_gates: usize,
    /// Two-qubit gates (CNOT, CZ, controlled rotations).
    pub two_qubit_gates: usize,
    /// Gates consuming a trainable parameter.
    pub trainable_gates: usize,
    /// Gates consuming an input slot.
    pub encoder_gates: usize,
    /// Circuit depth: the longest chain of gates on any wire under greedy
    /// as-soon-as-possible scheduling.
    pub depth: usize,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut single = 0usize;
        let mut double = 0usize;
        let mut trainable = 0usize;
        let mut encoder = 0usize;
        // Greedy ASAP depth: each wire tracks the layer of its last gate.
        let mut wire_depth = vec![0usize; circuit.n_qubits()];
        for op in circuit.ops() {
            let wires = op.qubits();
            match wires.len() {
                1 => single += 1,
                _ => double += 1,
            }
            match op.angle() {
                Some(crate::ir::Angle::Param(_)) => trainable += 1,
                Some(crate::ir::Angle::Input(_)) => encoder += 1,
                _ => {}
            }
            let layer = wires.iter().map(|&q| wire_depth[q]).max().unwrap_or(0) + 1;
            for &q in &wires {
                wire_depth[q] = layer;
            }
        }
        CircuitStats {
            n_qubits: circuit.n_qubits(),
            gates: circuit.gate_count(),
            single_qubit_gates: single,
            two_qubit_gates: double,
            trainable_gates: trainable,
            encoder_gates: encoder,
            depth: wire_depth.into_iter().max().unwrap_or(0),
        }
    }

    /// The expected number of gate errors in one execution under per-gate
    /// error probabilities `p1` (single-qubit) and `p2` (two-qubit) — the
    /// quantity the paper's NISQ argument is about ("quantum errors
    /// brought on by quantum gate operations").
    pub fn expected_gate_errors(&self, p1: f64, p2: f64) -> f64 {
        self.single_qubit_gates as f64 * p1 + self.two_qubit_gates as f64 * p2
    }

    /// The probability that an execution is entirely error-free:
    /// `(1 − p1)^{n1} (1 − p2)^{n2}`.
    pub fn fidelity_proxy(&self, p1: f64, p2: f64) -> f64 {
        (1.0 - p1).powi(self.single_qubit_gates as i32)
            * (1.0 - p2).powi(self.two_qubit_gates as i32)
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} qubits, {} gates ({} 1q, {} 2q, {} trainable, {} encoder), depth {}",
            self.n_qubits,
            self.gates,
            self.single_qubit_gates,
            self.two_qubit_gates,
            self.trainable_gates,
            self.encoder_gates,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::layered_ansatz;
    use crate::encoder::layered_angle_encoder;
    use crate::ir::{Angle, FixedGate, ParamId};
    use qmarl_qsim::gate::RotationAxis as Ax;

    #[test]
    fn encoder_stats() {
        let enc = layered_angle_encoder(4, 16).unwrap();
        let s = CircuitStats::of(&enc);
        assert_eq!(s.gates, 16);
        assert_eq!(s.single_qubit_gates, 16);
        assert_eq!(s.two_qubit_gates, 0);
        assert_eq!(s.encoder_gates, 16);
        assert_eq!(s.trainable_gates, 0);
        // 4 rotations per wire, all parallelisable per layer.
        assert_eq!(s.depth, 4);
    }

    #[test]
    fn ansatz_stats() {
        let var = layered_ansatz(4, 8).unwrap();
        let s = CircuitStats::of(&var);
        assert_eq!(s.trainable_gates, 8);
        assert_eq!(s.two_qubit_gates, 4); // one interior CNOT ring
        assert_eq!(s.gates, 12);
    }

    #[test]
    fn depth_counts_serial_chains() {
        // Three rotations on the same wire: depth 3.
        let mut c = Circuit::new(2);
        for i in 0..3 {
            c.rot(0, Ax::Y, Angle::Param(ParamId(i))).unwrap();
        }
        assert_eq!(CircuitStats::of(&c).depth, 3);
        // A parallel rotation on the other wire doesn't deepen it.
        c.rot(1, Ax::Y, Angle::Param(ParamId(3))).unwrap();
        assert_eq!(CircuitStats::of(&c).depth, 3);
        // A CNOT after both must come in layer 4.
        c.cnot(0, 1).unwrap();
        assert_eq!(CircuitStats::of(&c).depth, 4);
    }

    #[test]
    fn two_qubit_classification() {
        let mut c = Circuit::new(3);
        c.fixed(0, FixedGate::H).unwrap();
        c.cnot(0, 1).unwrap();
        c.cz(1, 2).unwrap();
        c.controlled_rot(0, 2, Ax::Z, Angle::Param(ParamId(0)))
            .unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.single_qubit_gates, 1);
        assert_eq!(s.two_qubit_gates, 3);
        assert_eq!(s.trainable_gates, 1);
    }

    #[test]
    fn error_exposure_model() {
        let var = layered_ansatz(4, 8).unwrap(); // 8 × 1q + 4 × 2q
        let s = CircuitStats::of(&var);
        let expected = s.expected_gate_errors(0.001, 0.01);
        assert!((expected - (8.0 * 0.001 + 4.0 * 0.01)).abs() < 1e-12);
        let fid = s.fidelity_proxy(0.001, 0.01);
        assert!((fid - 0.999f64.powi(8) * 0.99f64.powi(4)).abs() < 1e-12);
        assert!(fid < 1.0 && fid > 0.9);
    }

    #[test]
    fn deeper_circuits_have_lower_fidelity_proxy() {
        let shallow = CircuitStats::of(&layered_ansatz(4, 4).unwrap());
        let deep = CircuitStats::of(&layered_ansatz(4, 48).unwrap());
        assert!(deep.fidelity_proxy(0.001, 0.01) < shallow.fidelity_proxy(0.001, 0.01));
    }

    #[test]
    fn display_mentions_everything() {
        let s = CircuitStats::of(&layered_ansatz(4, 8).unwrap());
        let txt = s.to_string();
        assert!(txt.contains("4 qubits"));
        assert!(txt.contains("depth"));
    }
}
