//! Property-based tests for VQC construction and differentiation.

use proptest::prelude::*;
use qmarl_vqc::prelude::*;

proptest! {
    /// The layered encoder always emits exactly one gate per input and
    /// never any trainable parameter.
    #[test]
    fn encoder_shape_invariants(n_qubits in 1usize..6, n_inputs in 1usize..40) {
        let enc = layered_angle_encoder(n_qubits, n_inputs).unwrap();
        prop_assert_eq!(enc.gate_count(), n_inputs);
        prop_assert_eq!(enc.input_count(), n_inputs);
        prop_assert_eq!(enc.param_count(), 0);
        prop_assert_eq!(encoder_depth(n_qubits, n_inputs), n_inputs.div_ceil(n_qubits));
    }

    /// The layered ansatz hits its parameter budget exactly for any shape.
    #[test]
    fn ansatz_budget_exact(n_qubits in 1usize..6, budget in 1usize..120) {
        let var = layered_ansatz(n_qubits, budget).unwrap();
        prop_assert_eq!(var.param_count(), budget);
        prop_assert_eq!(var.trainable_gate_count(), budget);
    }

    /// Random layers are reproducible and respect the gate budget.
    #[test]
    fn random_layer_deterministic(seed in 0u64..1000, budget in 1usize..80) {
        let cfg = RandomLayerConfig { gate_budget: budget, rotation_prob: 0.7, seed };
        let a = random_layer_ansatz(4, cfg).unwrap();
        let b = random_layer_ansatz(4, cfg).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.gate_count(), budget);
    }

    /// Forward outputs of a Z readout stay in [−1, 1] for any inputs.
    #[test]
    fn outputs_bounded(
        inputs in prop::collection::vec(-2.0f64..2.0, 4),
        seed in 0u64..50,
    ) {
        let model = VqcBuilder::new(4)
            .encoder_inputs(4)
            .ansatz_params(12)
            .readout(Readout::z_all(4))
            .build()
            .unwrap();
        let params = model.init_params(seed);
        let out = model.forward(&inputs, &params).unwrap();
        prop_assert!(out.iter().all(|v| (-1.0 - 1e-9..=1.0 + 1e-9).contains(v)));
    }

    /// Parameter-shift and adjoint agree on arbitrary parameter points.
    #[test]
    fn gradients_agree(
        seed in 0u64..30,
        inputs in prop::collection::vec(-1.0f64..1.0, 4),
    ) {
        let model = VqcBuilder::new(4)
            .encoder_inputs(4)
            .ansatz_params(10)
            .readout(Readout::mean_z(4))
            .build()
            .unwrap();
        let params = model.init_params(seed);
        let (_, ps) = model
            .forward_with_jacobian(&inputs, &params, GradMethod::ParameterShift)
            .unwrap();
        let (_, adj) = model
            .forward_with_jacobian(&inputs, &params, GradMethod::Adjoint)
            .unwrap();
        prop_assert!(ps.max_abs_diff(&adj) < 1e-8);
    }

    /// The gradient of a loss L = Σ c_j out_j via VJP equals the direct
    /// finite difference of L (chain-rule soundness).
    #[test]
    fn vjp_matches_loss_finite_difference(
        seed in 0u64..20,
        coeffs in prop::collection::vec(-1.0f64..1.0, 4),
    ) {
        let model = VqcBuilder::new(4)
            .encoder_inputs(4)
            .ansatz_params(8)
            .readout(Readout::z_all(4))
            .build()
            .unwrap();
        let params = model.init_params(seed);
        let inputs = [0.2, -0.4, 0.6, 0.1];
        let (_, jac) = model
            .forward_with_jacobian(&inputs, &params, GradMethod::Adjoint)
            .unwrap();
        let grad = jac.vjp(&coeffs);
        let loss = |p: &[f64]| -> f64 {
            model
                .forward(&inputs, p)
                .unwrap()
                .iter()
                .zip(&coeffs)
                .map(|(o, c)| o * c)
                .sum()
        };
        let eps = 1e-6;
        for p in 0..model.param_count() {
            let mut pp = params.clone();
            pp[p] += eps;
            let plus = loss(&pp);
            pp[p] -= 2.0 * eps;
            let minus = loss(&pp);
            let fd = (plus - minus) / (2.0 * eps);
            prop_assert!((grad[p] - fd).abs() < 1e-4, "param {}: {} vs {}", p, grad[p], fd);
        }
    }
}
