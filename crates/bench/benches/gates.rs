//! Simulator micro-benchmarks: gate application cost vs register width.
//!
//! Grounds the qubit-scaling ablation: the statevector doubles per added
//! qubit, which is the paper's argument for keeping the critic at 4 wires.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qmarl_qsim::prelude::*;

fn bench_single_qubit_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_rx");
    for n in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut s = StateVector::zero(n);
            let g = Gate1::rx(0.3);
            b.iter(|| {
                s.apply_gate1(black_box(n / 2), &g).expect("valid wire");
            });
        });
    }
    group.finish();
}

fn bench_cnot(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_cnot");
    for n in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut s = StateVector::zero(n);
            b.iter(|| {
                s.apply_cnot(black_box(0), black_box(n - 1))
                    .expect("valid wires");
            });
        });
    }
    group.finish();
}

fn bench_expectation(c: &mut Criterion) {
    let mut group = c.benchmark_group("expectation_z");
    for n in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut s = StateVector::zero(n);
            for q in 0..n {
                s.apply_gate1(q, &Gate1::ry(0.2 * q as f64))
                    .expect("valid wire");
            }
            b.iter(|| expectation_z(black_box(&s), black_box(n / 2)).expect("valid wire"));
        });
    }
    group.finish();
}

fn bench_density_vs_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_rx_4q");
    group.bench_function("statevector", |b| {
        let mut s = StateVector::zero(4);
        let g = Gate1::rx(0.3);
        b.iter(|| s.apply_gate1(black_box(2), &g).expect("valid wire"));
    });
    group.bench_function("density_matrix", |b| {
        let mut rho = DensityMatrix::zero(4);
        let g = Gate1::rx(0.3);
        b.iter(|| rho.apply_gate1(black_box(2), &g).expect("valid wire"));
    });
    group.bench_function("density_matrix_kraus", |b| {
        let mut rho = DensityMatrix::zero(4);
        let kraus = NoiseChannel::Depolarizing { p: 0.01 }.kraus_operators();
        b.iter(|| rho.apply_kraus1(black_box(2), &kraus).expect("valid wire"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_qubit_gate,
    bench_cnot,
    bench_expectation,
    bench_density_vs_statevector
);
criterion_main!(benches);
