//! Ablation C: the cost of the three differentiation methods on the
//! paper's actor- and critic-shaped VQCs (DESIGN.md experiment index).
//!
//! Parameter-shift costs ~2 circuit runs per parameter, adjoint one
//! forward plus one backward sweep — the measured gap justifies using
//! adjoint as the training default while parameter-shift remains the
//! hardware-faithful reference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qmarl_vqc::prelude::*;

fn actor_model() -> Vqc {
    VqcBuilder::new(4)
        .encoder_inputs(4)
        .ansatz_params(42)
        .readout(Readout::z_all(4))
        .output_head(OutputHead::Affine)
        .build()
        .expect("paper actor shape")
}

fn critic_model() -> Vqc {
    VqcBuilder::new(4)
        .encoder_inputs(16)
        .ansatz_params(48)
        .readout(Readout::mean_z(4))
        .output_head(OutputHead::Affine)
        .build()
        .expect("paper critic shape")
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("vqc_forward");
    let actor = actor_model();
    let ap = actor.init_params(1);
    let obs = [0.1, 0.5, 0.9, 0.3];
    group.bench_function("actor_50p", |b| {
        b.iter(|| actor.forward(black_box(&obs), &ap).expect("forward"));
    });
    let critic = critic_model();
    let cp = critic.init_params(2);
    let state: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
    group.bench_function("critic_50p", |b| {
        b.iter(|| critic.forward(black_box(&state), &cp).expect("forward"));
    });
    group.finish();
}

fn bench_gradient_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("vqc_gradient_critic");
    group.sample_size(30);
    let critic = critic_model();
    let cp = critic.init_params(3);
    let state: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
    for (name, method) in [
        ("parameter_shift", GradMethod::ParameterShift),
        ("adjoint", GradMethod::Adjoint),
        ("finite_diff", GradMethod::FiniteDiff),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                critic
                    .forward_with_jacobian(black_box(&state), &cp, method)
                    .expect("jacobian")
            });
        });
    }
    group.finish();
}

fn bench_parallel_parameter_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("parameter_shift_threads");
    group.sample_size(30);
    let critic = critic_model();
    let cp = critic.init_params(4);
    let circ_params = &cp[..critic.circuit_param_count()];
    let state: Vec<f64> = (0..16)
        .map(|i| std::f64::consts::PI * i as f64 / 16.0)
        .collect();
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                jacobian_parameter_shift_parallel(
                    critic.circuit(),
                    critic.readout(),
                    black_box(&state),
                    circ_params,
                    threads,
                )
                .expect("jacobian")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_gradient_methods,
    bench_parallel_parameter_shift
);
criterion_main!(benches);
