//! Backend × scenario throughput: the cost of NISQ realism.
//!
//! Every registered scenario runs under every execution backend from a
//! string-constructible spec; this bench measures what each backend
//! costs on two of them. Two throughput axes per (backend, scenario)
//! cell:
//!
//! * **steps/s** — environment steps of deterministic evaluation
//!   rollouts (the decentralized-execution surface: one circuit per
//!   agent per step),
//! * **grad-steps/s** — optimizer-ready gradients per second of one
//!   update sweep (`transitions × (agents + critic)`); `ideal` uses the
//!   prebound adjoint engine, `sampled`/`noisy` the batched
//!   parameter-shift queue, and `trajectory` the per-trajectory adjoint
//!   (exact gradient of the sampled estimator in one forward walk plus
//!   one reverse sweep). `noisy` evaluations run the prebound
//!   superoperator slab executor (per-gate channels fused into dense
//!   4×4 superoperators, compiled once per batch); `trajectory`
//!   replaces the `4^n` density register with `samples` statevector
//!   runs per evaluation.
//!
//! Besides the criterion rows, the bench writes `BENCH_backend.json` at
//! the repository root so the backend axis' cost is recorded PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use qmarl_core::prelude::*;
use qmarl_env::prelude::*;

/// Horizon per episode (trimmed from the paper's T = 300 to keep the
/// noisy parameter-shift cells bench-friendly).
const EPISODE_LIMIT: usize = 20;

/// Episodes per update sweep (the replay minibatch).
const BATCH_EPISODES: usize = 2;

/// The backend ladder (spec strings, the user-facing spelling).
const BACKENDS: [&str; 4] = [
    "ideal",
    "sampled:shots=128:seed=1",
    "noisy:p1=0.001:p2=0.002",
    "trajectory:p1=0.001:p2=0.002:samples=16:seed=1",
];

/// The measured scenarios (every registered scenario runs under every
/// backend — `tests/backend_equivalence.rs` asserts that — these two are
/// the throughput record).
const SCENARIOS: [&str; 2] = ["single-hop", "two-tier"];

fn trainer(
    scenario: &str,
    backend: &ExecutionBackend,
    seed: u64,
) -> CtdeTrainer<Box<dyn ScenarioEnv>> {
    let mut train = TrainConfig::paper_default();
    train.seed = seed;
    build_scenario_trainer(scenario, backend, &train, Some(EPISODE_LIMIT)).expect("trainer")
}

/// Environment steps/s of deterministic evaluation rollouts.
fn eval_steps_per_sec(t: &mut CtdeTrainer<Box<dyn ScenarioEnv>>, episodes: usize) -> f64 {
    t.evaluate_parallel(1, 0).expect("warmup");
    let start = Instant::now();
    t.evaluate_parallel(episodes, 0).expect("evaluate");
    (episodes * EPISODE_LIMIT) as f64 / start.elapsed().as_secs_f64()
}

/// Optimizer-ready gradients/s of one update sweep over a filled replay.
fn grad_steps_per_sec(t: &mut CtdeTrainer<Box<dyn ScenarioEnv>>, reps: usize) -> f64 {
    t.run_epoch_parallel(BATCH_EPISODES, 0).expect("fill epoch");
    let grad_steps = (BATCH_EPISODES * EPISODE_LIMIT * (t.actors().len() + 1)) as f64;
    let start = Instant::now();
    for _ in 0..reps {
        t.update_sweep(BATCH_EPISODES).expect("sweep");
    }
    grad_steps * reps as f64 / start.elapsed().as_secs_f64()
}

fn bench_backend_rollouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_rollout_single_hop");
    group.sample_size(10);
    for spec in BACKENDS {
        let backend: ExecutionBackend = spec.parse().expect("spec");
        group.bench_with_input(BenchmarkId::new(backend.kind(), spec), &backend, |b, be| {
            let mut t = trainer("single-hop", be, 3);
            b.iter(|| black_box(t.evaluate_parallel(1, 0).expect("evaluate")));
        });
    }
    group.finish();
}

fn emit_backend_json(c: &mut Criterion) {
    let quick = std::env::var_os("QMARL_BENCH_QUICK").is_some_and(|v| v != "0");
    let (episodes, reps) = if quick { (2, 1) } else { (8, 3) };

    let mut cells = Vec::new();
    for scenario in SCENARIOS {
        for spec in BACKENDS {
            let backend: ExecutionBackend = spec.parse().expect("spec");
            let steps = eval_steps_per_sec(&mut trainer(scenario, &backend, 5), episodes);
            // Every cell measures its gradient sweep, quick mode
            // included: superoperator slabs lifted the noisy
            // parameter-shift sweep from single-digit to triple-digit
            // grad-steps/s, so even the slowest cell fits a CI smoke run.
            let grads = grad_steps_per_sec(&mut trainer(scenario, &backend, 5), reps);
            println!(
                "backend_sweep: {scenario:<12} {spec:<26} {steps:>9.0} steps/s {grads:>9.0} grad-steps/s"
            );
            cells.push(format!(
                "    {{\n      \"scenario\": \"{scenario}\",\n      \"backend\": \"{spec}\",\n      \
                 \"grad_rule\": \"{}\",\n      \"steps_per_sec\": {steps:.0},\n      \
                 \"grad_steps_per_sec\": {grads:.0}\n    }}",
                if backend.supports_adjoint() {
                    "adjoint (prebound)"
                } else if matches!(backend, ExecutionBackend::Trajectory { .. }) {
                    "adjoint (per-trajectory)"
                } else {
                    "parameter-shift (batched queue)"
                }
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"backend_sweep\",\n  \
         \"units\": \"steps_per_sec = env steps of argmax evaluation; \
         grad_steps_per_sec = transitions x (agents + critic) / s\",\n  \
         \"episode_limit\": {EPISODE_LIMIT},\n  \"batch_episodes\": {BATCH_EPISODES},\n  \
         \"determinism\": \"per-evaluation derived seeds; worker-count invariant \
         (tests/backend_equivalence.rs)\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backend.json");
    if quick {
        // Quick (CI smoke) measurements are too noisy to record; keep the
        // committed trajectory file authoritative.
        println!("backend_sweep: quick mode, not rewriting {path}");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("backend_sweep: wrote {path}"),
            Err(e) => println!("backend_sweep: could not write {path}: {e}"),
        }
    }
    let _ = c; // the JSON pass is measured manually, outside criterion
}

criterion_group!(benches, bench_backend_rollouts, emit_backend_json);
criterion_main!(benches);
