//! Per-kernel statevector throughput, scalar vs wide dispatch.
//!
//! Sweeps every gate-application kernel over register widths 2–12 qubits
//! and both SIMD dispatch levels (forced scalar, forced AVX2), recording
//! nanoseconds per amplitude. Each measurement cycles the target wire
//! through every qubit so low-stride (cache-friendly) and high-stride
//! pair traversals are averaged the way circuit execution actually mixes
//! them.
//!
//! Besides the criterion rows (one representative width per kernel), the
//! bench emits `BENCH_kernels.json` at the repository root so the kernel
//! layer's trajectory is recorded PR over PR. The two dispatch levels are
//! **bit-identical** (asserted in `qsim/tests/simd_parity.rs` and the
//! property suites); this sweep is pure throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use qmarl_qsim::apply;
use qmarl_qsim::complex::Complex64;
use qmarl_qsim::gate::{Gate1, Gate2};
use qmarl_qsim::simd::{self, SimdLevel};

/// Register widths swept (inclusive).
const MIN_QUBITS: usize = 2;
const MAX_QUBITS: usize = 12;

/// Amplitude-updates per measurement: iteration counts scale as
/// `TARGET >> n` so every cell costs roughly the same wall-clock.
const TARGET_FULL: usize = 1 << 22;
const TARGET_QUICK: usize = 1 << 14;

/// Deterministic non-trivial state: unit-magnitude phases from a tiny
/// LCG (timing only — the kernels never branch on values).
fn seed_state(n: usize) -> Vec<Complex64> {
    let dim = 1usize << n;
    let mut x = 0x9e3779b97f4a7c15u64;
    let norm = 1.0 / (dim as f64).sqrt();
    (0..dim)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let phase = (x >> 11) as f64 / (1u64 << 53) as f64 * std::f64::consts::TAU;
            Complex64::new(norm * phase.cos(), norm * phase.sin())
        })
        .collect()
}

/// One kernel of the sweep: applies itself with the given "base" wire
/// (further wires are taken cyclically above it). `min_qubits` gates out
/// widths too narrow for the kernel's arity.
struct Kernel {
    name: &'static str,
    min_qubits: usize,
    apply: fn(&mut [Complex64], usize, usize),
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "rx",
            min_qubits: 1,
            apply: |amps, q, _n| {
                apply::apply_rx_sc(amps, q, 0.29552020666133955, 0.955336489125606)
            },
        },
        Kernel {
            name: "ry",
            min_qubits: 1,
            apply: |amps, q, _n| {
                apply::apply_ry_sc(amps, q, 0.29552020666133955, 0.955336489125606)
            },
        },
        Kernel {
            name: "rz",
            min_qubits: 1,
            apply: |amps, q, _n| {
                apply::apply_rz_sc(amps, q, 0.29552020666133955, 0.955336489125606)
            },
        },
        Kernel {
            name: "gate1",
            min_qubits: 1,
            apply: |amps, q, _n| apply::apply_gate1(amps, q, &Gate1::hadamard()),
        },
        Kernel {
            name: "cnot",
            min_qubits: 2,
            apply: |amps, q, n| apply::apply_cnot(amps, q, (q + 1) % n),
        },
        Kernel {
            name: "cz",
            min_qubits: 2,
            apply: |amps, q, n| apply::apply_cz(amps, q, (q + 1) % n),
        },
        Kernel {
            name: "crx",
            min_qubits: 2,
            apply: |amps, q, n| {
                apply::apply_crx_sc(amps, q, (q + 1) % n, 0.29552020666133955, 0.955336489125606)
            },
        },
        Kernel {
            name: "gate2",
            min_qubits: 2,
            apply: |amps, q, n| apply::apply_gate2(amps, q, (q + 1) % n, &Gate2::cnot()),
        },
        Kernel {
            name: "toffoli",
            min_qubits: 3,
            apply: |amps, q, n| apply::apply_toffoli(amps, q, (q + 1) % n, (q + 2) % n),
        },
    ]
}

/// ns/amplitude of one kernel at one width under the current dispatch
/// level, target wire cycling across the register.
fn measure(kernel: &Kernel, n: usize, target_updates: usize) -> f64 {
    let dim = 1usize << n;
    let iters = (target_updates / dim).max(8);
    let mut amps = seed_state(n);
    for q in 0..n.min(4) {
        (kernel.apply)(&mut amps, q, n); // warm the caches and dispatch
    }
    let start = Instant::now();
    for it in 0..iters {
        (kernel.apply)(&mut amps, it % n, n);
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    black_box(&amps);
    elapsed / (iters * dim) as f64
}

/// Runs the full sweep at one dispatch level. Returns
/// `rows[kernel][width_index]`, `None` where the width is too narrow.
fn sweep(level: SimdLevel, target_updates: usize) -> Vec<Vec<Option<f64>>> {
    simd::force(level);
    let out = kernels()
        .iter()
        .map(|k| {
            (MIN_QUBITS..=MAX_QUBITS)
                .map(|n| (n >= k.min_qubits).then(|| measure(k, n, target_updates)))
                .collect()
        })
        .collect();
    simd::reinit_from_env();
    out
}

fn json_row(cells: &[Option<f64>]) -> String {
    let vals: Vec<String> = cells
        .iter()
        .map(|c| match c {
            Some(v) => format!("{v:.3}"),
            None => "null".to_string(),
        })
        .collect();
    format!("[{}]", vals.join(", "))
}

/// Measures the sweep at both levels and records it as JSON.
fn emit_kernels_json(c: &mut Criterion) {
    let quick = std::env::var_os("QMARL_BENCH_QUICK").is_some_and(|v| v != "0");
    let target = if quick { TARGET_QUICK } else { TARGET_FULL };

    let scalar = sweep(SimdLevel::Scalar, target);
    let wide_supported = simd::wide_supported();
    let wide = if wide_supported {
        sweep(SimdLevel::Avx2, target)
    } else {
        vec![vec![None; MAX_QUBITS - MIN_QUBITS + 1]; kernels().len()]
    };

    let qubits: Vec<String> = (MIN_QUBITS..=MAX_QUBITS).map(|n| n.to_string()).collect();
    let mut rows = String::new();
    for (i, k) in kernels().iter().enumerate() {
        let sep = if i + 1 < kernels().len() { "," } else { "" };
        rows.push_str(&format!(
            "    \"{}\": {{\n      \"scalar\": {},\n      \"wide\": {}\n    }}{sep}\n",
            k.name,
            json_row(&scalar[i]),
            json_row(&wide[i]),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"kernel_sweep\",\n  \
         \"unit\": \"ns_per_amplitude (target wire cycled across the register)\",\n  \
         \"dispatch_bit_identical\": \"asserted in qsim/tests/simd_parity.rs\",\n  \
         \"wide_supported\": {wide_supported},\n  \
         \"qubits\": [{}],\n  \"kernels\": {{\n{rows}  }}\n}}\n",
        qubits.join(", "),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    if quick {
        // Quick (CI smoke) measurements are too noisy to record; keep
        // the committed trajectory file authoritative.
        println!("kernel_sweep: quick mode, not rewriting {path}");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("kernel_sweep: wrote {path}"),
            Err(e) => println!("kernel_sweep: could not write {path}: {e}"),
        }
    }
    for (i, k) in kernels().iter().enumerate() {
        let last = MAX_QUBITS - MIN_QUBITS;
        if let (Some(s), Some(w)) = (scalar[i][last], wide[i][last].or(scalar[i][last])) {
            println!(
                "kernel_sweep: {:8} @ {MAX_QUBITS}q  scalar {s:.3} ns/amp, wide {w:.3} ns/amp ({:.2}x)",
                k.name,
                s / w
            );
        }
    }
    let _ = c; // the JSON pass is measured manually, outside criterion
}

/// Criterion rows at one representative width, both dispatch levels —
/// the regression-visible subset of the sweep.
fn bench_kernels(c: &mut Criterion) {
    const N: usize = 10;
    let mut group = c.benchmark_group("kernel_sweep_10q");
    group.sample_size(20);
    for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
        if level == SimdLevel::Avx2 && !simd::wide_supported() {
            continue;
        }
        for kernel in kernels() {
            group.bench_with_input(
                BenchmarkId::new(kernel.name, format!("{level:?}")),
                &level,
                |b, &level| {
                    simd::force(level);
                    let mut amps = seed_state(N);
                    let mut it = 0usize;
                    b.iter(|| {
                        (kernel.apply)(&mut amps, it % N, N);
                        it += 1;
                        black_box(&mut amps);
                    });
                    simd::reinit_from_env();
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, emit_kernels_json);
criterion_main!(benches);
