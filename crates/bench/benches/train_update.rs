//! Serial vs batched update-sweep throughput.
//!
//! The acceptance bar for the batched gradient engine: on the
//! paper-default scenario with quantum actors, the batched update sweep
//! (`UpdateEngine::Batched` — prebound adjoint lane slabs, one flat
//! queue per collection) must deliver ≥ 2× the grad-steps/sec of the
//! serial reference (`UpdateEngine::Serial` — one model-path adjoint per
//! circuit). Both engines apply **bit-identical** updates
//! (property-tested in `tests/batched_update_equivalence.rs`), so this
//! comparison is pure throughput.
//!
//! A *grad step* is one optimizer-ready gradient: `transitions x (agents
//! plus the critic)` per sweep. Besides the criterion rows, the bench
//! emits `BENCH_train.json` at the repository root with absolute
//! grad-steps/sec on the paper scenario and the wide N=8/K=4 scenario,
//! so the training hot path's trajectory is recorded PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use qmarl_core::prelude::*;
use qmarl_env::prelude::*;

/// Paper Table II horizon, trimmed to keep one sweep bench-friendly.
const EPISODE_LIMIT: usize = 50;

/// Episodes per update sweep (the replay minibatch).
const BATCH_EPISODES: usize = 4;

/// Builds the production quantum stack on a registry scenario (the same
/// `build_scenario_trainer` shapes training actually runs), replay
/// already filled with `BATCH_EPISODES` episodes.
fn trainer(scenario: &str, seed: u64, engine: UpdateEngine) -> CtdeTrainer<Box<dyn ScenarioEnv>> {
    let mut config = TrainConfig::paper_default();
    config.seed = seed;
    let mut t = build_scenario_trainer(
        scenario,
        &ExecutionBackend::Ideal,
        &config,
        Some(EPISODE_LIMIT),
    )
    .expect("trainer");
    t.set_update_engine(engine);
    // One vectorized epoch fills the replay with BATCH_EPISODES episodes
    // (its update doubles as engine warmup); the measured loop then
    // re-sweeps that fixed batch.
    t.run_epoch_vec(BATCH_EPISODES, BATCH_EPISODES)
        .expect("fill epoch");
    t
}

fn bench_update_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_sweep_paper_default");
    group.sample_size(10);
    for engine in [UpdateEngine::Serial, UpdateEngine::Batched] {
        group.bench_with_input(
            BenchmarkId::new(format!("{engine:?}"), BATCH_EPISODES),
            &engine,
            |b, &engine| {
                let mut t = trainer("single-hop", 1, engine);
                b.iter(|| black_box(t.update_sweep(BATCH_EPISODES).expect("sweep")));
            },
        );
    }
    group.finish();
}

/// Wall-clock grad-steps/sec of one engine: each sweep is timed on its
/// own and the *median* duration is reported, like criterion does — a
/// single frequency-throttled sweep on a shared host would otherwise
/// drag a whole-window mean far below steady-state throughput.
fn grad_steps_per_sec(t: &mut CtdeTrainer<Box<dyn ScenarioEnv>>, reps: usize) -> f64 {
    let grad_steps = (BATCH_EPISODES * EPISODE_LIMIT * (t.actors().len() + 1)) as f64;
    t.update_sweep(BATCH_EPISODES).expect("warmup sweep");
    let mut secs: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            t.update_sweep(BATCH_EPISODES).expect("sweep");
            start.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    grad_steps / secs[secs.len() / 2]
}

/// Measures both engines head-to-head on both scenarios and records the
/// result as JSON.
fn emit_train_json(c: &mut Criterion) {
    let quick = std::env::var_os("QMARL_BENCH_QUICK").is_some_and(|v| v != "0");
    let reps = if quick { 1 } else { 5 };

    let measure = |scenario: &str| -> (f64, f64) {
        let serial = grad_steps_per_sec(&mut trainer(scenario, 2, UpdateEngine::Serial), reps);
        let batched = grad_steps_per_sec(&mut trainer(scenario, 2, UpdateEngine::Batched), reps);
        (serial, batched)
    };
    let (paper_serial, paper_batched) = measure("single-hop");
    let (wide_serial, wide_batched) = measure("single-hop-wide");
    let paper_speedup = paper_batched / paper_serial;
    let wide_speedup = wide_batched / wide_serial;

    let json = format!(
        "{{\n  \"bench\": \"train_update\",\n  \
         \"unit\": \"grad_steps_per_sec (transitions x (agents + critic) / s)\",\n  \
         \"stat\": \"median sweep over {reps} reps\",\n  \
         \"batch_episodes\": {BATCH_EPISODES},\n  \"episode_limit\": {EPISODE_LIMIT},\n  \
         \"engines_bit_identical\": \"asserted in tests/batched_update_equivalence.rs\",\n  \
         \"single_hop\": {{\n    \"scenario\": \"paper default, quantum 4q/50p actors\",\n    \
         \"serial\": {paper_serial:.0},\n    \"batched\": {paper_batched:.0},\n    \
         \"batched_speedup\": {paper_speedup:.2}\n  }},\n  \
         \"single_hop_wide\": {{\n    \"scenario\": \"N=8 edges / K=4 clouds, quantum 8q actors\",\n    \
         \"serial\": {wide_serial:.0},\n    \"batched\": {wide_batched:.0},\n    \
         \"batched_speedup\": {wide_speedup:.2}\n  }}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    if quick {
        // Quick (CI smoke) measurements are too noisy to record; keep
        // the committed trajectory file authoritative.
        println!("train_update: quick mode, not rewriting {path}");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("train_update: wrote {path}"),
            Err(e) => println!("train_update: could not write {path}: {e}"),
        }
    }
    println!(
        "train_update: paper {paper_serial:.0} -> {paper_batched:.0} grad-steps/s ({paper_speedup:.2}x), \
         wide {wide_serial:.0} -> {wide_batched:.0} ({wide_speedup:.2}x)"
    );
    let _ = c; // the JSON pass is measured manually, outside criterion
}

criterion_group!(benches, bench_update_engines, emit_train_json);
criterion_main!(benches);
