//! Per-framework training-epoch cost (the "≈35 minutes for 1000 epochs"
//! row of the paper's Sec. IV-C, on our substrate).
//!
//! Uses a shortened 30-step episode so one Criterion sample stays cheap;
//! the full-length cost scales linearly in the episode limit.

use criterion::{criterion_group, criterion_main, Criterion};

use qmarl_core::prelude::*;

fn short_config() -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default();
    c.env.episode_limit = 30;
    c
}

fn bench_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_epoch_30steps");
    group.sample_size(10);
    for kind in FrameworkKind::TRAINABLE {
        group.bench_function(kind.name(), |b| {
            let mut trainer = build_trainer(kind, &short_config()).expect("paper config valid");
            b.iter(|| trainer.run_epoch().expect("epoch"));
        });
    }
    group.finish();
}

fn bench_gradient_method_ablation(c: &mut Criterion) {
    // The same Proposed epoch under adjoint vs parameter-shift training.
    let mut group = c.benchmark_group("proposed_epoch_by_grad_method");
    group.sample_size(10);
    for (name, method) in [
        ("adjoint", qmarl_vqc::grad::GradMethod::Adjoint),
        (
            "parameter_shift",
            qmarl_vqc::grad::GradMethod::ParameterShift,
        ),
    ] {
        group.bench_function(name, |b| {
            let mut cfg = short_config();
            cfg.train.grad_method = method;
            let mut trainer =
                build_trainer(FrameworkKind::Proposed, &cfg).expect("paper config valid");
            b.iter(|| trainer.run_epoch().expect("epoch"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epochs, bench_gradient_method_ablation);
criterion_main!(benches);
