//! Runtime engine benchmarks: batched vs serial circuit execution.
//!
//! The acceptance bar for the runtime subsystem: on the paper's 4-qubit,
//! 3-layer ansatz, `BatchExecutor` must beat a serial `vqc::exec::run`
//! loop at batch sizes ≥ 32. The serial baselines below re-interpret the
//! circuit IR per evaluation (what the stack did before the runtime
//! existed); the batched rows run one compiled, fused schedule across the
//! work-queue scheduler. `compiled_serial` isolates the compilation win
//! from the parallelism win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qmarl_runtime::prelude::*;
use qmarl_vqc::prelude::*;

/// The paper's actor-shaped circuit: 4 qubits, 4 encoder angles, 3
/// variational layers (4 rotations each) with CNOT entangling rings.
fn three_layer_circuit() -> Circuit {
    let mut c = layered_angle_encoder(4, 4).expect("encoder");
    c.append_shifted(&layered_ansatz(4, 12).expect("3-layer ansatz"))
        .expect("append");
    c
}

fn batch_inputs(batch: usize) -> Vec<Vec<f64>> {
    (0..batch)
        .map(|b| (0..4).map(|i| 0.03 * (b * 4 + i) as f64 - 0.5).collect())
        .collect()
}

fn bench_forward_batch(c: &mut Criterion) {
    let circuit = three_layer_circuit();
    let compiled = compile(&circuit);
    let params = init_params(circuit.param_count(), 7);
    let mut group = c.benchmark_group("runtime_forward_4q3l");
    for batch in [1usize, 8, 32, 128] {
        let inputs = batch_inputs(batch);
        group.bench_with_input(
            BenchmarkId::new("serial_interpreter", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    for item in &inputs {
                        black_box(
                            qmarl_vqc::exec::run(&circuit, black_box(item), &params).expect("run"),
                        );
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_serial", batch),
            &batch,
            |b, _| {
                let ex = BatchExecutor::serial();
                b.iter(|| {
                    black_box(
                        ex.run_batch(&compiled, black_box(&inputs), &params)
                            .expect("batch"),
                    )
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, _| {
            let ex = BatchExecutor::default();
            b.iter(|| {
                black_box(
                    ex.run_batch(&compiled, black_box(&inputs), &params)
                        .expect("batch"),
                )
            });
        });
    }
    group.finish();
}

fn bench_gradient_batch(c: &mut Criterion) {
    let circuit = three_layer_circuit();
    let compiled = compile(&circuit);
    let params = init_params(circuit.param_count(), 9);
    let readout = Readout::z_all(4);
    let mut group = c.benchmark_group("runtime_param_shift_4q3l");
    group.sample_size(10);
    for batch in [1usize, 4, 16] {
        let inputs = batch_inputs(batch);
        group.bench_with_input(BenchmarkId::new("serial", batch), &batch, |b, _| {
            b.iter(|| {
                for item in &inputs {
                    black_box(
                        jacobian_parameter_shift(&circuit, &readout, black_box(item), &params)
                            .expect("jacobian"),
                    );
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, _| {
            let ex = BatchExecutor::default();
            b.iter(|| {
                black_box(
                    ex.jacobian_batch(&compiled, &readout, black_box(&inputs), &params)
                        .expect("jacobian"),
                )
            });
        });
    }
    group.finish();
}

fn bench_rollout_workers(c: &mut Criterion) {
    use qmarl_env::prelude::*;
    use rand::rngs::StdRng;
    use rand::Rng;

    let mut cfg = EnvConfig::paper_default();
    cfg.episode_limit = 50;
    let template = SingleHopEnv::new(cfg, 1).expect("env");
    let policy = |_i: usize| {
        |obs: &[Vec<f64>], rng: &mut StdRng| -> Result<(Vec<usize>, f64), RuntimeError> {
            Ok((obs.iter().map(|_| rng.gen_range(0..4)).collect(), 0.0))
        }
    };
    let mut group = c.benchmark_group("runtime_rollout_16eps");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(
                    collect_episodes(
                        &template,
                        policy,
                        16,
                        &RolloutConfig {
                            workers: w,
                            base_seed: 3,
                        },
                    )
                    .expect("rollout"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_batch,
    bench_gradient_batch,
    bench_rollout_workers
);
criterion_main!(benches);
