//! Environment throughput: step cost and full-episode rollouts, plus the
//! random-walk baseline used to normalise Fig. 3's achievability.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qmarl_env::prelude::*;

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("env");
    group.bench_function("step", |b| {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = usize::MAX >> 1; // never terminates in-bench
        let mut env = SingleHopEnv::new(cfg, 1).expect("valid config");
        env.reset();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 4;
            env.step(black_box(&[i, (i + 1) % 4, (i + 2) % 4, (i + 3) % 4]))
                .expect("step")
        });
    });
    group.bench_function("rollout_300_steps", |b| {
        let cfg = EnvConfig::paper_default();
        let mut env = SingleHopEnv::new(cfg, 2).expect("valid config");
        b.iter(|| rollout_episode(&mut env, |_| vec![0, 1, 2, 3]).expect("rollout"));
    });
    group.bench_function("random_walk_episode", |b| {
        let cfg = EnvConfig::paper_default();
        let mut env = SingleHopEnv::new(cfg, 3).expect("valid config");
        b.iter(|| random_walk_baseline(&mut env, 1, 7).expect("baseline"));
    });
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
