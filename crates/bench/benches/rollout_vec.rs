//! Vectorized vs per-episode rollout throughput.
//!
//! The acceptance bar for the vectorized environment layer: on the
//! paper-default scenario with quantum actors, lockstep collection
//! (`CtdeTrainer::rollout_vec` — one flat prebound circuit batch per
//! tick) must deliver ≥ 2× the steps/sec of the per-episode engine
//! (`CtdeTrainer::rollout_parallel`). Both engines produce bit-identical
//! episodes (property-tested in `qmarl-runtime`), so this comparison is
//! pure throughput.
//!
//! Besides the criterion rows, the bench emits `BENCH_rollout.json` at
//! the repository root with absolute steps/sec, so the performance
//! trajectory of the rollout path is recorded PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use qmarl_core::prelude::*;
use qmarl_env::prelude::*;

/// Paper Table II environment, trimmed to a bench-friendly horizon.
const EPISODE_LIMIT: usize = 100;

fn trainer(seed: u64) -> CtdeTrainer<SingleHopEnv> {
    let mut cfg = EnvConfig::paper_default();
    cfg.episode_limit = EPISODE_LIMIT;
    let env = SingleHopEnv::new(cfg, seed).expect("env");
    let actors: Vec<Box<dyn Actor>> = (0..4)
        .map(|n| {
            Box::new(QuantumActor::new(4, 4, 4, 50, seed + n).expect("actor")) as Box<dyn Actor>
        })
        .collect();
    let critic = Box::new(QuantumCritic::new(4, 16, 50, seed + 100).expect("critic"));
    CtdeTrainer::new(env, actors, critic, TrainConfig::paper_default()).expect("trainer")
}

fn bench_rollout_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollout_paper_default");
    group.sample_size(10);
    for episodes in [8usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("per_episode", episodes),
            &episodes,
            |b, &eps| {
                let mut t = trainer(1);
                b.iter(|| black_box(t.rollout_parallel(eps, 0, false).expect("rollout")));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("vectorized", episodes),
            &episodes,
            |b, &eps| {
                let mut t = trainer(1);
                b.iter(|| black_box(t.rollout_vec(eps, eps, false).expect("rollout")));
            },
        );
    }
    group.finish();
}

/// Wall-clock steps/sec of one engine, mean over `reps` collections.
fn steps_per_sec<F: FnMut() -> usize>(reps: usize, mut collect: F) -> f64 {
    let mut steps = collect(); // warmup (counted for shape only)
    let start = Instant::now();
    for _ in 0..reps {
        steps = collect();
    }
    steps as f64 * reps as f64 / start.elapsed().as_secs_f64()
}

/// Measures both engines head-to-head and records the result as JSON.
fn emit_rollout_json(c: &mut Criterion) {
    let quick = std::env::var_os("QMARL_BENCH_QUICK").is_some_and(|v| v != "0");
    let (episodes, reps) = if quick { (8usize, 2usize) } else { (16, 8) };

    let mut t = trainer(2);
    let parallel = steps_per_sec(reps, || {
        t.rollout_parallel(episodes, 0, false)
            .expect("rollout")
            .iter()
            .map(|(ep, _, _)| ep.len())
            .sum()
    });
    let mut t = trainer(2);
    let vectorized = steps_per_sec(reps, || {
        t.rollout_vec(episodes, episodes, false)
            .expect("rollout")
            .iter()
            .map(|(ep, _, _)| ep.len())
            .sum()
    });
    let speedup = vectorized / parallel;

    let json = format!(
        "{{\n  \"bench\": \"rollout\",\n  \"scenario\": \"single-hop (paper default, T={EPISODE_LIMIT})\",\n  \
         \"episodes_per_collection\": {episodes},\n  \"actors\": \"quantum 4q/50p\",\n  \
         \"steps_per_sec\": {{\n    \"per_episode\": {parallel:.0},\n    \"vectorized\": {vectorized:.0}\n  }},\n  \
         \"vectorized_speedup\": {speedup:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rollout.json");
    if quick {
        // Quick (CI smoke) measurements are too noisy to record; keep
        // the committed trajectory file authoritative.
        println!("rollout_vec: quick mode, not rewriting {path}");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("rollout_vec: wrote {path}"),
            Err(e) => println!("rollout_vec: could not write {path}: {e}"),
        }
    }
    println!(
        "rollout_vec: per-episode {parallel:.0} steps/s, vectorized {vectorized:.0} steps/s ({speedup:.2}x)"
    );
    let _ = c; // the JSON pass is measured manually, outside criterion
}

criterion_group!(benches, bench_rollout_engines, emit_rollout_json);
criterion_main!(benches);
