//! Table II: the experiment parameters, plus the per-framework trainable-
//! parameter accounting of Sec. IV-C ("the trainable parameters of these
//! three frameworks are all set to 50 … Comp3 … more than 40K"), the
//! budgets computed over the harness task pool.

use qmarl_bench::figures::table2_param_budgets;
use qmarl_bench::write_results;
use qmarl_core::prelude::*;

fn main() {
    let config = ExperimentConfig::paper_default();
    println!("== Table II: experiment parameters ==\n");
    print!("{}", config.table2());

    println!("\n== Sec. IV-C: trainable-parameter budgets ==\n");
    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>12}",
        "framework", "per actor", "actors", "critic", "total"
    );
    let (reports, artifact) = table2_param_budgets(&config).expect("paper config valid");
    for r in &reports {
        println!(
            "{:<12} {:>10} {:>8} {:>10} {:>12}",
            r.kind.name(),
            r.per_actor,
            r.n_actors,
            r.critic,
            r.total()
        );
    }
    let path = write_results(&artifact.name, &artifact.content);
    println!("\nwrote {}", path.display());
    println!("paper reference: Proposed/Comp1/Comp2 ≈ 50 per network; Comp3 > 40 000");
}
