//! Table II: the experiment parameters, plus the per-framework trainable-
//! parameter accounting of Sec. IV-C ("the trainable parameters of these
//! three frameworks are all set to 50 … Comp3 … more than 40K").

use qmarl_bench::write_results;
use qmarl_core::prelude::*;

fn main() {
    let config = ExperimentConfig::paper_default();
    println!("== Table II: experiment parameters ==\n");
    print!("{}", config.table2());

    println!("\n== Sec. IV-C: trainable-parameter budgets ==\n");
    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>12}",
        "framework", "per actor", "actors", "critic", "total"
    );
    let mut csv = String::from("framework,per_actor,n_actors,critic,total\n");
    for kind in [
        FrameworkKind::Proposed,
        FrameworkKind::Comp1,
        FrameworkKind::Comp2,
        FrameworkKind::Comp3,
        FrameworkKind::RandomWalk,
    ] {
        let r = parameter_report(kind, &config).expect("paper config valid");
        println!(
            "{:<12} {:>10} {:>8} {:>10} {:>12}",
            kind.name(),
            r.per_actor,
            r.n_actors,
            r.critic,
            r.total()
        );
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            kind.name(),
            r.per_actor,
            r.n_actors,
            r.critic,
            r.total()
        ));
    }
    let path = write_results("table2_param_budgets.csv", &csv);
    println!("\nwrote {}", path.display());
    println!("paper reference: Proposed/Comp1/Comp2 ≈ 50 per network; Comp3 > 40 000");
}
