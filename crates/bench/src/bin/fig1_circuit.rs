//! Fig. 1: the anatomy of the paper's VQC — state encoder, parametrized
//! circuit, measurement — rendered as ASCII circuit diagrams.

use qmarl_bench::Args;
use qmarl_core::prelude::ExperimentConfig;
use qmarl_vqc::prelude::*;

fn main() {
    let args = Args::from_env();
    let config = ExperimentConfig::paper_default();
    let n_qubits = config.train.n_qubits;
    let full = args.has("full");

    println!("== Fig. 1: VQC structure (state encoder → U_var → measurement) ==\n");

    // Actor: one observation feature per qubit → single Rx encoder layer.
    let obs_dim = config.env.obs_dim();
    let actor_enc = layered_angle_encoder(n_qubits, obs_dim).expect("valid encoder");
    println!(
        "Quantum actor encoder U_enc (obs dim {obs_dim} → {n_qubits} qubits, {} layer):",
        encoder_depth(n_qubits, obs_dim)
    );
    println!("{}", qmarl_vqc::diagram::render(&actor_enc));

    // Critic: 16 state features → 4 layers cycling Rx, Ry, Rz, Rx (the
    // green box of Fig. 1).
    let state_dim = config.env.state_dim();
    let critic_enc = layered_angle_encoder(n_qubits, state_dim).expect("valid encoder");
    println!("Quantum critic state encoder U_enc (state dim {state_dim} → {n_qubits} qubits, {} layers):", encoder_depth(n_qubits, state_dim));
    println!("{}", qmarl_vqc::diagram::render(&critic_enc));

    // The parametrized circuit at the paper's 50-parameter budget.
    let var = layered_ansatz(n_qubits, config.train.critic_params - 2).expect("valid ansatz");
    println!(
        "Parametrized circuit U_var ({}):",
        qmarl_vqc::diagram::summary(&var)
    );
    if full {
        println!("{}", qmarl_vqc::diagram::render(&var));
    } else {
        // Show the first two layers; --full prints everything.
        let mut preview = Circuit::new(n_qubits);
        preview
            .append_shifted(&layered_ansatz(n_qubits, 8).expect("valid"))
            .expect("same width");
        println!(
            "{}(first two layers shown; pass --full for all {} gates)\n",
            qmarl_vqc::diagram::render(&preview),
            var.gate_count()
        );
    }

    // torchquantum-style random layer, as named in Fig. 1.
    let rand_layer =
        random_layer_ansatz(n_qubits, RandomLayerConfig::default()).expect("valid config");
    println!(
        "Random layer variant ({}):",
        qmarl_vqc::diagram::summary(&rand_layer)
    );
    if full {
        println!("{}", qmarl_vqc::diagram::render(&rand_layer));
    }

    println!(
        "Measurement M: ⟨Z⟩ per wire (actor: {} action logits; critic: weighted sum → V(s))",
        n_qubits
    );
}
