//! Fig. 4: the demonstration — a trained QMARL team rolled out for 12
//! unit-steps, showing every queue's trajectory and the first edge
//! agent's 4-qubit state as an HLS heatmap per step.
//!
//! ```text
//! cargo run --release -p qmarl-bench --bin fig4_demonstration -- \
//!     --epochs 300 --steps 12
//! ```

use qmarl_bench::figures::fig4_demonstration;
use qmarl_bench::{write_results, Args};
use qmarl_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 300);
    let steps: usize = args.get("steps", 12);
    let seed: u64 = args.get("seed", 7);
    let agent: usize = args.get("agent", 0);

    println!(
        "== Fig. 4: training Proposed for {epochs} epochs, then a {steps}-step demonstration =="
    );
    let out = fig4_demonstration(epochs, steps, seed, agent, args.has("argmax"))
        .expect("demonstration rolls out");
    println!("trained: final reward ≈ {:.1}\n", out.final_reward);

    println!(
        "Queue trajectories over {} unit-steps (▁ empty … █ full):\n",
        out.frames.len()
    );
    println!("{}", render_queue_chart(&out.frames));

    println!("1st edge agent's qubit states (rows q1q2 × cols q3q4, colour = phase):\n");
    for f in &out.frames {
        println!("{}", render_heatmap_ansi(f));
    }

    let path = write_results(&out.artifact.name, &out.artifact.content);
    println!("wrote {}", path.display());
}
