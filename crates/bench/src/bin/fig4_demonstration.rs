//! Fig. 4: the demonstration — a trained QMARL team rolled out for 12
//! unit-steps, showing every queue's trajectory and the first edge
//! agent's 4-qubit state as an HLS heatmap per step.
//!
//! ```text
//! cargo run --release -p qmarl-bench --bin fig4_demonstration -- \
//!     --epochs 300 --steps 12
//! ```

use qmarl_bench::{write_results, Args};
use qmarl_core::prelude::*;
use qmarl_env::prelude::SingleHopEnv;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 300);
    let steps: usize = args.get("steps", 12);
    let seed: u64 = args.get("seed", 7);
    let agent: usize = args.get("agent", 0);

    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = epochs;
    config.train.seed = seed;

    println!(
        "== Fig. 4: training Proposed for {epochs} epochs, then a {steps}-step demonstration =="
    );
    let mut trainer = build_trainer(FrameworkKind::Proposed, &config).expect("paper config valid");
    trainer.train(epochs).expect("training runs");
    let final_reward = trainer
        .history()
        .final_reward((epochs / 10).max(1))
        .expect("history");
    println!("trained: final reward ≈ {final_reward:.1}\n");

    // Rebuild the quantum views of the trained actors (for register access).
    let mut quantum_views: Vec<QuantumActor> = (0..config.env.n_edges)
        .map(|n| {
            QuantumActor::new(
                config.train.n_qubits,
                config.env.obs_dim(),
                config.env.n_clouds * config.env.packet_amounts.len(),
                config.train.actor_params,
                config.train.seed.wrapping_add(1000 + n as u64),
            )
            .expect("paper config valid")
        })
        .collect();
    for (view, actor) in quantum_views.iter_mut().zip(trainer.actors()) {
        view.set_params(&actor.params()).expect("same architecture");
    }
    let actors: Vec<Box<dyn Actor>> = quantum_views
        .iter()
        .map(|q| Box::new(q.clone()) as Box<dyn Actor>)
        .collect();

    let mut env = SingleHopEnv::new(config.env.clone(), seed + 1).expect("paper config valid");
    let deterministic = args.has("argmax");
    let frames = run_demonstration(
        &mut env,
        &actors,
        &quantum_views,
        agent,
        steps,
        seed,
        deterministic,
    )
    .expect("demonstration rolls out");

    println!(
        "Queue trajectories over {} unit-steps (▁ empty … █ full):\n",
        frames.len()
    );
    println!("{}", render_queue_chart(&frames));

    println!("1st edge agent's qubit states (rows q1q2 × cols q3q4, colour = phase):\n");
    for f in &frames {
        println!("{}", render_heatmap_ansi(f));
    }

    let path = write_results("fig4_demonstration.csv", &frames_to_csv(&frames));
    println!("wrote {}", path.display());
}
