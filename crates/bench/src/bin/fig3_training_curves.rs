//! Fig. 3 (a–d): training curves of all four frameworks + random walk.
//!
//! Trains the `framework × seed` grid as one harness sweep over the
//! worker pool, averages over `--seeds` runs, writes one CSV per panel
//! into `results/` and prints the paper's summary rows (converged
//! rewards, achievability, average queue, event-ratio orderings).
//!
//! ```text
//! cargo run --release -p qmarl-bench --bin fig3_training_curves -- \
//!     --epochs 1000 --seeds 3 --seed 7
//! ```

use qmarl_bench::figures::fig3_training_curves;
use qmarl_bench::{write_results, Args};
use qmarl_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 1000);
    let seeds: u64 = args.get("seeds", 3);
    let base_seed: u64 = args.get("seed", 7);
    let smooth: usize = args.get("smooth", 25);

    let config = ExperimentConfig::paper_default();
    println!("== Fig. 3 reproduction: {epochs} epochs x {seeds} seeds ==");
    println!(
        "env: K={} clouds, N={} edges, T={} steps/episode",
        config.env.n_clouds, config.env.n_edges, config.env.episode_limit
    );

    let out = fig3_training_curves(epochs, seeds, base_seed, smooth).expect("fig3 grid runs");
    println!(
        "random walk: reward {:.1} (paper: -33.2), avg queue {:.3}",
        out.random_walk.total_reward, out.random_walk.avg_queue
    );
    for artifact in &out.artifacts {
        let path = write_results(&artifact.name, &artifact.content);
        // Panel CSVs are announced like the historical binary; per-seed
        // audit histories are written silently, also like it.
        if artifact.name.starts_with("fig3") && !artifact.name.contains("_seed") {
            println!("wrote {}", path.display());
        }
    }

    println!(
        "\n{:<10} {:>10} {:>8} {:>14} {:>10} {:>10} {:>10}",
        "framework", "reward", "±std", "achievability", "avg queue", "empty", "overflow"
    );
    for row in &out.rows {
        println!(
            "{:<10} {:>10.2} {:>8.2} {:>13.1}% {:>10.3} {:>10.3} {:>10.3}",
            row.kind.name(),
            row.reward,
            row.std,
            100.0 * row.achievability,
            row.avg_queue,
            row.empty_ratio,
            row.overflow_ratio,
        );
    }
    let rw = &out.random_walk;
    println!(
        "{:<10} {:>10.2} {:>8} {:>13.1}% {:>10.3} {:>10.3} {:>10.3}",
        "RandomWalk", rw.total_reward, "-", 0.0, rw.avg_queue, rw.empty_ratio, rw.overflow_ratio,
    );
    println!("\npaper reference: Proposed -3.0 (90.9%), Comp1 -16.6 (49.8%), Comp2 -22.5 (33.2%), Comp3 -2.8 (91.5%), random -33.2");
}
