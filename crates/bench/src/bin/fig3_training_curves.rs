//! Fig. 3 (a–d): training curves of all four frameworks + random walk.
//!
//! Trains `Proposed`, `Comp1`, `Comp2` and `Comp3` in parallel threads,
//! averages over `--seeds` runs, writes one CSV per panel into `results/`
//! and prints the paper's summary rows (converged rewards, achievability,
//! average queue, event-ratio orderings).
//!
//! ```text
//! cargo run --release -p qmarl-bench --bin fig3_training_curves -- \
//!     --epochs 1000 --seeds 3 --seed 7
//! ```

use qmarl_bench::{mean_std, moving_average, write_results, Args};
use qmarl_core::prelude::*;
use qmarl_env::prelude::*;

struct FrameworkRun {
    kind: FrameworkKind,
    /// Per-seed training histories.
    histories: Vec<TrainingHistory>,
}

fn train_one(
    kind: FrameworkKind,
    base: &ExperimentConfig,
    seeds: u64,
) -> Result<FrameworkRun, CoreError> {
    let mut histories = Vec::new();
    for s in 0..seeds {
        let mut cfg = base.clone();
        cfg.train.seed = base.train.seed + s * 101;
        let mut trainer = build_trainer(kind, &cfg)?;
        trainer.train(cfg.train.epochs)?;
        histories.push(trainer.history().clone());
    }
    Ok(FrameworkRun { kind, histories })
}

/// Mean of a per-epoch metric across seeds.
fn mean_series<F: Fn(&EpochRecord) -> f64>(run: &FrameworkRun, f: F) -> Vec<f64> {
    let epochs = run.histories[0].len();
    (0..epochs)
        .map(|e| {
            run.histories
                .iter()
                .map(|h| f(&h.records()[e]))
                .sum::<f64>()
                / run.histories.len() as f64
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 1000);
    let seeds: u64 = args.get("seeds", 3);
    let base_seed: u64 = args.get("seed", 7);
    let smooth: usize = args.get("smooth", 25);

    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = epochs;
    config.train.seed = base_seed;

    println!("== Fig. 3 reproduction: {epochs} epochs x {seeds} seeds ==");
    println!(
        "env: K={} clouds, N={} edges, T={} steps/episode",
        config.env.n_clouds, config.env.n_edges, config.env.episode_limit
    );

    // Random-walk normalisation baseline (Sec. IV-D1).
    let mut rw_env = SingleHopEnv::new(config.env.clone(), base_seed).expect("env config valid");
    let rw = random_walk_baseline(&mut rw_env, 200, base_seed).expect("random walk runs");
    println!(
        "random walk: reward {:.1} (paper: -33.2), avg queue {:.3}",
        rw.total_reward, rw.avg_queue
    );

    // Train all four frameworks in parallel on the shared work queue.
    let runs: Vec<FrameworkRun> = qmarl_qsim::par::parallel_map(
        &FrameworkKind::TRAINABLE,
        FrameworkKind::TRAINABLE.len(),
        |_, &kind| train_one(kind, &config, seeds).expect("training runs"),
    );

    // One CSV per Fig. 3 panel: epoch, then per-framework mean columns
    // (raw and moving-average-smoothed).
    type Panel = (&'static str, fn(&EpochRecord) -> f64);
    let panels: [Panel; 4] = [
        ("fig3a_reward.csv", |r| r.metrics.total_reward),
        ("fig3b_avg_queue.csv", |r| r.metrics.avg_queue),
        ("fig3c_empty_ratio.csv", |r| r.metrics.empty_ratio),
        ("fig3d_overflow_ratio.csv", |r| r.metrics.overflow_ratio),
    ];
    for (name, metric) in panels {
        let mut csv = String::from("epoch");
        for run in &runs {
            csv.push_str(&format!(",{k},{k}_smooth", k = run.kind));
        }
        csv.push('\n');
        let series: Vec<(Vec<f64>, Vec<f64>)> = runs
            .iter()
            .map(|run| {
                let raw = mean_series(run, metric);
                let ma = moving_average(&raw, smooth);
                (raw, ma)
            })
            .collect();
        for e in 0..epochs {
            csv.push_str(&format!("{e}"));
            for (raw, ma) in &series {
                csv.push_str(&format!(",{:.6},{:.6}", raw[e], ma[e]));
            }
            csv.push('\n');
        }
        let path = write_results(name, &csv);
        println!("wrote {}", path.display());
    }

    // Summary table (the numbers quoted in Sec. IV-D).
    let tail = (epochs / 10).max(1);
    println!(
        "\n{:<10} {:>10} {:>8} {:>14} {:>10} {:>10} {:>10}",
        "framework", "reward", "±std", "achievability", "avg queue", "empty", "overflow"
    );
    let mut summary = String::from(
        "framework,reward,reward_std,achievability,avg_queue,empty_ratio,overflow_ratio\n",
    );
    for run in &runs {
        let finals: Vec<f64> = run
            .histories
            .iter()
            .map(|h| h.final_reward(tail).expect("history nonempty"))
            .collect();
        let (reward, std) = mean_std(&finals);
        let ach = achievability(reward, rw.total_reward);
        let avg_q: Vec<f64> = run
            .histories
            .iter()
            .map(|h| h.final_metric(tail, |r| r.metrics.avg_queue).unwrap())
            .collect();
        let empty: Vec<f64> = run
            .histories
            .iter()
            .map(|h| h.final_metric(tail, |r| r.metrics.empty_ratio).unwrap())
            .collect();
        let over: Vec<f64> = run
            .histories
            .iter()
            .map(|h| h.final_metric(tail, |r| r.metrics.overflow_ratio).unwrap())
            .collect();
        println!(
            "{:<10} {:>10.2} {:>8.2} {:>13.1}% {:>10.3} {:>10.3} {:>10.3}",
            run.kind.name(),
            reward,
            std,
            100.0 * ach,
            mean_std(&avg_q).0,
            mean_std(&empty).0,
            mean_std(&over).0,
        );
        summary.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            run.kind.name(),
            reward,
            std,
            ach,
            mean_std(&avg_q).0,
            mean_std(&empty).0,
            mean_std(&over).0,
        ));
    }
    println!(
        "{:<10} {:>10.2} {:>8} {:>13.1}% {:>10.3} {:>10.3} {:>10.3}",
        "RandomWalk", rw.total_reward, "-", 0.0, rw.avg_queue, rw.empty_ratio, rw.overflow_ratio,
    );
    summary.push_str(&format!(
        "RandomWalk,{:.4},0,0,{:.4},{:.4},{:.4}\n",
        rw.total_reward, rw.avg_queue, rw.empty_ratio, rw.overflow_ratio
    ));
    let path = write_results("fig3_summary.csv", &summary);
    println!("\nwrote {}", path.display());
    println!("\npaper reference: Proposed -3.0 (90.9%), Comp1 -16.6 (49.8%), Comp2 -22.5 (33.2%), Comp3 -2.8 (91.5%), random -33.2");

    // Per-seed full histories for reproducibility audits.
    for run in &runs {
        for (s, h) in run.histories.iter().enumerate() {
            write_results(
                &format!("fig3_{}_seed{}.csv", run.kind.name().to_lowercase(), s),
                &h.to_csv(),
            );
        }
    }
}
