//! Ablation A (the paper's motivation, Sec. I): naive CTDE vs state
//! encoding.
//!
//! A naive quantum centralized critic assigns **one qubit per state
//! feature**, so the register grows as `N · obs_dim` with the number of
//! agents; the paper's layered state encoding keeps it at 4 qubits. This
//! ablation quantifies the consequences the paper argues from:
//!
//! * simulation cost — statevector size and wall time per value+gradient,
//! * NISQ noise accumulation — purity loss under per-gate depolarizing
//!   noise (density-matrix simulation, which itself becomes intractable
//!   beyond ~10 wires: the blank cells are part of the result).

use std::time::Instant;

use qmarl_bench::{write_results, Args};
use qmarl_core::prelude::*;
use qmarl_env::prelude::EnvConfig;
use qmarl_qsim::noise::NoiseModel;
use qmarl_vqc::prelude::run_noisy;

/// Density-matrix simulation above this register width is impractical on
/// a laptop (memory and time are 4^n); report it as such.
const MAX_NOISY_QUBITS: usize = 8;

fn main() {
    let args = Args::from_env();
    let budget: usize = args.get("params", 50);
    let noise_p: f64 = args.get("noise", 0.01);
    let seed: u64 = args.get("seed", 7);

    println!("== Ablation A: qubit scaling — naive CTDE vs state encoding ==\n");
    println!(
        "{:<8} {:>10} {:>11} {:>13} {:>15} {:>16} {:>11} {:>13}",
        "agents",
        "state dim",
        "enc qubits",
        "naive qubits",
        "enc grad (µs)",
        "naive grad (µs)",
        "enc purity",
        "naive purity"
    );
    let mut csv = String::from(
        "n_agents,state_dim,encoded_qubits,naive_qubits,encoded_grad_us,naive_grad_us,encoded_purity,naive_purity\n",
    );

    for n_agents in [1usize, 2, 3, 4] {
        let mut env_cfg = EnvConfig::paper_default();
        env_cfg.n_edges = n_agents;
        let state_dim = env_cfg.state_dim();
        let state: Vec<f64> = (0..state_dim).map(|i| 0.07 * (i as f64) % 1.0).collect();

        // The paper's critic: fixed 4 qubits via layered encoding.
        let encoded = QuantumCritic::new(4, state_dim, budget, seed).expect("valid critic");
        // The naive critic: one wire per feature.
        let naive = NaiveQuantumCritic::new(state_dim, budget, seed).expect("valid critic");

        let time_grad = |f: &dyn Fn()| -> f64 {
            f(); // warm up
            let reps = 20;
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e6 / reps as f64
        };
        let enc_us = time_grad(&|| {
            encoded.value_with_gradient(&state).expect("gradient");
        });
        let naive_us = time_grad(&|| {
            naive.value_with_gradient(&state).expect("gradient");
        });

        // Purity after noisy execution with the same per-gate rate.
        let noise = NoiseModel::depolarizing(noise_p, 2.0 * noise_p).expect("valid noise");
        let purity = |model: &qmarl_vqc::qnn::Vqc, params: &[f64]| -> Option<f64> {
            if model.circuit().n_qubits() > MAX_NOISY_QUBITS {
                return None;
            }
            let circ_params = &params[..model.circuit_param_count()];
            let scaled: Vec<f64> = state.iter().map(|x| x * std::f64::consts::PI).collect();
            Some(
                run_noisy(model.circuit(), &scaled, circ_params, &noise)
                    .expect("noisy run")
                    .purity(),
            )
        };
        let enc_purity = purity(encoded.model(), &encoded.params());
        let naive_purity = purity(naive.model(), &naive.params());
        let show = |p: Option<f64>| match p {
            Some(v) => format!("{v:.4}"),
            None => "intractable".to_string(),
        };

        println!(
            "{:<8} {:>10} {:>11} {:>13} {:>15.1} {:>16.1} {:>11} {:>13}",
            n_agents,
            state_dim,
            4,
            naive.n_qubits(),
            enc_us,
            naive_us,
            show(enc_purity),
            show(naive_purity)
        );
        csv.push_str(&format!(
            "{n_agents},{state_dim},4,{},{enc_us:.2},{naive_us:.2},{},{}\n",
            naive.n_qubits(),
            enc_purity.map_or(String::from(""), |v| format!("{v:.6}")),
            naive_purity.map_or(String::from(""), |v| format!("{v:.6}")),
        ));
    }

    let path = write_results("ablation_qubit_scaling.csv", &csv);
    println!("\nwrote {}", path.display());
    println!("\nreading: the encoded critic's register (so its simulation cost and noise");
    println!("exposure) is constant in the agent count; the naive layout pays exponential");
    println!("state size, slower gradients, and strictly lower purity at equal gate noise —");
    println!("beyond ~{MAX_NOISY_QUBITS} wires its noisy simulation is not even tractable here.");
}
