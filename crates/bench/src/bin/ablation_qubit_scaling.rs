//! Ablation A (the paper's motivation, Sec. I): naive CTDE vs state
//! encoding.
//!
//! A naive quantum centralized critic assigns **one qubit per state
//! feature**, so the register grows as `N · obs_dim` with the number of
//! agents; the paper's layered state encoding keeps it at 4 qubits. This
//! ablation quantifies the consequences the paper argues from:
//!
//! * simulation cost — statevector size and wall time per value+gradient,
//! * NISQ noise accumulation — purity loss under per-gate depolarizing
//!   noise (density-matrix simulation, which itself becomes intractable
//!   beyond ~10 wires: the blank cells are part of the result).
//!
//! Rows run through the harness task pool pinned to a single worker so
//! the µs microbenchmark columns never contend for cores.

use qmarl_bench::figures::{ablation_qubit_scaling, MAX_NOISY_QUBITS};
use qmarl_bench::{write_results, Args};

fn main() {
    let args = Args::from_env();
    let budget: usize = args.get("params", 50);
    let noise_p: f64 = args.get("noise", 0.01);
    let seed: u64 = args.get("seed", 7);

    println!("== Ablation A: qubit scaling — naive CTDE vs state encoding ==\n");
    let (rows, artifact) = ablation_qubit_scaling(budget, noise_p, seed).expect("ablation runs");

    println!(
        "{:<8} {:>10} {:>11} {:>13} {:>15} {:>16} {:>11} {:>13}",
        "agents",
        "state dim",
        "enc qubits",
        "naive qubits",
        "enc grad (µs)",
        "naive grad (µs)",
        "enc purity",
        "naive purity"
    );
    let show = |p: Option<f64>| match p {
        Some(v) => format!("{v:.4}"),
        None => "intractable".to_string(),
    };
    for r in &rows {
        println!(
            "{:<8} {:>10} {:>11} {:>13} {:>15.1} {:>16.1} {:>11} {:>13}",
            r.n_agents,
            r.state_dim,
            4,
            r.naive_qubits,
            r.encoded_grad_us,
            r.naive_grad_us,
            show(r.encoded_purity),
            show(r.naive_purity)
        );
    }

    let path = write_results(&artifact.name, &artifact.content);
    println!("\nwrote {}", path.display());
    println!("\nreading: the encoded critic's register (so its simulation cost and noise");
    println!("exposure) is constant in the agent count; the naive layout pays exponential");
    println!("state size, slower gradients, and strictly lower purity at equal gate noise —");
    println!("beyond ~{MAX_NOISY_QUBITS} wires its noisy simulation is not even tractable here.");
}
