//! Table I: the MDP of the single-hop offloading environment, printed
//! from the live types (so the table can never drift from the code).

use qmarl_core::prelude::ExperimentConfig;
use qmarl_env::prelude::*;

fn main() {
    let config = ExperimentConfig::paper_default();
    let env = SingleHopEnv::new(config.env.clone(), 0).expect("paper config valid");
    let space = env.action_space();

    println!("== Table I: the MDP of the single-hop offloading environment ==\n");
    println!(
        "Observation  o^n_t = {{q_e(t), q_e(t-1)}} ∪ {{q_c,k(t)}}_k          dim = {}",
        env.obs_dim()
    );
    println!(
        "Action       u^n_t ∈ A ≡ I × P                                |A| = {}",
        env.n_actions()
    );
    println!("  Destination space  I = {{1, …, {}}}", config.env.n_clouds);
    println!("  Packet amounts     P = {:?}", config.env.packet_amounts);
    println!(
        "State        s_t = ∪_n o^n_t                                  dim = {}",
        env.state_dim()
    );
    println!("Reward       r(s_t, u_t) per eq. (1): −Σ_k [1(empty)·q̃ + 1(full)·q̂·w_R]");
    println!("\nFlat action layout (index → destination, amount):");
    for (i, a) in space.iter().enumerate() {
        println!("  {i} → cloud {} , {:.1}", a.destination + 1, a.amount);
    }
}
