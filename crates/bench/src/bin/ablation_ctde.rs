//! Ablation E: CTDE vs independent learners.
//!
//! The paper adopts CTDE specifically to tame multi-agent
//! non-stationarity. This ablation trains the same quantum actors twice —
//! once with the paper's centralized quantum critic, once with per-agent
//! local critics that only see their own observation — and compares the
//! learning curves.
//!
//! ```text
//! cargo run --release -p qmarl-bench --bin ablation_ctde -- --epochs 400
//! ```

use qmarl_bench::plot::LinePlot;
use qmarl_bench::{moving_average, write_results, Args};
use qmarl_core::prelude::*;
use qmarl_env::prelude::SingleHopEnv;

fn mean_curves(curves: &[Vec<f64>]) -> Vec<f64> {
    let epochs = curves[0].len();
    (0..epochs)
        .map(|e| curves.iter().map(|c| c[e]).sum::<f64>() / curves.len() as f64)
        .collect()
}

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 400);
    let seeds: u64 = args.get("seeds", 3);
    let base_seed: u64 = args.get("seed", 7);

    println!("== Ablation E: CTDE vs independent learners ({epochs} epochs x {seeds} seeds) ==\n");

    let mut ctde_curves: Vec<Vec<f64>> = Vec::new();
    let mut indep_curves: Vec<Vec<f64>> = Vec::new();
    for s in 0..seeds {
        let mut config = ExperimentConfig::paper_default();
        config.train.epochs = epochs;
        config.train.seed = base_seed + s * 31;

        // CTDE: the paper's Proposed framework.
        let mut ctde = build_trainer(FrameworkKind::Proposed, &config).expect("paper config valid");
        ctde.train(epochs).expect("training runs");
        ctde_curves.push(
            ctde.history()
                .records()
                .iter()
                .map(|r| r.metrics.total_reward)
                .collect(),
        );

        // Independent: same actors, per-agent local critics.
        let env = SingleHopEnv::new(config.env.clone(), config.train.seed).expect("valid env");
        let (actors, critics) =
            build_independent_quantum(&config.env, &config.train).expect("paper config valid");
        let mut indep =
            IndependentTrainer::new(env, actors, critics, config.train.clone()).expect("builds");
        indep.train(epochs).expect("training runs");
        indep_curves.push(
            indep
                .history()
                .records()
                .iter()
                .map(|r| r.metrics.total_reward)
                .collect(),
        );
    }
    let ctde_curve = mean_curves(&ctde_curves);
    let indep_curve = mean_curves(&indep_curves);

    // CSV + terminal plot.
    let smooth = (epochs / 20).max(1);
    let ctde_ma = moving_average(&ctde_curve, smooth);
    let indep_ma = moving_average(&indep_curve, smooth);
    let mut csv = String::from("epoch,ctde,ctde_smooth,independent,independent_smooth\n");
    for e in 0..epochs {
        csv.push_str(&format!(
            "{e},{:.6},{:.6},{:.6},{:.6}\n",
            ctde_curve[e], ctde_ma[e], indep_curve[e], indep_ma[e]
        ));
    }
    let path = write_results("ablation_ctde.csv", &csv);

    let mut plot = LinePlot::new("total reward vs epoch (moving average)", 72, 18);
    plot.series("CTDE (Proposed)", &ctde_ma);
    plot.series("independent", &indep_ma);
    println!("{}", plot.render());

    let tail = (epochs / 10).max(1);
    let tail_mean = |c: &[f64]| c[c.len() - tail..].iter().sum::<f64>() / tail as f64;
    let ctde_final = tail_mean(&ctde_curve);
    let indep_final = tail_mean(&indep_curve);
    println!("final reward (last {tail} epochs, {seeds}-seed mean): CTDE {ctde_final:.1}  vs  independent {indep_final:.1}");
    println!("wrote {}", path.display());
    println!("\nreading: in this fully-cooperative scenario with a *shared* team reward,");
    println!("independent learners stay competitive with CTDE — notably, their local");
    println!("critics see only 4 features (1 encoder layer) versus the centralized");
    println!("critic\'s 16 (4 layers), so at an equal 50-parameter budget the local value");
    println!("functions are easier circuits to train. CTDE\'s advantage is robustness:");
    println!("its critic conditions on the true joint state, which matters as agent");
    println!("coupling grows (more agents, scarcer service, partial observability).");
}
