//! Ablation E: CTDE vs independent learners.
//!
//! The paper adopts CTDE specifically to tame multi-agent
//! non-stationarity. This ablation trains the same quantum actors twice —
//! once with the paper's centralized quantum critic (a harness grid, one
//! cell per seed), once with per-agent local critics that only see their
//! own observation (the harness task pool) — and compares the learning
//! curves.
//!
//! ```text
//! cargo run --release -p qmarl-bench --bin ablation_ctde -- --epochs 400
//! ```

use qmarl_bench::figures::ablation_ctde;
use qmarl_bench::plot::LinePlot;
use qmarl_bench::{write_results, Args};

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 400);
    let seeds: u64 = args.get("seeds", 3);
    let base_seed: u64 = args.get("seed", 7);

    println!("== Ablation E: CTDE vs independent learners ({epochs} epochs x {seeds} seeds) ==\n");
    let out = ablation_ctde(epochs, seeds, base_seed).expect("ablation runs");
    let path = write_results(&out.artifact.name, &out.artifact.content);

    let mut plot = LinePlot::new("total reward vs epoch (moving average)", 72, 18);
    plot.series("CTDE (Proposed)", &out.ctde_ma);
    plot.series("independent", &out.indep_ma);
    println!("{}", plot.render());

    let tail = out.tail;
    let tail_mean = |c: &[f64]| c[c.len() - tail..].iter().sum::<f64>() / tail as f64;
    let ctde_final = tail_mean(&out.ctde_curve);
    let indep_final = tail_mean(&out.indep_curve);
    println!("final reward (last {tail} epochs, {seeds}-seed mean): CTDE {ctde_final:.1}  vs  independent {indep_final:.1}");
    println!("wrote {}", path.display());
    println!("\nreading: in this fully-cooperative scenario with a *shared* team reward,");
    println!("independent learners stay competitive with CTDE — notably, their local");
    println!("critics see only 4 features (1 encoder layer) versus the centralized");
    println!("critic\'s 16 (4 layers), so at an equal 50-parameter budget the local value");
    println!("functions are easier circuits to train. CTDE\'s advantage is robustness:");
    println!("its critic conditions on the true joint state, which matters as agent");
    println!("coupling grows (more agents, scarcer service, partial observability).");
}
