//! Ablation B (the paper's future work, Sec. V): the impact of NISQ noise
//! on the trained QMARL policies.
//!
//! Trains `Proposed` briefly (one harness cell), then evaluates the
//! trained quantum actors under a sweep of per-gate depolarizing rates
//! fanned over the harness task pool: how far does the action
//! distribution drift (total-variation distance), and how much return is
//! lost when every policy is executed noisily?

use qmarl_bench::figures::ablation_noise;
use qmarl_bench::{write_results, Args};

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 200);
    let eval_episodes: usize = args.get("eval", 20);
    let seed: u64 = args.get("seed", 7);

    println!("== Ablation B: NISQ noise impact on QMARL (trained {epochs} epochs) ==\n");
    let (rows, artifact) = ablation_noise(epochs, eval_episodes, seed).expect("ablation runs");

    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "gate p", "policy TV dist", "reward", "±std"
    );
    for r in &rows {
        println!(
            "{:>10.0e} {:>14.4} {:>12.2} {:>12.2}",
            r.p, r.tv, r.reward_mean, r.reward_std
        );
    }

    let path = write_results(&artifact.name, &artifact.content);
    println!("\nwrote {}", path.display());
    println!("\nreading: gate noise first blurs the policy (TV distance grows with p),");
    println!("then collapses it toward uniform — the return degrades toward the");
    println!("random-walk level, which is why the paper controls gate counts under NISQ.");
}
