//! Ablation B (the paper's future work, Sec. V): the impact of NISQ noise
//! on the trained QMARL policies.
//!
//! Trains `Proposed` briefly, then evaluates the trained quantum actors
//! under a sweep of per-gate depolarizing rates: how far does the action
//! distribution drift (total-variation distance), and how much return is
//! lost when every policy is executed noisily?

use qmarl_bench::{mean_std, write_results, Args};
use qmarl_core::prelude::*;
use qmarl_env::prelude::*;
use qmarl_neural::prelude::softmax;
use qmarl_qsim::noise::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Total-variation distance between two distributions.
fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 200);
    let eval_episodes: usize = args.get("eval", 20);
    let seed: u64 = args.get("seed", 7);

    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = epochs;
    config.train.seed = seed;

    println!("== Ablation B: NISQ noise impact on QMARL (trained {epochs} epochs) ==\n");
    let mut trainer = build_trainer(FrameworkKind::Proposed, &config).expect("paper config valid");
    trainer.train(epochs).expect("training runs");

    // Materialise the trained quantum actors.
    let n_actions = config.env.n_clouds * config.env.packet_amounts.len();
    let mut actors: Vec<QuantumActor> = (0..config.env.n_edges)
        .map(|n| {
            QuantumActor::new(
                config.train.n_qubits,
                config.env.obs_dim(),
                n_actions,
                config.train.actor_params,
                config.train.seed.wrapping_add(1000 + n as u64),
            )
            .expect("paper config valid")
        })
        .collect();
    for (view, actor) in actors.iter_mut().zip(trainer.actors()) {
        view.set_params(&actor.params()).expect("same architecture");
    }

    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "gate p", "policy TV dist", "reward", "±std"
    );
    let mut csv = String::from("noise_p,policy_tv_distance,reward_mean,reward_std\n");

    for &p in &[0.0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1] {
        let noise = NoiseModel::depolarizing(p, 2.0 * p).expect("valid noise");

        // Policy drift on a fixed probe set of observations.
        let mut tv_sum = 0.0;
        let mut tv_n = 0usize;
        for probe in 0..16 {
            let obs: Vec<f64> = (0..config.env.obs_dim())
                .map(|i| ((probe * 4 + i * 7) % 11) as f64 / 10.0)
                .collect();
            let actor = &actors[probe % actors.len()];
            let clean = softmax(
                &actor
                    .model()
                    .forward(&obs, &actor.params())
                    .expect("forward"),
            );
            let noisy = softmax(
                &actor
                    .model()
                    .forward_noisy(&obs, &actor.params(), &noise)
                    .expect("noisy forward"),
            );
            tv_sum += tv_distance(&clean, &noisy);
            tv_n += 1;
        }
        let tv = tv_sum / tv_n as f64;

        // Return under noisy decentralized execution.
        let mut rewards = Vec::with_capacity(eval_episodes);
        let mut env = SingleHopEnv::new(config.env.clone(), seed + 11).expect("valid env");
        let mut rng = StdRng::seed_from_u64(seed + 101);
        for _ in 0..eval_episodes {
            let m = rollout_episode(&mut env, |obs| {
                obs.iter()
                    .enumerate()
                    .map(|(n, o)| {
                        let logits = actors[n]
                            .model()
                            .forward_noisy(o, &actors[n].params(), &noise)
                            .expect("noisy forward");
                        select_action(&softmax(&logits), false, &mut rng)
                    })
                    .collect()
            })
            .expect("rollout");
            rewards.push(m.total_reward);
        }
        let (mean, std) = mean_std(&rewards);
        println!("{p:>10.0e} {tv:>14.4} {mean:>12.2} {std:>12.2}");
        csv.push_str(&format!("{p},{tv:.6},{mean:.4},{std:.4}\n"));
    }

    let path = write_results("ablation_noise.csv", &csv);
    println!("\nwrote {}", path.display());
    println!("\nreading: gate noise first blurs the policy (TV distance grows with p),");
    println!("then collapses it toward uniform — the return degrades toward the");
    println!("random-walk level, which is why the paper controls gate counts under NISQ.");
}
