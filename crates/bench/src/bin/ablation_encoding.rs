//! Ablation F: encoder design — the paper's encode-once layered state
//! encoding vs data re-uploading.
//!
//! Both architectures compress 16 state features into 4 qubits with the
//! same trainable budget; re-uploading repeats the encoder between
//! trainable blocks, buying expressivity with extra (noise-exposed)
//! encoder gates. We compare them on a supervised **value-regression**
//! task: fit the discounted Monte-Carlo returns of a fixed random-policy
//! dataset from the offloading environment — the job the centralized
//! critic actually has — and report convergence, structure and NISQ
//! exposure.

use qmarl_bench::{write_results, Args};
use qmarl_env::prelude::*;
use qmarl_neural::prelude::Adam;
use qmarl_vqc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Collects (state, discounted-return) pairs from random-policy episodes.
fn collect_dataset(seed: u64, episodes: usize, gamma: f64) -> Vec<(Vec<f64>, f64)> {
    let mut cfg = EnvConfig::paper_default();
    cfg.episode_limit = 60;
    let mut env = SingleHopEnv::new(cfg, seed).expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let mut data = Vec::new();
    for _ in 0..episodes {
        let (_, mut state) = env.reset();
        let mut states = vec![state.clone()];
        let mut rewards = Vec::new();
        loop {
            let actions: Vec<usize> = (0..4).map(|_| rng.gen_range(0..4)).collect();
            let out = env.step(&actions).expect("step");
            rewards.push(out.reward);
            state = out.state;
            if out.done {
                break;
            }
            states.push(state.clone());
        }
        // Backward pass for discounted returns G_t.
        let mut g = 0.0;
        let mut returns = vec![0.0; rewards.len()];
        for t in (0..rewards.len()).rev() {
            g = rewards[t] + gamma * g;
            returns[t] = g;
        }
        for (s, r) in states.into_iter().zip(returns) {
            data.push((s, r));
        }
    }
    data
}

/// Trains a critic model by Adam on MSE over the dataset; returns the
/// final epoch's MSE.
fn regress(model: &Vqc, data: &[(Vec<f64>, f64)], epochs: usize, seed: u64) -> f64 {
    let mut params = model.init_params(seed);
    let mut opt = Adam::new(5e-3, params.len());
    let mut last_mse = f64::INFINITY;
    for _ in 0..epochs {
        let mut mse = 0.0;
        for (x, y) in data {
            let (out, jac) = model
                .forward_with_jacobian(x, &params, GradMethod::Adjoint)
                .expect("jacobian");
            let err = out[0] - y;
            mse += err * err;
            let grad = jac.vjp(&[2.0 * err / data.len() as f64]);
            opt.step(&mut params, &grad);
        }
        last_mse = mse / data.len() as f64;
    }
    last_mse
}

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 30);
    let episodes: usize = args.get("episodes", 6);
    let seed: u64 = args.get("seed", 7);
    let budget: usize = args.get("params", 48);

    println!("== Ablation F: encode-once (paper) vs data re-uploading ==\n");
    let data = collect_dataset(seed, episodes, 0.95);
    println!(
        "value-regression dataset: {} states from random-policy episodes\n",
        data.len()
    );

    let architectures: Vec<(String, Circuit)> = vec![
        ("encode-once (paper)".into(), {
            let mut c = layered_angle_encoder(4, 16).expect("valid");
            c.append_shifted(&layered_ansatz(4, budget).expect("valid"))
                .expect("same width");
            c
        }),
        (
            "re-upload x2".into(),
            reuploading_circuit(4, 16, 2, budget).expect("valid"),
        ),
        (
            "re-upload x3".into(),
            reuploading_circuit(4, 16, 3, budget).expect("valid"),
        ),
    ];

    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>11} {:>12} {:>12}",
        "architecture", "gates", "depth", "params", "final MSE", "fid p=1e-3", "fid p=1e-2"
    );
    let mut csv =
        String::from("architecture,gates,depth,params,final_mse,fidelity_1e3,fidelity_1e2\n");
    for (name, circuit) in architectures {
        let stats = CircuitStats::of(&circuit);
        let model = VqcBuilder::new(4)
            .full_circuit(circuit)
            .readout(Readout::mean_z(4))
            .output_head(OutputHead::Affine)
            .build()
            .expect("valid model");
        let mse = regress(&model, &data, epochs, seed);
        let f3 = stats.fidelity_proxy(1e-3, 2e-3);
        let f2 = stats.fidelity_proxy(1e-2, 2e-2);
        println!(
            "{name:<22} {:>7} {:>7} {:>7} {:>11.4} {:>12.3} {:>12.3}",
            stats.gates,
            stats.depth,
            model.param_count(),
            mse,
            f3,
            f2
        );
        csv.push_str(&format!(
            "{name},{},{},{},{mse:.6},{f3:.6},{f2:.6}\n",
            stats.gates,
            stats.depth,
            model.param_count()
        ));
    }

    let path = write_results("ablation_encoding.csv", &csv);
    println!("\nwrote {}", path.display());
    println!("\nreading: re-uploading can fit the value surface at least as well, but");
    println!("every extra upload adds 16 encoder gates of depth and noise exposure —");
    println!("under NISQ error rates its error-free execution probability drops first,");
    println!("which is the trade-off behind the paper's encode-once choice.");
}
