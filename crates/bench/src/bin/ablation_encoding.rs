//! Ablation F: encoder design — the paper's encode-once layered state
//! encoding vs data re-uploading.
//!
//! Both architectures compress 16 state features into 4 qubits with the
//! same trainable budget; re-uploading repeats the encoder between
//! trainable blocks, buying expressivity with extra (noise-exposed)
//! encoder gates. We compare them on a supervised **value-regression**
//! task — fit the discounted Monte-Carlo returns of a fixed random-policy
//! dataset from the offloading environment, the job the centralized
//! critic actually has — with the architecture arms fanned over the
//! harness task pool, and report convergence, structure and NISQ
//! exposure.

use qmarl_bench::figures::ablation_encoding;
use qmarl_bench::{write_results, Args};

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 30);
    let episodes: usize = args.get("episodes", 6);
    let seed: u64 = args.get("seed", 7);
    let budget: usize = args.get("params", 48);

    println!("== Ablation F: encode-once (paper) vs data re-uploading ==\n");
    let (rows, artifact, dataset_len) =
        ablation_encoding(epochs, episodes, seed, budget).expect("ablation runs");
    println!("value-regression dataset: {dataset_len} states from random-policy episodes\n");

    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>11} {:>12} {:>12}",
        "architecture", "gates", "depth", "params", "final MSE", "fid p=1e-3", "fid p=1e-2"
    );
    for r in &rows {
        println!(
            "{:<22} {:>7} {:>7} {:>7} {:>11.4} {:>12.3} {:>12.3}",
            r.name, r.gates, r.depth, r.params, r.mse, r.fidelity_1e3, r.fidelity_1e2
        );
    }

    let path = write_results(&artifact.name, &artifact.content);
    println!("\nwrote {}", path.display());
    println!("\nreading: re-uploading can fit the value surface at least as well, but");
    println!("every extra upload adds 16 encoder gates of depth and noise exposure —");
    println!("under NISQ error rates its error-free execution probability drops first,");
    println!("which is the trade-off behind the paper's encode-once choice.");
}
