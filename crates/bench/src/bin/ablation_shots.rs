//! Ablation D: finite measurement shots.
//!
//! The paper's simulator (like ours, by default) returns exact expectation
//! values; hardware returns `n_shots` samples. This ablation trains
//! `Proposed` briefly (one harness cell), then executes the trained
//! policies with a finite shot budget per decision — fanned over the
//! harness task pool — and measures how much policy quality survives
//! — the practical cost axis for the paper's "deploy on quantum clouds"
//! future work.

use qmarl_bench::figures::ablation_shots;
use qmarl_bench::{write_results, Args};

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 200);
    let eval_episodes: usize = args.get("eval", 20);
    let seed: u64 = args.get("seed", 7);

    println!("== Ablation D: finite-shot execution of trained QMARL ({epochs} epochs) ==\n");
    let (rows, artifact) = ablation_shots(epochs, eval_episodes, seed).expect("ablation runs");

    println!(
        "{:>8} {:>14} {:>12} {:>10}",
        "shots", "z std error", "reward", "±std"
    );
    for r in &rows {
        match r.shots {
            Some(s) => println!(
                "{s:>8} {:>14.4} {:>12.2} {:>10.2}",
                r.std_error, r.reward_mean, r.reward_std
            ),
            None => println!(
                "{:>8} {:>14} {:>12.2} {:>10.2}",
                "exact", 0.0, r.reward_mean, r.reward_std
            ),
        }
    }

    let path = write_results(&artifact.name, &artifact.content);
    println!("\nwrote {}", path.display());
    println!("\nreading: with the same stochastic policy everywhere, a few hundred shots");
    println!("per decision already match the exact-expectation return — the shot budget");
    println!("is the cost knob a quantum-cloud deployment of this system actually pays.");
}
