//! Ablation D: finite measurement shots.
//!
//! The paper's simulator (like ours, by default) returns exact expectation
//! values; hardware returns `n_shots` samples. This ablation trains
//! `Proposed` briefly, then executes the trained policies with a finite
//! shot budget per decision and measures how much policy quality survives
//! — the practical cost axis for the paper's "deploy on quantum clouds"
//! future work.

use qmarl_bench::{mean_std, write_results, Args};
use qmarl_core::prelude::*;
use qmarl_env::prelude::*;
use qmarl_neural::prelude::softmax;
use qmarl_qsim::shots::z_standard_error;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 200);
    let eval_episodes: usize = args.get("eval", 20);
    let seed: u64 = args.get("seed", 7);

    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = epochs;
    config.train.seed = seed;

    println!("== Ablation D: finite-shot execution of trained QMARL ({epochs} epochs) ==\n");
    let mut trainer = build_trainer(FrameworkKind::Proposed, &config).expect("paper config valid");
    trainer.train(epochs).expect("training runs");

    // Materialise the trained quantum actors.
    let n_actions = config.env.n_clouds * config.env.packet_amounts.len();
    let mut actors: Vec<QuantumActor> = (0..config.env.n_edges)
        .map(|n| {
            QuantumActor::new(
                config.train.n_qubits,
                config.env.obs_dim(),
                n_actions,
                config.train.actor_params,
                config.train.seed.wrapping_add(1000 + n as u64),
            )
            .expect("paper config valid")
        })
        .collect();
    for (view, actor) in actors.iter_mut().zip(trainer.actors()) {
        view.set_params(&actor.params()).expect("same architecture");
    }

    println!(
        "{:>8} {:>14} {:>12} {:>10}",
        "shots", "z std error", "reward", "±std"
    );
    let mut csv = String::from("shots,z_standard_error,reward_mean,reward_std\n");
    // `shots = None` is the exact-expectation limit; every row uses the
    // same stochastic (sampled) policy so only the readout noise varies.
    let budgets: [Option<usize>; 7] = [
        Some(8),
        Some(32),
        Some(128),
        Some(512),
        Some(2048),
        Some(8192),
        None,
    ];
    for shots in budgets {
        let mut rewards = Vec::with_capacity(eval_episodes);
        let mut env = SingleHopEnv::new(config.env.clone(), seed + 21).expect("valid env");
        let mut rng = StdRng::seed_from_u64(seed + 77);
        for _ in 0..eval_episodes {
            let m = rollout_episode(&mut env, |obs| {
                obs.iter()
                    .enumerate()
                    .map(|(n, o)| {
                        let logits = match shots {
                            Some(s) => actors[n]
                                .model()
                                .forward_shots(o, &actors[n].params(), s, &mut rng)
                                .expect("shot forward"),
                            None => actors[n]
                                .model()
                                .forward(o, &actors[n].params())
                                .expect("forward"),
                        };
                        select_action(&softmax(&logits), false, &mut rng)
                    })
                    .collect()
            })
            .expect("rollout");
            rewards.push(m.total_reward);
        }
        let (mean, std) = mean_std(&rewards);
        match shots {
            Some(s) => {
                let se = z_standard_error(0.0, s); // worst-case per-readout error
                println!("{s:>8} {se:>14.4} {mean:>12.2} {std:>10.2}");
                csv.push_str(&format!("{s},{se:.6},{mean:.4},{std:.4}\n"));
            }
            None => {
                println!("{:>8} {:>14} {mean:>12.2} {std:>10.2}", "exact", 0.0);
                csv.push_str(&format!("exact,0,{mean:.4},{std:.4}\n"));
            }
        }
    }

    let path = write_results("ablation_shots.csv", &csv);
    println!("\nwrote {}", path.display());
    println!("\nreading: with the same stochastic policy everywhere, a few hundred shots");
    println!("per decision already match the exact-expectation return — the shot budget");
    println!("is the cost knob a quantum-cloud deployment of this system actually pays.");
}
