//! Terminal line charts for training curves.
//!
//! The experiment binaries write CSVs for external plotting, but a
//! terminal-first repo should also *show* Fig. 3. [`LinePlot`] renders
//! multiple labelled series into a fixed character grid with axis ticks
//! and a legend, Braille-free for maximum terminal compatibility.

/// A multi-series ASCII line chart.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    width: usize,
    height: usize,
    series: Vec<(String, Vec<f64>)>,
}

/// Marker glyphs assigned to series in order.
const MARKS: [char; 6] = ['o', '+', 'x', '*', '#', '@'];

impl LinePlot {
    /// A chart with the given title and drawing-area size in characters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 8 (unreadably small).
    pub fn new(title: &str, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "plot area too small");
        LinePlot {
            title: title.to_string(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a labelled series. Series are drawn in insertion order; later
    /// series overdraw earlier ones where they collide.
    pub fn series(&mut self, label: &str, values: &[f64]) -> &mut Self {
        self.series.push((label.to_string(), values.to_vec()));
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        if self.series.is_empty() || self.series.iter().all(|(_, v)| v.is_empty()) {
            out.push_str("(no data)\n");
            return out;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut max_len = 0usize;
        for (_, v) in &self.series {
            for &y in v {
                if y.is_finite() {
                    lo = lo.min(y);
                    hi = hi.max(y);
                }
            }
            max_len = max_len.max(v.len());
        }
        if !lo.is_finite() || !hi.is_finite() {
            out.push_str("(no finite data)\n");
            return out;
        }
        if (hi - lo).abs() < 1e-12 {
            hi = lo + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, values)) in self.series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for (i, &y) in values.iter().enumerate() {
                if !y.is_finite() {
                    continue;
                }
                let x = if max_len <= 1 {
                    0
                } else {
                    i * (self.width - 1) / (max_len - 1)
                };
                let fy = (y - lo) / (hi - lo);
                let row = self.height - 1 - ((fy * (self.height - 1) as f64).round() as usize);
                grid[row][x] = mark;
            }
        }

        let label_w = 11;
        for (r, row) in grid.iter().enumerate() {
            let y_here = hi - (hi - lo) * r as f64 / (self.height - 1) as f64;
            if r % 3 == 0 || r == self.height - 1 {
                out.push_str(&format!("{y_here:>10.2} |"));
            } else {
                out.push_str(&format!("{:>10} |", ""));
            }
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>w$}+{}\n",
            "",
            "-".repeat(self.width),
            w = label_w - 1
        ));
        out.push_str(&format!(
            "{:>w$}0{:>x$}\n",
            "",
            max_len.saturating_sub(1),
            w = label_w,
            x = self.width - 1
        ));
        out.push_str(&format!("{:>w$}", "", w = label_w));
        for (si, (label, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("{} {}   ", MARKS[si % MARKS.len()], label));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axes_and_legend() {
        let mut p = LinePlot::new("reward vs epoch", 40, 10);
        p.series("Proposed", &[-40.0, -30.0, -20.0, -10.0, -5.0]);
        p.series("Comp2", &[-40.0, -38.0, -35.0, -33.0, -30.0]);
        let txt = p.render();
        assert!(txt.contains("reward vs epoch"));
        assert!(txt.contains("o Proposed"));
        assert!(txt.contains("+ Comp2"));
        assert!(txt.contains('|'));
        assert!(txt.contains('o'));
        assert!(txt.contains('+'));
    }

    #[test]
    fn empty_plot_degrades_gracefully() {
        let p = LinePlot::new("empty", 20, 8);
        assert!(p.render().contains("(no data)"));
        let mut p = LinePlot::new("empty series", 20, 8);
        p.series("a", &[]);
        assert!(p.render().contains("(no data)"));
    }

    #[test]
    fn constant_series_renders() {
        let mut p = LinePlot::new("flat", 20, 8);
        p.series("c", &[1.0; 10]);
        let txt = p.render();
        assert!(txt.contains('o'));
    }

    #[test]
    fn extremes_land_on_top_and_bottom_rows() {
        let mut p = LinePlot::new("range", 20, 9);
        p.series("s", &[0.0, 10.0]);
        let txt = p.render();
        let lines: Vec<&str> = txt.lines().collect();
        // Row 1 (first grid row, after the title) holds the max.
        assert!(lines[1].contains('o'), "max on top row: {txt}");
        // The last grid row (height-th line) holds the min.
        assert!(lines[9].contains('o'), "min on bottom row: {txt}");
    }

    #[test]
    fn nan_values_are_skipped() {
        let mut p = LinePlot::new("nan", 20, 8);
        p.series("s", &[1.0, f64::NAN, 3.0]);
        let txt = p.render();
        assert!(txt.contains('o'));
        let mut p = LinePlot::new("all nan", 20, 8);
        p.series("s", &[f64::NAN, f64::NAN]);
        assert!(p.render().contains("(no finite data)"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_rejected() {
        let _ = LinePlot::new("x", 2, 2);
    }
}
