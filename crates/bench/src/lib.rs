//! # qmarl-bench — experiment harness utilities
//!
//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper (see `DESIGN.md` §3 for the index): CLI flag
//! parsing, CSV output into `results/`, and multi-seed aggregation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod plot;

use std::fs;
use std::path::{Path, PathBuf};

/// Minimal `--flag value` CLI parser shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// The value following `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message when the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        let flag = format!("--{name}");
        let mut it = self.raw.iter();
        while let Some(a) = it.next() {
            if *a == flag {
                let v = it
                    .next()
                    .unwrap_or_else(|| panic!("flag {flag} expects a value"));
                return v
                    .parse()
                    .unwrap_or_else(|e| panic!("invalid value for {flag}: {e}"));
            }
        }
        default
    }

    /// `true` when `--name` appears (no value).
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.contains(&flag)
    }
}

/// The output directory for experiment CSVs (`results/` at the workspace
/// root, created on demand).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes CSV content to `results/<name>` and returns the full path.
pub fn write_results(name: &str, content: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Smooths a series with a trailing moving average of width `w` (how the
/// paper's training curves are typically rendered).
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        sum += x;
        if i >= w {
            sum -= xs[i - w];
        }
        let denom = (i + 1).min(w) as f64;
        out.push(sum / denom);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let a = Args::from_vec(vec![
            "--epochs".into(),
            "250".into(),
            "--quick".into(),
            "--seed".into(),
            "9".into(),
        ]);
        assert_eq!(a.get("epochs", 1000usize), 250);
        assert_eq!(a.get("seed", 0u64), 9);
        assert_eq!(a.get("missing", 3.5f64), 3.5);
        assert!(a.has("quick"));
        assert!(!a.has("verbose"));
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 2.0, 4.0, 6.0];
        let ma = moving_average(&xs, 2);
        assert_eq!(ma, vec![0.0, 1.0, 3.0, 5.0]);
        let ma1 = moving_average(&xs, 1);
        assert_eq!(ma1, xs.to_vec());
    }

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.exists());
    }
}
