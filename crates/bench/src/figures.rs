//! The compute cores of the figure/table/ablation binaries, as library
//! functions over the experiment harness.
//!
//! Every training run in this module goes through
//! `qmarl_harness` — single cells ([`qmarl_harness::cell::run_cell`]),
//! multi-seed grids ([`qmarl_harness::sweep::run_sweep`]) or generic
//! fan-out ([`qmarl_harness::pool::run_tasks`]) — so the binaries carry
//! no hand-rolled training loops. Each function returns the exact
//! artifact bytes its binary historically wrote (regression-pinned by
//! `tests/figure_outputs.rs`) plus the numbers the binary prints; the
//! binaries themselves are thin presentation shells.
//!
//! The figure binaries keep the paper's **serial** collection semantics
//! ([`RolloutMode::Serial`]): one episode per epoch from the trainer's
//! own RNG stream, exactly what `CtdeTrainer::train` did when each
//! binary owned its loop — so their artifacts are reproducible against
//! the history of the repository. Sweep-scale work wanting
//! checkpoint-resume uses the default vectorized mode instead.

use qmarl_core::prelude::*;
use qmarl_env::prelude::*;
use qmarl_harness::prelude::*;
use qmarl_neural::prelude::{softmax, Adam};
use qmarl_qsim::noise::NoiseModel;
use qmarl_qsim::shots::z_standard_error;
use qmarl_vqc::prelude::{
    layered_angle_encoder, layered_ansatz, reuploading_circuit, run_noisy, Circuit, CircuitStats,
    GradMethod, OutputHead, Readout, Vqc, VqcBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{mean_std, moving_average};

/// One named artifact (a `results/` file's name and exact content).
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// File name under `results/`.
    pub name: String,
    /// Exact file content.
    pub content: String,
}

impl Artifact {
    fn new(name: impl Into<String>, content: impl Into<String>) -> Self {
        Artifact {
            name: name.into(),
            content: content.into(),
        }
    }
}

/// A serial-mode spec for the paper scenario — the shared shape of every
/// figure binary's training runs.
fn paper_serial_spec(
    name: &str,
    kind: FrameworkKind,
    epochs: usize,
    seeds: Vec<u64>,
) -> ExperimentSpec {
    let mut spec = ExperimentSpec::named(name);
    spec.scenarios = vec!["single-hop".into()];
    spec.frameworks = vec![kind];
    spec.seeds = seeds;
    spec.epochs = epochs;
    spec.mode = RolloutMode::Serial;
    spec
}

/// Trains one framework on the paper scenario for `epochs` under `seed`
/// (serial collection), through the harness cell runner.
fn train_paper_cell(
    kind: FrameworkKind,
    epochs: usize,
    seed: u64,
) -> Result<CellResult, HarnessError> {
    let spec = paper_serial_spec("bin-cell", kind, epochs, vec![seed]);
    spec.validate()?;
    let cell = spec.expand().remove(0);
    run_cell(&spec, &cell, &CellOptions::default())
}

/// Rebuilds the trained quantum actors of a `Proposed`/`Comp1` cell from
/// its snapshot (the architecture the paper scenario implies).
fn materialize_quantum_actors(
    snapshot: &FrameworkSnapshot,
    config: &ExperimentConfig,
) -> Result<Vec<QuantumActor>, CoreError> {
    let n_actions = config.env.n_clouds * config.env.packet_amounts.len();
    let mut actors: Vec<QuantumActor> = (0..config.env.n_edges)
        .map(|n| {
            QuantumActor::new(
                config.train.n_qubits,
                config.env.obs_dim(),
                n_actions,
                config.train.actor_params,
                config.train.seed.wrapping_add(1000 + n as u64),
            )
        })
        .collect::<Result<_, _>>()?;
    for (view, params) in actors.iter_mut().zip(&snapshot.actor_params) {
        view.set_params(params)?;
    }
    Ok(actors)
}

// ---------------------------------------------------------------------
// Fig. 3: training curves of all four frameworks + random walk.
// ---------------------------------------------------------------------

/// One framework's summary row of the Fig. 3 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// Framework.
    pub kind: FrameworkKind,
    /// Converged reward (tail mean over seeds) and its std.
    pub reward: f64,
    /// Across-seed standard deviation of the converged reward.
    pub std: f64,
    /// Achievability vs the random walk.
    pub achievability: f64,
    /// Tail-mean average queue.
    pub avg_queue: f64,
    /// Tail-mean empty ratio.
    pub empty_ratio: f64,
    /// Tail-mean overflow ratio.
    pub overflow_ratio: f64,
}

/// Everything the `fig3_training_curves` binary computes.
#[derive(Debug, Clone)]
pub struct Fig3Output {
    /// Random-walk baseline metrics.
    pub random_walk: EpisodeMetrics,
    /// The four panel CSVs, the summary CSV, and per-seed history CSVs.
    pub artifacts: Vec<Artifact>,
    /// Summary rows in framework order.
    pub rows: Vec<Fig3Row>,
    /// Tail length used for converged means.
    pub tail: usize,
}

/// Reproduces Fig. 3: trains every framework × seed as one harness grid
/// over the worker pool, then assembles the panel/summary artifacts.
///
/// # Errors
///
/// Propagates environment construction and training errors.
pub fn fig3_training_curves(
    epochs: usize,
    seeds: u64,
    base_seed: u64,
    smooth: usize,
) -> Result<Fig3Output, HarnessError> {
    // Random-walk normalisation baseline (Sec. IV-D1).
    let config = {
        let mut c = ExperimentConfig::paper_default();
        c.train.epochs = epochs;
        c.train.seed = base_seed;
        c
    };
    let mut rw_env = SingleHopEnv::new(config.env.clone(), base_seed).map_err(CoreError::from)?;
    let rw = random_walk_baseline(&mut rw_env, 200, base_seed).map_err(CoreError::from)?;

    // The full framework × seed grid as one sweep (seed list preserves
    // the binaries' historical `base + s * 101` spacing).
    let mut spec = paper_serial_spec(
        "fig3",
        FrameworkKind::Proposed,
        epochs,
        (0..seeds).map(|s| base_seed + s * 101).collect(),
    );
    spec.frameworks = FrameworkKind::TRAINABLE.to_vec();
    let sweep = run_sweep(&spec, &SweepOptions::default())?;

    // Per-framework histories in seed order.
    let histories_of = |kind: FrameworkKind| -> Vec<&TrainingHistory> {
        sweep
            .cells
            .iter()
            .filter(|c| c.id.framework == kind)
            .map(|c| &c.history)
            .collect()
    };
    let mean_series = |histories: &[&TrainingHistory], f: &dyn Fn(&EpochRecord) -> f64| {
        (0..epochs)
            .map(|e| {
                histories.iter().map(|h| f(&h.records()[e])).sum::<f64>() / histories.len() as f64
            })
            .collect::<Vec<f64>>()
    };

    let mut artifacts = Vec::new();
    type Panel = (&'static str, fn(&EpochRecord) -> f64);
    let panels: [Panel; 4] = [
        ("fig3a_reward.csv", |r| r.metrics.total_reward),
        ("fig3b_avg_queue.csv", |r| r.metrics.avg_queue),
        ("fig3c_empty_ratio.csv", |r| r.metrics.empty_ratio),
        ("fig3d_overflow_ratio.csv", |r| r.metrics.overflow_ratio),
    ];
    for (name, metric) in panels {
        let mut csv = String::from("epoch");
        for &kind in &FrameworkKind::TRAINABLE {
            csv.push_str(&format!(",{kind},{kind}_smooth"));
        }
        csv.push('\n');
        let series: Vec<(Vec<f64>, Vec<f64>)> = FrameworkKind::TRAINABLE
            .iter()
            .map(|&kind| {
                let raw = mean_series(&histories_of(kind), &metric);
                let ma = moving_average(&raw, smooth);
                (raw, ma)
            })
            .collect();
        for e in 0..epochs {
            csv.push_str(&format!("{e}"));
            for (raw, ma) in &series {
                csv.push_str(&format!(",{:.6},{:.6}", raw[e], ma[e]));
            }
            csv.push('\n');
        }
        artifacts.push(Artifact::new(name, csv));
    }

    // Summary table (the numbers quoted in Sec. IV-D).
    let tail = tail_epochs(epochs);
    let mut rows = Vec::new();
    let mut summary = String::from(
        "framework,reward,reward_std,achievability,avg_queue,empty_ratio,overflow_ratio\n",
    );
    for &kind in &FrameworkKind::TRAINABLE {
        let histories = histories_of(kind);
        let finals: Vec<f64> = histories
            .iter()
            .map(|h| h.final_reward(tail).expect("history nonempty"))
            .collect();
        let (reward, std) = mean_std(&finals);
        let ach = achievability(reward, rw.total_reward);
        let stat = |f: &dyn Fn(&EpochRecord) -> f64| {
            let xs: Vec<f64> = histories
                .iter()
                .map(|h| h.final_metric(tail, f).unwrap())
                .collect();
            mean_std(&xs).0
        };
        let row = Fig3Row {
            kind,
            reward,
            std,
            achievability: ach,
            avg_queue: stat(&|r| r.metrics.avg_queue),
            empty_ratio: stat(&|r| r.metrics.empty_ratio),
            overflow_ratio: stat(&|r| r.metrics.overflow_ratio),
        };
        summary.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            kind.name(),
            row.reward,
            row.std,
            row.achievability,
            row.avg_queue,
            row.empty_ratio,
            row.overflow_ratio
        ));
        rows.push(row);
    }
    summary.push_str(&format!(
        "RandomWalk,{:.4},0,0,{:.4},{:.4},{:.4}\n",
        rw.total_reward, rw.avg_queue, rw.empty_ratio, rw.overflow_ratio
    ));
    artifacts.push(Artifact::new("fig3_summary.csv", summary));

    // Per-seed full histories for reproducibility audits.
    for &kind in &FrameworkKind::TRAINABLE {
        for (s, h) in histories_of(kind).iter().enumerate() {
            artifacts.push(Artifact::new(
                format!("fig3_{}_seed{}.csv", kind.name().to_lowercase(), s),
                h.to_csv(),
            ));
        }
    }
    Ok(Fig3Output {
        random_walk: rw,
        artifacts,
        rows,
        tail,
    })
}

// ---------------------------------------------------------------------
// Fig. 4: the trained-team demonstration.
// ---------------------------------------------------------------------

/// Everything the `fig4_demonstration` binary computes.
#[derive(Debug, Clone)]
pub struct Fig4Output {
    /// Converged reward of the trained team.
    pub final_reward: f64,
    /// The demonstration frames.
    pub frames: Vec<DemoFrame>,
    /// `fig4_demonstration.csv`.
    pub artifact: Artifact,
}

/// Trains `Proposed` (one harness cell), then rolls the demonstration.
///
/// # Errors
///
/// Propagates training and demonstration errors.
pub fn fig4_demonstration(
    epochs: usize,
    steps: usize,
    seed: u64,
    agent: usize,
    deterministic: bool,
) -> Result<Fig4Output, HarnessError> {
    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = epochs;
    config.train.seed = seed;
    let cell = train_paper_cell(FrameworkKind::Proposed, epochs, seed)?;
    let final_reward = cell
        .history
        .final_reward(tail_epochs(epochs))
        .expect("history nonempty");

    let quantum_views = materialize_quantum_actors(&cell.snapshot, &config)?;
    let actors: Vec<Box<dyn Actor>> = quantum_views
        .iter()
        .map(|q| Box::new(q.clone()) as Box<dyn Actor>)
        .collect();
    let mut env = SingleHopEnv::new(config.env.clone(), seed + 1).map_err(CoreError::from)?;
    let frames = run_demonstration(
        &mut env,
        &actors,
        &quantum_views,
        agent,
        steps,
        seed,
        deterministic,
    )?;
    let artifact = Artifact::new("fig4_demonstration.csv", frames_to_csv(&frames));
    Ok(Fig4Output {
        final_reward,
        frames,
        artifact,
    })
}

// ---------------------------------------------------------------------
// Ablation E: CTDE vs independent learners.
// ---------------------------------------------------------------------

/// Everything the `ablation_ctde` binary computes.
#[derive(Debug, Clone)]
pub struct CtdeAblationOutput {
    /// Across-seed mean reward curves.
    pub ctde_curve: Vec<f64>,
    /// Independent-learner mean curve.
    pub indep_curve: Vec<f64>,
    /// Smoothed curves (for the terminal plot).
    pub ctde_ma: Vec<f64>,
    /// Smoothed independent curve.
    pub indep_ma: Vec<f64>,
    /// `ablation_ctde.csv`.
    pub artifact: Artifact,
    /// Tail length of the final means.
    pub tail: usize,
}

fn mean_curves(curves: &[Vec<f64>]) -> Vec<f64> {
    let epochs = curves[0].len();
    (0..epochs)
        .map(|e| curves.iter().map(|c| c[e]).sum::<f64>() / curves.len() as f64)
        .collect()
}

/// Trains the CTDE arm as a harness grid and the independent arm over
/// the harness task pool, seed for seed.
///
/// # Errors
///
/// Propagates construction and training errors.
pub fn ablation_ctde(
    epochs: usize,
    seeds: u64,
    base_seed: u64,
) -> Result<CtdeAblationOutput, HarnessError> {
    let seed_list: Vec<u64> = (0..seeds).map(|s| base_seed + s * 31).collect();

    // CTDE arm: the paper's Proposed framework, one cell per seed.
    let spec = paper_serial_spec(
        "ablation-ctde",
        FrameworkKind::Proposed,
        epochs,
        seed_list.clone(),
    );
    let sweep = run_sweep(&spec, &SweepOptions::default())?;
    let ctde_curves: Vec<Vec<f64>> = sweep
        .cells
        .iter()
        .map(|c| {
            c.history
                .records()
                .iter()
                .map(|r| r.metrics.total_reward)
                .collect()
        })
        .collect();

    // Independent arm: same actors, per-agent local critics — a
    // different trainer type, fanned over the same worker pool.
    let indep_curves: Vec<Vec<f64>> = try_run_tasks(&seed_list, 0, |_, &seed| {
        let mut config = ExperimentConfig::paper_default();
        config.train.epochs = epochs;
        config.train.seed = seed;
        let env = SingleHopEnv::new(config.env.clone(), seed).map_err(CoreError::from)?;
        let (actors, critics) = build_independent_quantum(&config.env, &config.train)?;
        let mut indep = IndependentTrainer::new(env, actors, critics, config.train.clone())?;
        indep.train(epochs)?;
        Ok::<Vec<f64>, HarnessError>(
            indep
                .history()
                .records()
                .iter()
                .map(|r| r.metrics.total_reward)
                .collect(),
        )
    })?
    .into_iter()
    .map(|t| t.value)
    .collect();

    let ctde_curve = mean_curves(&ctde_curves);
    let indep_curve = mean_curves(&indep_curves);
    let smooth = (epochs / 20).max(1);
    let ctde_ma = moving_average(&ctde_curve, smooth);
    let indep_ma = moving_average(&indep_curve, smooth);
    let mut csv = String::from("epoch,ctde,ctde_smooth,independent,independent_smooth\n");
    for e in 0..epochs {
        csv.push_str(&format!(
            "{e},{:.6},{:.6},{:.6},{:.6}\n",
            ctde_curve[e], ctde_ma[e], indep_curve[e], indep_ma[e]
        ));
    }
    Ok(CtdeAblationOutput {
        ctde_curve,
        indep_curve,
        ctde_ma,
        indep_ma,
        artifact: Artifact::new("ablation_ctde.csv", csv),
        tail: tail_epochs(epochs),
    })
}

// ---------------------------------------------------------------------
// Ablation B: NISQ noise impact on the trained policies.
// ---------------------------------------------------------------------

/// One noise level's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseRow {
    /// Per-gate depolarizing rate.
    pub p: f64,
    /// Mean total-variation policy drift on the probe set.
    pub tv: f64,
    /// Mean return under noisy execution.
    pub reward_mean: f64,
    /// Across-episode std.
    pub reward_std: f64,
}

/// Total-variation distance between two distributions.
fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// The paper-motivated noise ladder.
pub const NOISE_LEVELS: [f64; 8] = [0.0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1];

/// Trains `Proposed` (one harness cell), then evaluates the trained
/// policies at every noise level across the harness task pool.
///
/// # Errors
///
/// Propagates training and simulation errors.
pub fn ablation_noise(
    epochs: usize,
    eval_episodes: usize,
    seed: u64,
) -> Result<(Vec<NoiseRow>, Artifact), HarnessError> {
    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = epochs;
    config.train.seed = seed;
    let cell = train_paper_cell(FrameworkKind::Proposed, epochs, seed)?;
    let actors = materialize_quantum_actors(&cell.snapshot, &config)?;

    let rows: Vec<NoiseRow> = try_run_tasks(&NOISE_LEVELS, 0, |_, &p| {
        let noise = NoiseModel::depolarizing(p, 2.0 * p).expect("valid noise");

        // Policy drift on a fixed probe set of observations.
        let mut tv_sum = 0.0;
        let mut tv_n = 0usize;
        for probe in 0..16 {
            let obs: Vec<f64> = (0..config.env.obs_dim())
                .map(|i| ((probe * 4 + i * 7) % 11) as f64 / 10.0)
                .collect();
            let actor = &actors[probe % actors.len()];
            let clean = softmax(&actor.model().forward(&obs, &actor.params())?);
            let noisy = softmax(&actor.model().forward_noisy(&obs, &actor.params(), &noise)?);
            tv_sum += tv_distance(&clean, &noisy);
            tv_n += 1;
        }
        let tv = tv_sum / tv_n as f64;

        // Return under noisy decentralized execution.
        let mut rewards = Vec::with_capacity(eval_episodes);
        let mut env = SingleHopEnv::new(config.env.clone(), seed + 11).map_err(CoreError::from)?;
        let mut rng = StdRng::seed_from_u64(seed + 101);
        for _ in 0..eval_episodes {
            let m = rollout_episode(&mut env, |obs| {
                obs.iter()
                    .enumerate()
                    .map(|(n, o)| {
                        let logits = actors[n]
                            .model()
                            .forward_noisy(o, &actors[n].params(), &noise)
                            .expect("noisy forward");
                        select_action(&softmax(&logits), false, &mut rng)
                    })
                    .collect()
            })
            .map_err(CoreError::from)?;
            rewards.push(m.total_reward);
        }
        let (reward_mean, reward_std) = mean_std(&rewards);
        Ok::<NoiseRow, CoreError>(NoiseRow {
            p,
            tv,
            reward_mean,
            reward_std,
        })
    })
    .map_err(HarnessError::from)?
    .into_iter()
    .map(|t| t.value)
    .collect();

    let mut csv = String::from("noise_p,policy_tv_distance,reward_mean,reward_std\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{:.6},{:.4},{:.4}\n",
            r.p, r.tv, r.reward_mean, r.reward_std
        ));
    }
    Ok((rows, Artifact::new("ablation_noise.csv", csv)))
}

// ---------------------------------------------------------------------
// Ablation D: finite measurement shots.
// ---------------------------------------------------------------------

/// One shot budget's evaluation (`None` = exact expectations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShotsRow {
    /// Samples per readout; `None` is the exact limit.
    pub shots: Option<usize>,
    /// Worst-case per-readout standard error.
    pub std_error: f64,
    /// Mean return.
    pub reward_mean: f64,
    /// Across-episode std.
    pub reward_std: f64,
}

/// The shot-budget ladder of the ablation.
pub const SHOT_BUDGETS: [Option<usize>; 7] = [
    Some(8),
    Some(32),
    Some(128),
    Some(512),
    Some(2048),
    Some(8192),
    None,
];

/// Trains `Proposed` (one harness cell), then executes the trained
/// policies at every shot budget across the harness task pool.
///
/// # Errors
///
/// Propagates training and simulation errors.
pub fn ablation_shots(
    epochs: usize,
    eval_episodes: usize,
    seed: u64,
) -> Result<(Vec<ShotsRow>, Artifact), HarnessError> {
    let mut config = ExperimentConfig::paper_default();
    config.train.epochs = epochs;
    config.train.seed = seed;
    let cell = train_paper_cell(FrameworkKind::Proposed, epochs, seed)?;
    let actors = materialize_quantum_actors(&cell.snapshot, &config)?;

    let rows: Vec<ShotsRow> = try_run_tasks(&SHOT_BUDGETS, 0, |_, &shots| {
        let mut rewards = Vec::with_capacity(eval_episodes);
        let mut env = SingleHopEnv::new(config.env.clone(), seed + 21).map_err(CoreError::from)?;
        let mut rng = StdRng::seed_from_u64(seed + 77);
        for _ in 0..eval_episodes {
            let m = rollout_episode(&mut env, |obs| {
                obs.iter()
                    .enumerate()
                    .map(|(n, o)| {
                        let logits = match shots {
                            Some(s) => actors[n]
                                .model()
                                .forward_shots(o, &actors[n].params(), s, &mut rng)
                                .expect("shot forward"),
                            None => actors[n]
                                .model()
                                .forward(o, &actors[n].params())
                                .expect("forward"),
                        };
                        select_action(&softmax(&logits), false, &mut rng)
                    })
                    .collect()
            })
            .map_err(CoreError::from)?;
            rewards.push(m.total_reward);
        }
        let (reward_mean, reward_std) = mean_std(&rewards);
        Ok::<ShotsRow, CoreError>(ShotsRow {
            shots,
            std_error: shots.map_or(0.0, |s| z_standard_error(0.0, s)),
            reward_mean,
            reward_std,
        })
    })
    .map_err(HarnessError::from)?
    .into_iter()
    .map(|t| t.value)
    .collect();

    let mut csv = String::from("shots,z_standard_error,reward_mean,reward_std\n");
    for r in &rows {
        match r.shots {
            Some(s) => csv.push_str(&format!(
                "{s},{:.6},{:.4},{:.4}\n",
                r.std_error, r.reward_mean, r.reward_std
            )),
            None => csv.push_str(&format!(
                "exact,0,{:.4},{:.4}\n",
                r.reward_mean, r.reward_std
            )),
        }
    }
    Ok((rows, Artifact::new("ablation_shots.csv", csv)))
}

// ---------------------------------------------------------------------
// Ablation F: encode-once vs data re-uploading.
// ---------------------------------------------------------------------

/// One architecture's value-regression result.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingRow {
    /// Architecture label.
    pub name: String,
    /// Gate count.
    pub gates: usize,
    /// Circuit depth.
    pub depth: usize,
    /// Trainable parameters.
    pub params: usize,
    /// Final epoch's regression MSE.
    pub mse: f64,
    /// Error-free execution proxy at p = 1e-3.
    pub fidelity_1e3: f64,
    /// Error-free execution proxy at p = 1e-2.
    pub fidelity_1e2: f64,
}

/// Collects (state, discounted-return) pairs from random-policy episodes.
fn collect_dataset(seed: u64, episodes: usize, gamma: f64) -> Vec<(Vec<f64>, f64)> {
    let mut cfg = EnvConfig::paper_default();
    cfg.episode_limit = 60;
    let mut env = SingleHopEnv::new(cfg, seed).expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let mut data = Vec::new();
    for _ in 0..episodes {
        let (_, mut state) = env.reset();
        let mut states = vec![state.clone()];
        let mut rewards = Vec::new();
        loop {
            let actions: Vec<usize> = (0..4).map(|_| rng.gen_range(0..4)).collect();
            let out = env.step(&actions).expect("step");
            rewards.push(out.reward);
            state = out.state;
            if out.done {
                break;
            }
            states.push(state.clone());
        }
        // Backward pass for discounted returns G_t.
        let mut g = 0.0;
        let mut returns = vec![0.0; rewards.len()];
        for t in (0..rewards.len()).rev() {
            g = rewards[t] + gamma * g;
            returns[t] = g;
        }
        for (s, r) in states.into_iter().zip(returns) {
            data.push((s, r));
        }
    }
    data
}

/// Trains a critic model by Adam on MSE over the dataset; returns the
/// final epoch's MSE.
fn regress(model: &Vqc, data: &[(Vec<f64>, f64)], epochs: usize, seed: u64) -> f64 {
    let mut params = model.init_params(seed);
    let mut opt = Adam::new(5e-3, params.len());
    let mut last_mse = f64::INFINITY;
    for _ in 0..epochs {
        let mut mse = 0.0;
        for (x, y) in data {
            let (out, jac) = model
                .forward_with_jacobian(x, &params, GradMethod::Adjoint)
                .expect("jacobian");
            let err = out[0] - y;
            mse += err * err;
            let grad = jac.vjp(&[2.0 * err / data.len() as f64]);
            opt.step(&mut params, &grad);
        }
        last_mse = mse / data.len() as f64;
    }
    last_mse
}

/// Runs the encoder-design regression for every architecture arm over
/// the harness task pool. Returns the rows, the artifact and the dataset
/// size.
///
/// # Errors
///
/// Currently infallible past construction (`expect`s paper-valid
/// circuit shapes), but keeps the fallible signature of its siblings.
pub fn ablation_encoding(
    epochs: usize,
    episodes: usize,
    seed: u64,
    budget: usize,
) -> Result<(Vec<EncodingRow>, Artifact, usize), HarnessError> {
    let data = collect_dataset(seed, episodes, 0.95);
    let architectures: Vec<(String, Circuit)> = vec![
        ("encode-once (paper)".into(), {
            let mut c = layered_angle_encoder(4, 16).expect("valid");
            c.append_shifted(&layered_ansatz(4, budget).expect("valid"))
                .expect("same width");
            c
        }),
        (
            "re-upload x2".into(),
            reuploading_circuit(4, 16, 2, budget).expect("valid"),
        ),
        (
            "re-upload x3".into(),
            reuploading_circuit(4, 16, 3, budget).expect("valid"),
        ),
    ];

    let rows: Vec<EncodingRow> = run_tasks(&architectures, 0, |_, (name, circuit)| {
        let stats = CircuitStats::of(circuit);
        let model = VqcBuilder::new(4)
            .full_circuit(circuit.clone())
            .readout(Readout::mean_z(4))
            .output_head(OutputHead::Affine)
            .build()
            .expect("valid model");
        let mse = regress(&model, &data, epochs, seed);
        EncodingRow {
            name: name.clone(),
            gates: stats.gates,
            depth: stats.depth,
            params: model.param_count(),
            mse,
            fidelity_1e3: stats.fidelity_proxy(1e-3, 2e-3),
            fidelity_1e2: stats.fidelity_proxy(1e-2, 2e-2),
        }
    })
    .into_iter()
    .map(|t| t.value)
    .collect();

    let mut csv =
        String::from("architecture,gates,depth,params,final_mse,fidelity_1e3,fidelity_1e2\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{:.6},{:.6},{:.6}\n",
            r.name, r.gates, r.depth, r.params, r.mse, r.fidelity_1e3, r.fidelity_1e2
        ));
    }
    Ok((
        rows,
        Artifact::new("ablation_encoding.csv", csv),
        data.len(),
    ))
}

// ---------------------------------------------------------------------
// Ablation A: qubit scaling — naive CTDE vs state encoding.
// ---------------------------------------------------------------------

/// One agent-count row of the qubit-scaling ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct QubitScalingRow {
    /// Agent count.
    pub n_agents: usize,
    /// Global state dimension.
    pub state_dim: usize,
    /// The naive critic's register width.
    pub naive_qubits: usize,
    /// Encoded critic µs per value+gradient.
    pub encoded_grad_us: f64,
    /// Naive critic µs per value+gradient.
    pub naive_grad_us: f64,
    /// Encoded critic purity under noise (`None` = intractable).
    pub encoded_purity: Option<f64>,
    /// Naive critic purity under noise.
    pub naive_purity: Option<f64>,
}

/// Density-matrix simulation above this register width is impractical on
/// a laptop (memory and time are 4^n); report it as such.
pub const MAX_NOISY_QUBITS: usize = 8;

/// Measures the qubit-scaling rows. Runs on the harness task pool with a
/// **single worker**: the µs columns are wall-clock microbenchmarks, and
/// parallel rows would contend for cores and distort each other.
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn ablation_qubit_scaling(
    budget: usize,
    noise_p: f64,
    seed: u64,
) -> Result<(Vec<QubitScalingRow>, Artifact), HarnessError> {
    let agent_counts = [1usize, 2, 3, 4];
    let rows: Vec<QubitScalingRow> = try_run_tasks(&agent_counts, 1, |_, &n_agents| {
        let mut env_cfg = EnvConfig::paper_default();
        env_cfg.n_edges = n_agents;
        let state_dim = env_cfg.state_dim();
        let state: Vec<f64> = (0..state_dim).map(|i| 0.07 * (i as f64) % 1.0).collect();

        // The paper's critic: fixed 4 qubits via layered encoding.
        let encoded = QuantumCritic::new(4, state_dim, budget, seed)?;
        // The naive critic: one wire per feature.
        let naive = NaiveQuantumCritic::new(state_dim, budget, seed)?;

        let time_grad = |f: &dyn Fn()| -> f64 {
            f(); // warm up
            let reps = 20;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e6 / reps as f64
        };
        let encoded_grad_us = time_grad(&|| {
            encoded.value_with_gradient(&state).expect("gradient");
        });
        let naive_grad_us = time_grad(&|| {
            naive.value_with_gradient(&state).expect("gradient");
        });

        // Purity after noisy execution with the same per-gate rate.
        let noise = NoiseModel::depolarizing(noise_p, 2.0 * noise_p).expect("valid noise");
        let purity = |model: &Vqc, params: &[f64]| -> Option<f64> {
            if model.circuit().n_qubits() > MAX_NOISY_QUBITS {
                return None;
            }
            let circ_params = &params[..model.circuit_param_count()];
            let scaled: Vec<f64> = state.iter().map(|x| x * std::f64::consts::PI).collect();
            Some(
                run_noisy(model.circuit(), &scaled, circ_params, &noise)
                    .expect("noisy run")
                    .purity(),
            )
        };
        Ok::<QubitScalingRow, CoreError>(QubitScalingRow {
            n_agents,
            state_dim,
            naive_qubits: naive.n_qubits(),
            encoded_grad_us,
            naive_grad_us,
            encoded_purity: purity(encoded.model(), &encoded.params()),
            naive_purity: purity(naive.model(), &naive.params()),
        })
    })
    .map_err(HarnessError::from)?
    .into_iter()
    .map(|t| t.value)
    .collect();

    let mut csv = String::from(
        "n_agents,state_dim,encoded_qubits,naive_qubits,encoded_grad_us,naive_grad_us,encoded_purity,naive_purity\n",
    );
    for r in &rows {
        csv.push_str(&format!(
            "{},{},4,{},{:.2},{:.2},{},{}\n",
            r.n_agents,
            r.state_dim,
            r.naive_qubits,
            r.encoded_grad_us,
            r.naive_grad_us,
            r.encoded_purity
                .map_or(String::new(), |v| format!("{v:.6}")),
            r.naive_purity.map_or(String::new(), |v| format!("{v:.6}")),
        ));
    }
    Ok((rows, Artifact::new("ablation_qubit_scaling.csv", csv)))
}

// ---------------------------------------------------------------------
// Table II: parameter budgets.
// ---------------------------------------------------------------------

/// Computes every framework's parameter report over the harness task
/// pool and renders the `table2_param_budgets.csv` artifact.
///
/// # Errors
///
/// Propagates construction errors.
pub fn table2_param_budgets(
    config: &ExperimentConfig,
) -> Result<(Vec<ParamReport>, Artifact), HarnessError> {
    let kinds = [
        FrameworkKind::Proposed,
        FrameworkKind::Comp1,
        FrameworkKind::Comp2,
        FrameworkKind::Comp3,
        FrameworkKind::RandomWalk,
    ];
    let reports: Vec<ParamReport> =
        try_run_tasks(&kinds, 0, |_, &kind| parameter_report(kind, config))
            .map_err(HarnessError::from)?
            .into_iter()
            .map(|t| t.value)
            .collect();
    let mut csv = String::from("framework,per_actor,n_actors,critic,total\n");
    for r in &reports {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            r.kind.name(),
            r.per_actor,
            r.n_actors,
            r.critic,
            r.total()
        ));
    }
    Ok((reports, Artifact::new("table2_param_budgets.csv", csv)))
}
