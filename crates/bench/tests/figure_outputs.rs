//! Figure-bin drift regression: the harness-refactored binaries must
//! keep producing their historical artifacts byte for byte.
//!
//! Each test runs a figure/ablation compute core at a miniature
//! configuration and asserts the FNV fingerprint of every artifact's
//! exact bytes against the committed table. The paper scenario's
//! 300-step episodes make these minutes-long in debug, so they are
//! `#[ignore]`d from tier-1 and run in release by the CI `harness-smoke`
//! job (`cargo test --release -p qmarl-bench --test figure_outputs --
//! --ignored`).
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! QMARL_BLESS=1 cargo test --release -p qmarl-bench --test figure_outputs -- --ignored --nocapture
//! ```

use qmarl_bench::figures::{
    ablation_ctde, ablation_encoding, ablation_noise, ablation_qubit_scaling, ablation_shots,
    fig3_training_curves, fig4_demonstration, table2_param_budgets, Artifact,
};
use qmarl_core::prelude::ExperimentConfig;

/// FNV-1a over artifact names and exact contents.
fn fingerprint(artifacts: &[&Artifact]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for a in artifacts {
        eat(a.name.as_bytes());
        eat(&[0xFF]);
        eat(a.content.as_bytes());
        eat(&[0xFE]);
    }
    h
}

fn check(label: &str, expected: u64, artifacts: &[&Artifact]) {
    let got = fingerprint(artifacts);
    if std::env::var("QMARL_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        println!("    (\"{label}\", {got:#x}),");
        return;
    }
    assert_eq!(
        got, expected,
        "{label}: artifact bytes drifted (got {got:#x}); if intentional, re-bless with \
         QMARL_BLESS=1 (see module docs)"
    );
}

#[test]
#[ignore = "minutes of training at the paper's 300-step episodes; run in release via CI"]
fn fig3_artifacts_are_byte_stable() {
    let out = fig3_training_curves(3, 2, 7, 2).expect("fig3 runs");
    assert_eq!(out.artifacts.len(), 4 + 1 + 4 * 2);
    check(
        "fig3",
        0x98906dbf3ce81727,
        &out.artifacts.iter().collect::<Vec<_>>(),
    );
}

#[test]
#[ignore = "minutes of training at the paper's 300-step episodes; run in release via CI"]
fn fig4_artifact_is_byte_stable() {
    let out = fig4_demonstration(2, 4, 7, 0, false).expect("fig4 runs");
    check("fig4", 0x479722e1c719cc94, &[&out.artifact]);
}

#[test]
#[ignore = "minutes of training at the paper's 300-step episodes; run in release via CI"]
fn ablation_ctde_artifact_is_byte_stable() {
    let out = ablation_ctde(3, 2, 7).expect("ctde ablation runs");
    check("ablation_ctde", 0x66cce56015e6dac9, &[&out.artifact]);
}

#[test]
#[ignore = "minutes of training at the paper's 300-step episodes; run in release via CI"]
fn ablation_noise_artifact_is_byte_stable() {
    let (rows, artifact) = ablation_noise(3, 2, 7).expect("noise ablation runs");
    assert_eq!(rows.len(), 8);
    assert_eq!(rows[0].p, 0.0);
    assert!(rows[0].tv.abs() < 1e-12, "p=0 must not drift the policy");
    check("ablation_noise", 0xca885f70487bca80, &[&artifact]);
}

#[test]
#[ignore = "minutes of training at the paper's 300-step episodes; run in release via CI"]
fn ablation_shots_artifact_is_byte_stable() {
    let (rows, artifact) = ablation_shots(3, 2, 7).expect("shots ablation runs");
    assert_eq!(rows.len(), 7);
    assert_eq!(rows.last().unwrap().shots, None);
    check("ablation_shots", 0x38af95fbdf2f08a5, &[&artifact]);
}

#[test]
#[ignore = "tens of seconds of circuit regression; run in release via CI"]
fn ablation_encoding_artifact_is_byte_stable() {
    let (rows, artifact, _) = ablation_encoding(2, 2, 7, 48).expect("encoding ablation runs");
    assert_eq!(rows.len(), 3);
    check("ablation_encoding", 0xa5f203c1cd776ab8, &[&artifact]);
}

#[test]
#[ignore = "density-matrix purity rows; run in release via CI"]
fn ablation_qubit_scaling_deterministic_columns_are_stable() {
    // The µs columns are wall-clock and inherently non-reproducible, so
    // this pins only the deterministic structure: register widths and
    // noisy-execution purities.
    let (rows, artifact) = ablation_qubit_scaling(50, 0.01, 7).expect("scaling ablation runs");
    assert_eq!(
        rows.iter().map(|r| r.n_agents).collect::<Vec<_>>(),
        vec![1, 2, 3, 4]
    );
    assert_eq!(
        rows.iter().map(|r| r.naive_qubits).collect::<Vec<_>>(),
        vec![4, 8, 12, 16],
        "naive register grows as N * obs_dim while the encoded stays at 4"
    );
    for r in &rows {
        let enc = r.encoded_purity.expect("4 qubits is always tractable");
        assert!((0.0..=1.0 + 1e-12).contains(&enc));
        match r.naive_purity {
            // At N = 1 both layouts are the same 4-wire circuit; beyond
            // that the wider register strictly loses more purity.
            Some(naive) => assert!(
                naive <= enc + 1e-12 && (r.n_agents == 1 || naive < enc),
                "N={}: naive purity {naive} must undercut encoded {enc}",
                r.n_agents
            ),
            None => assert!(r.naive_qubits > 8, "only wide registers are intractable"),
        }
    }
    // The CSV carries the timing columns; just sanity-check its shape.
    assert_eq!(artifact.content.lines().count(), 5);
}

#[test]
fn table2_artifact_is_byte_stable() {
    // Parameter accounting is pure arithmetic: cheap enough for tier-1.
    let (reports, artifact) =
        table2_param_budgets(&ExperimentConfig::paper_default()).expect("budgets compute");
    assert_eq!(reports.len(), 5);
    check("table2", 0x6259d32b6ad91031, &[&artifact]);
}
