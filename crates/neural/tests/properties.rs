//! Property-based tests for the classical NN substrate.

use proptest::prelude::*;
use qmarl_neural::prelude::*;

proptest! {
    /// Softmax of any finite logits is a valid distribution and is
    /// invariant to constant shifts.
    #[test]
    fn softmax_distribution_and_shift_invariance(
        logits in prop::collection::vec(-50.0f64..50.0, 1..8),
        shift in -100.0f64..100.0,
    ) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        let shifted: Vec<f64> = logits.iter().map(|x| x + shift).collect();
        let q = softmax(&shifted);
        for (a, b) in p.iter().zip(&q) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// log_softmax is consistent with softmax for any logits.
    #[test]
    fn log_softmax_consistency(logits in prop::collection::vec(-30.0f64..30.0, 1..8)) {
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            if *a > 1e-300 {
                prop_assert!((a.ln() - b).abs() < 1e-9);
            }
        }
    }

    /// MLP backward matches finite differences for random architectures,
    /// inputs and upstream gradients.
    #[test]
    fn mlp_gradient_check(
        seed in 0u64..50,
        hidden in 1usize..6,
        x in prop::collection::vec(-1.0f64..1.0, 3),
        upstream in prop::collection::vec(-1.0f64..1.0, 2),
    ) {
        let mut mlp = Mlp::new(&[3, hidden, 2], Activation::Tanh, seed);
        let (grad, _) = mlp.backward(&x, &upstream);
        let base = mlp.params();
        let loss = |m: &Mlp| -> f64 {
            m.forward(&x).iter().zip(&upstream).map(|(y, u)| y * u).sum()
        };
        let eps = 1e-6;
        // Spot-check a third of the parameters to keep the case fast.
        for p in (0..base.len()).step_by(3) {
            let mut pp = base.clone();
            pp[p] += eps;
            mlp.set_params(&pp);
            let plus = loss(&mlp);
            pp[p] -= 2.0 * eps;
            mlp.set_params(&pp);
            let minus = loss(&mlp);
            let fd = (plus - minus) / (2.0 * eps);
            prop_assert!((grad[p] - fd).abs() < 1e-4, "param {}: {} vs {}", p, grad[p], fd);
        }
        mlp.set_params(&base);
    }

    /// Adam steps keep parameters finite for any finite gradients, and a
    /// zero gradient never moves the parameters.
    #[test]
    fn adam_stability(
        grads in prop::collection::vec(-1e6f64..1e6, 4),
        lr in 1e-6f64..0.5,
    ) {
        let mut opt = Adam::new(lr, 4);
        let mut params = vec![0.5; 4];
        opt.step(&mut params, &grads);
        prop_assert!(params.iter().all(|p| p.is_finite()));
        // Step size is bounded by ~lr per coordinate (Adam property).
        for p in &params {
            prop_assert!((p - 0.5).abs() <= lr * 1.2 + 1e-12);
        }
        let mut opt = Adam::new(lr, 4);
        let mut frozen = vec![0.5; 4];
        opt.step(&mut frozen, &[0.0; 4]);
        prop_assert!(frozen.iter().all(|&p| p == 0.5));
    }

    /// Policy-gradient logits always sum to zero (softmax gauge freedom).
    #[test]
    fn policy_gradient_gauge(
        logits in prop::collection::vec(-5.0f64..5.0, 2..6),
        adv in -10.0f64..10.0,
    ) {
        let probs = softmax(&logits);
        let action = logits.len() - 1;
        let g = policy_gradient_logits(&probs, action, adv);
        prop_assert!(g.iter().sum::<f64>().abs() < 1e-9);
    }

    /// Matrix transpose-matvec adjoint identity ⟨y, Ax⟩ = ⟨Aᵀy, x⟩.
    #[test]
    fn matvec_adjoint_identity(
        rows in 1usize..5,
        cols in 1usize..5,
        seedv in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seedv);
        let a = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
        let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let lhs: f64 = y.iter().zip(a.matvec(&x)).map(|(u, v)| u * v).sum();
        let rhs: f64 = a.matvec_transposed(&y).iter().zip(&x).map(|(u, v)| u * v).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}
