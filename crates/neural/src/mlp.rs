//! Multi-layer perceptrons with flat-parameter backprop.
//!
//! The paper's classical baselines are MLPs: Comp2 matched to the ~50
//! trainable-parameter budget of the quantum models, Comp3 unconstrained
//! (> 40 K parameters). [`Mlp`] exposes the same flat parameter-vector
//! interface as `qmarl_vqc::qnn::Vqc`, so one optimizer drives both.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::layer::{Activation, Dense};

/// A feed-forward network: a chain of [`Dense`] layers.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, hidden activation and a
    /// linear output layer.
    ///
    /// `sizes = [in, h1, …, out]` produces `len(sizes) − 1` layers.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], hidden: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs an input and an output size");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let is_last = layers.len() == sizes.len() - 2;
            let act = if is_last {
                Activation::Identity
            } else {
                hidden
            };
            layers.push(Dense::new(w[0], w[1], act, &mut rng));
        }
        Mlp { layers }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").out_dim()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// The layers, input-first.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Backward pass: given the input and `∂L/∂output`, returns the flat
    /// parameter gradient (same layout as [`Mlp::params`]) and `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&self, x: &[f64], upstream: &[f64]) -> (Vec<f64>, Vec<f64>) {
        // Forward, caching every layer input.
        let mut inputs: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut h = x.to_vec();
        for layer in &self.layers {
            inputs.push(h.clone());
            h = layer.forward(&h);
        }
        // Backward.
        let mut grad_chunks: Vec<Vec<f64>> = vec![Vec::new(); self.layers.len()];
        let mut up = upstream.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let g = layer.backward(&inputs[i], &up);
            let mut chunk = Vec::with_capacity(layer.param_count());
            chunk.extend_from_slice(g.weights.as_slice());
            chunk.extend_from_slice(&g.biases);
            grad_chunks[i] = chunk;
            up = g.input;
        }
        (grad_chunks.concat(), up)
    }

    /// The flat parameter vector (layer by layer: weights then biases).
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    /// Loads a flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != param_count()`.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "parameter vector length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_params(&params[offset..]);
        }
    }
}

/// Picks the widest single hidden layer such that an
/// `[input, hidden, output]` MLP stays within `param_budget` parameters
/// (the paper's Comp2 is budget-matched to the 50-parameter VQCs).
/// Returns the hidden width and the resulting parameter count.
pub fn hidden_for_budget(in_dim: usize, out_dim: usize, param_budget: usize) -> (usize, usize) {
    // params(h) = (in+1)·h + (h+1)·out = h·(in + out + 1) + out
    let per_unit = in_dim + out_dim + 1;
    let budget_minus_bias = param_budget.saturating_sub(out_dim);
    let h = (budget_minus_bias / per_unit).max(1);
    (h, h * per_unit + out_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_param_count() {
        let mlp = Mlp::new(&[4, 5, 4], Activation::Relu, 0);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 4);
        // (4+1)·5 + (5+1)·4 = 25 + 24 = 49.
        assert_eq!(mlp.param_count(), 49);
        assert_eq!(mlp.forward(&[0.0; 4]).len(), 4);
        assert_eq!(mlp.layers().len(), 2);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Mlp::new(&[3, 8, 2], Activation::Tanh, 7);
        let b = Mlp::new(&[3, 8, 2], Activation::Tanh, 7);
        assert_eq!(a.params(), b.params());
        let c = Mlp::new(&[3, 8, 2], Activation::Tanh, 8);
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn params_roundtrip() {
        let mut mlp = Mlp::new(&[2, 3, 1], Activation::Tanh, 1);
        let mut p = mlp.params();
        p[0] = 5.5;
        *p.last_mut().unwrap() = -2.0;
        mlp.set_params(&p);
        assert_eq!(mlp.params(), p);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, 3);
        let x = [0.4, -0.9, 0.1];
        let upstream = [0.7, -1.2];
        let (grad, input_grad) = mlp.backward(&x, &upstream);
        assert_eq!(grad.len(), mlp.param_count());

        let loss = |m: &Mlp, x: &[f64]| -> f64 {
            m.forward(x).iter().zip(&upstream).map(|(y, u)| y * u).sum()
        };
        let base = mlp.params();
        let eps = 1e-6;
        for p in 0..base.len() {
            let mut pp = base.clone();
            pp[p] += eps;
            mlp.set_params(&pp);
            let plus = loss(&mlp, &x);
            pp[p] -= 2.0 * eps;
            mlp.set_params(&pp);
            let minus = loss(&mlp, &x);
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (grad[p] - fd).abs() < 1e-5,
                "param {p}: {} vs {fd}",
                grad[p]
            );
        }
        mlp.set_params(&base);

        for i in 0..x.len() {
            let mut xx = x;
            xx[i] += eps;
            let plus = loss(&mlp, &xx);
            xx[i] -= 2.0 * eps;
            let minus = loss(&mlp, &xx);
            let fd = (plus - minus) / (2.0 * eps);
            assert!((input_grad[i] - fd).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_network_backward() {
        // Exercise the ReLU derivative path too.
        let mlp = Mlp::new(&[2, 4, 1], Activation::Relu, 11);
        let (grad, _) = mlp.backward(&[1.0, -1.0], &[1.0]);
        assert_eq!(grad.len(), mlp.param_count());
        assert!(
            grad.iter().any(|g| g.abs() > 0.0),
            "some gradient must flow"
        );
    }

    #[test]
    fn budget_helper() {
        let (h, n) = hidden_for_budget(4, 4, 50);
        assert_eq!(h, 5);
        assert_eq!(n, 49);
        assert!(n <= 50);

        let (h, n) = hidden_for_budget(16, 1, 50);
        assert_eq!(h, 2);
        assert_eq!(n, 37);

        // Degenerate: tiny budget still yields a working net.
        let (h, _) = hidden_for_budget(4, 4, 1);
        assert_eq!(h, 1);
    }

    #[test]
    fn comp3_scale_network() {
        // The paper's unconstrained baseline: > 40 K parameters.
        let mlp = Mlp::new(&[4, 200, 200, 4], Activation::Relu, 0);
        assert!(
            mlp.param_count() > 40_000,
            "comp3 actor: {}",
            mlp.param_count()
        );
    }

    #[test]
    fn deep_mlp_three_hidden() {
        let mlp = Mlp::new(&[4, 8, 8, 8, 2], Activation::Tanh, 5);
        assert_eq!(mlp.layers().len(), 4);
        let y = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(y.len(), 2);
    }
}
