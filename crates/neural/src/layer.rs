//! Dense layers and activations with manual reverse-mode derivatives.

use rand::Rng;

use crate::matrix::Matrix;

/// An elementwise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No-op (linear output layer).
    Identity,
}

impl Activation {
    /// Applies the activation elementwise.
    pub fn forward(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.scalar(x)).collect()
    }

    /// Single-value forward.
    #[inline]
    pub fn scalar(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// The derivative evaluated from the **pre-activation** input.
    #[inline]
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }
}

/// A fully-connected layer `y = act(Wx + b)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Dense {
    weights: Matrix,
    biases: Vec<f64>,
    activation: Activation,
}

/// Gradients of one dense layer from a backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGradients {
    /// `∂L/∂W`, same shape as the weights.
    pub weights: Matrix,
    /// `∂L/∂b`.
    pub biases: Vec<f64>,
    /// `∂L/∂x` — the upstream gradient for the previous layer.
    pub input: Vec<f64>,
}

impl Dense {
    /// A new layer with Xavier-uniform weights and zero biases.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let weights = Matrix::from_fn(out_dim, in_dim, |_, _| rng.gen_range(-limit..limit));
        Dense {
            weights,
            biases: vec![0.0; out_dim],
            activation,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters (`W` entries + biases).
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let pre = self.pre_activation(x);
        self.activation.forward(&pre)
    }

    /// The pre-activation `Wx + b` (cached by backprop).
    pub fn pre_activation(&self, x: &[f64]) -> Vec<f64> {
        let mut z = self.weights.matvec(x);
        for (zi, bi) in z.iter_mut().zip(&self.biases) {
            *zi += bi;
        }
        z
    }

    /// Backward pass given the layer input and `∂L/∂y`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&self, x: &[f64], upstream: &[f64]) -> DenseGradients {
        assert_eq!(
            upstream.len(),
            self.out_dim(),
            "upstream dimension mismatch"
        );
        let pre = self.pre_activation(x);
        // δ = upstream ⊙ act'(z)
        let delta: Vec<f64> = upstream
            .iter()
            .zip(&pre)
            .map(|(&u, &z)| u * self.activation.derivative(z))
            .collect();
        DenseGradients {
            weights: Matrix::outer(&delta, x),
            biases: delta.clone(),
            input: self.weights.matvec_transposed(&delta),
        }
    }

    /// Copies the parameters into `out` (weights row-major, then biases).
    pub fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(&self.biases);
    }

    /// Loads parameters from a flat slice, returning how many were read.
    ///
    /// # Panics
    ///
    /// Panics if the slice is too short.
    pub fn read_params(&mut self, params: &[f64]) -> usize {
        let nw = self.weights.len();
        let nb = self.biases.len();
        assert!(params.len() >= nw + nb, "parameter slice too short");
        self.weights.as_mut_slice().copy_from_slice(&params[..nw]);
        self.biases.copy_from_slice(&params[nw..nw + nb]);
        nw + nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn activations_forward() {
        assert_eq!(Activation::Relu.scalar(-1.0), 0.0);
        assert_eq!(Activation::Relu.scalar(2.0), 2.0);
        assert!((Activation::Tanh.scalar(0.0)).abs() < 1e-15);
        assert!((Activation::Sigmoid.scalar(0.0) - 0.5).abs() < 1e-15);
        assert_eq!(Activation::Identity.scalar(3.3), 3.3);
    }

    #[test]
    fn activation_derivatives_match_finite_difference() {
        let eps = 1e-6;
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            for x in [-1.7, -0.3, 0.4, 2.1] {
                let fd = (act.scalar(x + eps) - act.scalar(x - eps)) / (2.0 * eps);
                assert!(
                    (act.derivative(x) - fd).abs() < 1e-6,
                    "{act:?} at {x}: {} vs {fd}",
                    act.derivative(x)
                );
            }
        }
    }

    #[test]
    fn dense_forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
        assert_eq!(layer.param_count(), 15);
        let y = layer.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(y.len(), 3);
        assert!(y.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn dense_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = [0.5, -0.3, 0.8];
        let upstream = [1.0, -0.5];
        let grads = layer.backward(&x, &upstream);

        // Loss L = Σ upstream_j · y_j; check ∂L/∂params numerically.
        let mut params = Vec::new();
        layer.write_params(&mut params);
        let loss = |layer: &Dense| -> f64 {
            layer
                .forward(&x)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum()
        };
        let eps = 1e-6;
        let mut flat_grad = Vec::new();
        flat_grad.extend_from_slice(grads.weights.as_slice());
        flat_grad.extend_from_slice(&grads.biases);
        for p in 0..params.len() {
            let mut pp = params.clone();
            pp[p] += eps;
            layer.read_params(&pp);
            let plus = loss(&layer);
            pp[p] -= 2.0 * eps;
            layer.read_params(&pp);
            let minus = loss(&layer);
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (flat_grad[p] - fd).abs() < 1e-5,
                "param {p}: {} vs {fd}",
                flat_grad[p]
            );
        }
        layer.read_params(&params);

        // And ∂L/∂x numerically.
        for i in 0..x.len() {
            let mut xx = x;
            xx[i] += eps;
            let plus = layer
                .forward(&xx)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum::<f64>();
            xx[i] -= 2.0 * eps;
            let minus = layer
                .forward(&xx)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum::<f64>();
            let fd = (plus - minus) / (2.0 * eps);
            assert!((grads.input[i] - fd).abs() < 1e-5);
        }
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng);
        let mut params = Vec::new();
        layer.write_params(&mut params);
        let mut tweaked = params.clone();
        tweaked[0] = 9.0;
        let read = layer.read_params(&tweaked);
        assert_eq!(read, 6);
        let mut out = Vec::new();
        layer.write_params(&mut out);
        assert_eq!(out[0], 9.0);
    }
}
