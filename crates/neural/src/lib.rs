//! # qmarl-neural — minimal classical neural networks
//!
//! The classical substrate of the
//! [QMARL reproduction](https://arxiv.org/abs/2203.10443): dense layers,
//! MLPs with manual reverse-mode backprop, softmax/policy-gradient
//! calculus, and SGD/Adam over flat parameter vectors. It powers the
//! paper's baselines — Comp1's classical centralized critic, the
//! budget-matched classical MARL (Comp2) and the unconstrained > 40 K
//! parameter MARL (Comp3).
//!
//! ```
//! use qmarl_neural::prelude::*;
//!
//! let mut policy = Mlp::new(&[4, 5, 4], Activation::Tanh, 7);
//! let mut opt = Adam::new(1e-2, policy.param_count());
//! let x = [0.1, 0.4, 0.3, 0.9];
//! // One policy-gradient step toward action 2.
//! let probs = softmax(&policy.forward(&x));
//! let upstream = policy_gradient_logits(&probs, 2, 1.0);
//! let (grad, _) = policy.backward(&x, &upstream);
//! let mut params = policy.params();
//! opt.step(&mut params, &grad);
//! policy.set_params(&params);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::layer::{Activation, Dense};
    pub use crate::loss::{entropy, log_softmax, mse, policy_gradient_logits, softmax};
    pub use crate::matrix::Matrix;
    pub use crate::mlp::{hidden_for_budget, Mlp};
    pub use crate::optim::{Adam, AdamState, Sgd};
}
