//! First-order optimizers over flat parameter vectors.
//!
//! Table II of the paper specifies **Adam** with learning rates `1e-4`
//! (actor) and `1e-5` (critic). Both optimizers here operate on plain
//! `&mut [f64]` so the same instance can train quantum circuit angles and
//! MLP weights alike.

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// A new SGD optimizer.
    pub fn new(lr: f64) -> Self {
        Sgd { lr }
    }

    /// One descent step: `θ ← θ − lr · g`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "gradient length mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Adam {
    /// Learning rate `α`.
    pub lr: f64,
    /// First-moment decay `β₁`.
    pub beta1: f64,
    /// Second-moment decay `β₂`.
    pub beta2: f64,
    /// Division-guard `ε`.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Adam with the standard hyper-parameters (β₁ = 0.9, β₂ = 0.999,
    /// ε = 1e-8) for a parameter vector of length `n_params`.
    pub fn new(lr: f64, n_params: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// One Adam step.
    ///
    /// # Panics
    ///
    /// Panics if `params`/`grads` lengths differ from the configured size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter length mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Resets the moment estimates (e.g. after a target-network swap).
    pub fn reset(&mut self) {
        self.m.fill(0.0);
        self.v.fill(0.0);
        self.t = 0;
    }

    /// The optimizer's mutable state `(m, v, t)` — what a training
    /// checkpoint must capture for a resumed run to take bit-identical
    /// steps (the hyper-parameters are public fields).
    pub fn state(&self) -> AdamState {
        AdamState {
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
        }
    }

    /// Restores a previously captured state.
    ///
    /// # Panics
    ///
    /// Panics when the moment vectors do not match the configured
    /// parameter count (same contract as [`Adam::step`]).
    pub fn set_state(&mut self, state: &AdamState) {
        assert_eq!(state.m.len(), self.m.len(), "moment length mismatch");
        assert_eq!(state.v.len(), self.v.len(), "moment length mismatch");
        self.m.copy_from_slice(&state.m);
        self.v.copy_from_slice(&state.v);
        self.t = state.t;
    }
}

/// The mutable state of an [`Adam`] instance, detached for checkpointing.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdamState {
    /// First-moment estimates.
    pub m: Vec<f64>,
    /// Second-moment estimates.
    pub v: Vec<f64>,
    /// Steps taken.
    pub t: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x − 3)² and check convergence.
    fn quadratic_descent<F: FnMut(&mut [f64], &[f64])>(mut step: F, iters: usize) -> f64 {
        let mut x = [10.0];
        for _ in 0..iters {
            let g = [2.0 * (x[0] - 3.0)];
            step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = quadratic_descent(|p, g| opt.step(p, g), 200);
        assert!((x - 3.0).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 1);
        let x = quadratic_descent(|p, g| opt.step(p, g), 800);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
        assert_eq!(opt.steps(), 800);
    }

    #[test]
    fn adam_converges_on_rosenbrock_ish() {
        // A curved 2-D problem: f = (1−a)² + 10(b − a²)².
        let mut p = [-1.0, 1.5];
        let mut opt = Adam::new(0.02, 2);
        for _ in 0..8000 {
            let (a, b) = (p[0], p[1]);
            let g = [
                -2.0 * (1.0 - a) - 40.0 * a * (b - a * a),
                20.0 * (b - a * a),
            ];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 1.0).abs() < 0.05, "a = {}", p[0]);
        assert!((p[1] - 1.0).abs() < 0.1, "b = {}", p[1]);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first |Δθ| ≈ lr regardless of gradient scale.
        for g0 in [1e-4, 1.0, 1e4] {
            let mut opt = Adam::new(0.01, 1);
            let mut p = [0.0];
            opt.step(&mut p, &[g0]);
            assert!((p[0].abs() - 0.01).abs() < 1e-6, "g0={g0}, step={}", p[0]);
        }
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut opt = Adam::new(0.1, 2);
        let mut p = [1.0, 2.0];
        opt.step(&mut p, &[0.5, -0.5]);
        opt.reset();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_identically() {
        // Step twice, capture, step twice more; a fresh optimizer restored
        // from the capture must take the exact same remaining steps.
        let mut opt = Adam::new(0.05, 2);
        let mut p = [1.0, -2.0];
        for _ in 0..2 {
            opt.step(&mut p, &[0.3, -0.7]);
        }
        let state = opt.state();
        let p_at_capture = p;
        let mut resumed = Adam::new(0.05, 2);
        resumed.set_state(&state);
        assert_eq!(resumed.steps(), 2);
        let mut q = p_at_capture;
        for _ in 0..2 {
            opt.step(&mut p, &[0.1, 0.2]);
            resumed.step(&mut q, &[0.1, 0.2]);
        }
        assert_eq!(p, q);
        assert_eq!(opt.state(), resumed.state());
    }

    #[test]
    #[should_panic(expected = "moment length mismatch")]
    fn adam_set_state_rejects_wrong_length() {
        let mut opt = Adam::new(0.1, 3);
        let other = Adam::new(0.1, 2).state();
        opt.set_state(&other);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn adam_rejects_wrong_length() {
        let mut opt = Adam::new(0.1, 3);
        let mut p = [0.0; 2];
        opt.step(&mut p, &[1.0, 1.0]);
    }
}
