//! Loss functions and policy-gradient helpers.
//!
//! The trainer needs three pieces of calculus (Sec. III-B of the paper):
//! the softmax policy `π = softmax(f)`, the critic's squared TD-error
//! `‖y_t‖²`, and the actor's policy-gradient pseudo-loss
//! `−Σ y_t log π(u|o)` whose gradient w.r.t. the logits has the classic
//! `(softmax − onehot)` form.

/// Numerically stable softmax.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    assert!(!logits.is_empty(), "softmax of empty slice");
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically stable `log softmax`.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn log_softmax(logits: &[f64]) -> Vec<f64> {
    assert!(!logits.is_empty(), "log_softmax of empty slice");
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = logits.iter().map(|&x| (x - max).exp()).sum::<f64>().ln() + max;
    logits.iter().map(|&x| x - log_sum).collect()
}

/// Mean squared error and its gradient w.r.t. `pred`.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn mse(pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    assert!(!pred.is_empty(), "mse of empty slices");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = vec![0.0; pred.len()];
    for i in 0..pred.len() {
        let d = pred[i] - target[i];
        loss += d * d;
        grad[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// The gradient of `−advantage · log π[action]` w.r.t. the **logits**,
/// where `π = softmax(logits)`:
/// `∂/∂logit_i = advantage · (π_i − 1{i == action})`.
///
/// (The minus from the pseudo-loss and the minus from `∂(−log π)` cancel
/// into this single expression; feeding it to a *descent* step maximises
/// the advantage-weighted log-likelihood, which is the MAPG update.)
///
/// # Panics
///
/// Panics if `action` is out of range.
pub fn policy_gradient_logits(probs: &[f64], action: usize, advantage: f64) -> Vec<f64> {
    assert!(action < probs.len(), "action index out of range");
    probs
        .iter()
        .enumerate()
        .map(|(i, &p)| advantage * (p - if i == action { 1.0 } else { 0.0 }))
        .collect()
}

/// Entropy of a probability vector (exploration diagnostic).
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_stable_under_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        let p = softmax(&[-1000.0, 0.0]);
        assert!(p[0] < 1e-300 || p[0] == 0.0);
        assert!((p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_shift_invariant() {
        let a = softmax(&[0.1, 0.5, -0.3]);
        let b = softmax(&[100.1, 100.5, 99.7]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let logits = [0.3, -1.2, 2.2, 0.0];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (pi, lpi) in p.iter().zip(&lp) {
            assert!((pi.ln() - lpi).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_loss_and_gradient() {
        let (loss, grad) = mse(&[1.0, 2.0], &[0.0, 2.0]);
        assert!((loss - 0.5).abs() < 1e-12);
        assert!((grad[0] - 1.0).abs() < 1e-12);
        assert_eq!(grad[1], 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = [0.4, -0.7, 1.2];
        let target = [0.0, 0.1, 1.0];
        let (_, grad) = mse(&pred, &target);
        let eps = 1e-7;
        for i in 0..3 {
            let mut p = pred;
            p[i] += eps;
            let (plus, _) = mse(&p, &target);
            p[i] -= 2.0 * eps;
            let (minus, _) = mse(&p, &target);
            let fd = (plus - minus) / (2.0 * eps);
            assert!((grad[i] - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn policy_gradient_matches_finite_difference() {
        let logits = [0.2, -0.5, 1.1, 0.0];
        let action = 2;
        let advantage = -1.7;
        let probs = softmax(&logits);
        let grad = policy_gradient_logits(&probs, action, advantage);

        // Pseudo-loss L(logits) = −advantage · log softmax(logits)[action].
        let loss = |l: &[f64]| -advantage * log_softmax(l)[action];
        let eps = 1e-7;
        for i in 0..4 {
            let mut ll = logits;
            ll[i] += eps;
            let plus = loss(&ll);
            ll[i] -= 2.0 * eps;
            let minus = loss(&ll);
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-6,
                "logit {i}: {} vs {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn policy_gradient_sums_to_zero() {
        // Σ_i (π_i − 1{i=a}) = 0, so the gradient is shift-free.
        let probs = softmax(&[0.3, 0.9, -0.2]);
        let g = policy_gradient_logits(&probs, 1, 2.5);
        assert!(g.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn entropy_extremes() {
        assert!(entropy(&[1.0, 0.0, 0.0]).abs() < 1e-15);
        let uniform = entropy(&[0.25; 4]);
        assert!((uniform - (4.0f64).ln()).abs() < 1e-12);
    }
}
