//! A minimal dense matrix type for small MLPs.
//!
//! The classical baselines of the paper (Comp1's critic, Comp2, Comp3) are
//! small fully-connected networks; a row-major `Vec<f64>` matrix with
//! textbook kernels is all they need, and keeping it in-repo avoids an
//! external linear-algebra dependency.

use std::fmt;

/// A row-major dense matrix of `f64`.
///
/// # Examples
///
/// ```
/// use qmarl_neural::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = [5.0, 6.0];
/// assert_eq!(a.matvec(&x), vec![17.0, 39.0]);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut m = Matrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            m.data[r * cols..(r + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ·y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn matvec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, o) in out.iter_mut().enumerate() {
                *o += row[c] * yr;
            }
        }
        out
    }

    /// The outer product `y xᵀ` (gradient of `W` for `y = Wx`).
    pub fn outer(y: &[f64], x: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(y.len(), x.len());
        for (r, &yr) in y.iter().enumerate() {
            for (c, &xc) in x.iter().enumerate() {
                m.data[r * x.len() + c] = yr * xc;
            }
        }
        m
    }

    /// In-place scaled addition `self += s · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, s: f64) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false` (dimensions are positive by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}×{})", self.rows, self.cols)?;
        for r in 0..self.rows {
            let row: Vec<String> = (0..self.cols)
                .map(|c| format!("{:+.4}", self.get(r, c)))
                .collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.len(), 6);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_panic() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn matvec_identity() {
        let eye = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = [1.0, -2.0, 3.0];
        assert_eq!(eye.matvec(&x), x.to_vec());
    }

    #[test]
    fn matvec_transposed_consistency() {
        // ⟨y, Ax⟩ = ⟨Aᵀy, x⟩ for arbitrary matrices.
        let a = Matrix::from_fn(3, 4, |r, c| (r + 1) as f64 * 0.3 - (c as f64) * 0.7);
        let x = [0.5, -1.0, 2.0, 0.25];
        let y = [1.0, 0.5, -2.0];
        let ax = a.matvec(&x);
        let aty = a.matvec_transposed(&y);
        let lhs: f64 = y.iter().zip(&ax).map(|(u, v)| u * v).sum();
        let rhs: f64 = aty.iter().zip(&x).map(|(u, v)| u * v).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn outer_product() {
        let m = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 10.0);
    }

    #[test]
    fn add_scaled() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        a.add_scaled(&b, 2.0);
        assert_eq!(a.get(1, 1), 4.0);
    }

    #[test]
    fn display_nonempty() {
        let m = Matrix::zeros(1, 2);
        assert!(m.to_string().contains("Matrix(1×2)"));
    }
}
