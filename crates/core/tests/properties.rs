//! Property-based tests for the QMARL policy/value layer.

use proptest::prelude::*;
use qmarl_core::prelude::*;

proptest! {
    /// Quantum actor policies are valid distributions for any observation
    /// in the normalized range and any seed.
    #[test]
    fn quantum_policy_is_distribution(
        obs in prop::collection::vec(0.0f64..1.0, 4),
        seed in 0u64..40,
    ) {
        let actor = QuantumActor::new(4, 4, 4, 50, seed).unwrap();
        let p = actor.probs(&obs).unwrap();
        prop_assert_eq!(p.len(), 4);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x > 0.0), "softmax output strictly positive");
    }

    /// Policy gradients are finite and zero advantage gives zero gradient.
    #[test]
    fn policy_gradient_scales_with_advantage(
        obs in prop::collection::vec(0.0f64..1.0, 4),
        action in 0usize..4,
        adv in -5.0f64..5.0,
    ) {
        let actor = QuantumActor::new(4, 4, 4, 50, 3).unwrap();
        let g = actor.policy_gradient(&obs, action, adv).unwrap();
        prop_assert_eq!(g.len(), 50);
        prop_assert!(g.iter().all(|x| x.is_finite()));
        let g0 = actor.policy_gradient(&obs, action, 0.0).unwrap();
        prop_assert!(g0.iter().all(|&x| x.abs() < 1e-12), "zero advantage ⇒ zero gradient");
        // Linearity in the advantage: g(2a) = 2 g(a).
        let g2 = actor.policy_gradient(&obs, action, 2.0 * adv).unwrap();
        for (a, b) in g.iter().zip(&g2) {
            prop_assert!((2.0 * a - b).abs() < 1e-9);
        }
    }

    /// Critic values are finite and gradients match a finite-difference
    /// spot check for arbitrary states.
    #[test]
    fn critic_value_and_gradient_sound(
        state in prop::collection::vec(0.0f64..1.0, 16),
        seed in 0u64..20,
    ) {
        let mut critic = QuantumCritic::new(4, 16, 20, seed).unwrap();
        let (v, g) = critic.value_with_gradient(&state).unwrap();
        prop_assert!(v.is_finite());
        prop_assert_eq!(g.len(), 20);
        // Spot-check one coordinate against finite differences.
        let p = (seed as usize * 7) % 20;
        let base = critic.params();
        let eps = 1e-6;
        let mut pp = base.clone();
        pp[p] += eps;
        critic.set_params(&pp).unwrap();
        let plus = critic.value(&state).unwrap();
        pp[p] -= 2.0 * eps;
        critic.set_params(&pp).unwrap();
        let minus = critic.value(&state).unwrap();
        let fd = (plus - minus) / (2.0 * eps);
        prop_assert!((g[p] - fd).abs() < 1e-5, "param {}: {} vs {}", p, g[p], fd);
    }

    /// select_action always returns an index inside the distribution, and
    /// argmax picks a maximal coordinate.
    #[test]
    fn select_action_in_range(
        raw in prop::collection::vec(0.01f64..1.0, 2..6),
        seed in 0u64..50,
    ) {
        use rand::SeedableRng;
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|x| x / total).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sampled = select_action(&probs, false, &mut rng);
        prop_assert!(sampled < probs.len());
        let greedy = select_action(&probs, true, &mut rng);
        let max = probs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((probs[greedy] - max).abs() < 1e-15);
    }

    /// Checkpoint text round-trips arbitrary parameter vectors exactly.
    #[test]
    fn checkpoint_roundtrip(
        actor0 in prop::collection::vec(-1e3f64..1e3, 1..30),
        critic in prop::collection::vec(-1e3f64..1e3, 1..30),
    ) {
        let snap = FrameworkSnapshot {
            label: "prop".into(),
            actor_params: vec![actor0],
            critic_params: critic,
        };
        let parsed = FrameworkSnapshot::from_text(&snap.to_text()).unwrap();
        prop_assert_eq!(parsed, snap);
    }
}
