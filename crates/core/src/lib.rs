//! # qmarl-core — CTDE quantum multi-agent reinforcement learning
//!
//! The primary contribution of the
//! [reproduced paper](https://arxiv.org/abs/2203.10443): a centralized-
//! training / decentralized-execution (CTDE) actor–critic in which each
//! agent's policy **and** the centralized critic are variational quantum
//! circuits, with the critic's global state folded into a fixed 4-qubit
//! register by the layered state encoding of Fig. 1.
//!
//! The crate provides:
//!
//! * [`policy`] — quantum and classical actors behind one [`policy::Actor`] trait,
//! * [`value`] — quantum, classical and naive-CTDE critics behind [`value::Critic`],
//! * [`trainer`] — Algorithm 1 (MAPG + TD target + target network),
//! * [`framework`] — builders for the paper's `Proposed` / `Comp1` /
//!   `Comp2` / `Comp3` frameworks and their parameter accounting,
//! * [`config`] — Table II as a validated configuration type,
//! * [`viz`] — the Fig. 4 demonstration renderer,
//! * [`replay`] — the episode buffer `D`.
//!
//! ```no_run
//! use qmarl_core::prelude::*;
//!
//! let mut config = ExperimentConfig::paper_default();
//! config.train.epochs = 50; // small demo run
//! let mut trainer = build_trainer(FrameworkKind::Proposed, &config)?;
//! trainer.train(config.train.epochs)?;
//! println!("final reward: {:?}", trainer.history().final_reward(10));
//! # Ok::<(), qmarl_core::error::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod framework;
pub mod independent;
pub mod policy;
pub mod replay;
pub mod serving;
pub mod trainer;
pub mod value;
mod vec_policy;
pub mod viz;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::checkpoint::{FrameworkSnapshot, TrainerCheckpoint};
    pub use crate::config::{ExperimentConfig, TrainConfig};
    pub use crate::error::CoreError;
    pub use crate::framework::{
        actors_from_snapshot, build_actors, build_critic, build_kind_scenario_trainer,
        build_scenario_actors, build_scenario_trainer, build_trainer, parameter_report,
        FrameworkKind, ParamReport,
    };
    pub use crate::independent::{build_independent_quantum, IndependentTrainer};
    pub use crate::policy::{select_action, Actor, ClassicalActor, QuantumActor};
    pub use crate::replay::{Episode, ReplayBuffer, Transition};
    pub use crate::serving::ServablePolicy;
    pub use crate::trainer::{CtdeTrainer, EpochRecord, TrainingHistory, UpdateEngine};
    pub use crate::value::{ClassicalCritic, Critic, NaiveQuantumCritic, QuantumCritic};
    pub use crate::viz::{
        frames_to_csv, render_heatmap_ansi, render_queue_chart, run_demonstration, DemoFrame,
    };
    pub use qmarl_runtime::backend::ExecutionBackend;
}
