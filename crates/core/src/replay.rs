//! The experience replay buffer `D` of Algorithm 1.
//!
//! Line 9 of the paper's Algorithm 1 stores the tuple
//! `(s_t, o_t, u_t, r_t, s_{t+1}, o_{t+1})` per step; lines 12–15 then
//! iterate over "each timestep t in each episode in batch D". The buffer
//! here is episode-granular with a bounded capacity so the trainer can
//! train on the most recent episode (pure on-policy, the default) or a
//! small recent batch.

use std::collections::VecDeque;

/// One stored transition (Algorithm 1, line 9).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Transition {
    /// Global state `s_t`.
    pub state: Vec<f64>,
    /// Per-agent observations `o_t`.
    pub observations: Vec<Vec<f64>>,
    /// Per-agent flat actions `u_t`.
    pub actions: Vec<usize>,
    /// Shared reward `r_t`.
    pub reward: f64,
    /// Next global state `s_{t+1}`.
    pub next_state: Vec<f64>,
    /// Next observations `o_{t+1}`.
    pub next_observations: Vec<Vec<f64>>,
    /// Whether this transition ended the episode.
    pub done: bool,
}

/// A finished episode: its transitions in time order.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Episode {
    transitions: Vec<Transition>,
}

impl Episode {
    /// An empty episode.
    pub fn new() -> Self {
        Episode {
            transitions: Vec::new(),
        }
    }

    /// Appends a transition.
    pub fn push(&mut self, t: Transition) {
        self.transitions.push(t);
    }

    /// The transitions in time order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Episode length in steps.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// `true` when no transition has been stored.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Sum of rewards.
    pub fn total_reward(&self) -> f64 {
        self.transitions.iter().map(|t| t.reward).sum()
    }
}

/// Episode-granular replay buffer with a bounded episode capacity.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    episodes: VecDeque<Episode>,
    capacity: usize,
}

impl ReplayBuffer {
    /// A buffer holding at most `capacity` episodes (oldest evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        ReplayBuffer {
            episodes: VecDeque::new(),
            capacity,
        }
    }

    /// Stores a finished episode, evicting the oldest if full.
    pub fn push(&mut self, episode: Episode) {
        if self.episodes.len() == self.capacity {
            self.episodes.pop_front();
        }
        self.episodes.push_back(episode);
    }

    /// Number of stored episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// `true` when no episode is stored.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent `n` episodes (or fewer if the buffer is shorter),
    /// oldest first — the "batch D" the trainer iterates.
    pub fn recent(&self, n: usize) -> impl Iterator<Item = &Episode> {
        let skip = self.episodes.len().saturating_sub(n);
        self.episodes.iter().skip(skip)
    }

    /// Total transitions across all stored episodes.
    pub fn total_transitions(&self) -> usize {
        self.episodes.iter().map(Episode::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_transition(r: f64) -> Transition {
        Transition {
            state: vec![0.0; 4],
            observations: vec![vec![0.0; 2]; 2],
            actions: vec![0, 1],
            reward: r,
            next_state: vec![0.0; 4],
            next_observations: vec![vec![0.0; 2]; 2],
            done: false,
        }
    }

    fn episode_with(rs: &[f64]) -> Episode {
        let mut e = Episode::new();
        for &r in rs {
            e.push(dummy_transition(r));
        }
        e
    }

    #[test]
    fn episode_accumulates() {
        let e = episode_with(&[-1.0, -2.0]);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.total_reward(), -3.0);
        assert_eq!(e.transitions().len(), 2);
    }

    #[test]
    fn buffer_evicts_oldest() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(episode_with(&[-1.0]));
        buf.push(episode_with(&[-2.0]));
        buf.push(episode_with(&[-3.0]));
        assert_eq!(buf.len(), 2);
        let rewards: Vec<f64> = buf.recent(10).map(Episode::total_reward).collect();
        assert_eq!(rewards, vec![-2.0, -3.0]);
    }

    #[test]
    fn recent_takes_newest() {
        let mut buf = ReplayBuffer::new(5);
        for i in 0..4 {
            buf.push(episode_with(&[-(i as f64)]));
        }
        let last_two: Vec<f64> = buf.recent(2).map(Episode::total_reward).collect();
        assert_eq!(last_two, vec![-2.0, -3.0]);
        assert_eq!(buf.total_transitions(), 4);
        assert_eq!(buf.capacity(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
