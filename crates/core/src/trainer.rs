//! Algorithm 1: CTDE-based QMARL training.
//!
//! Centralized training, decentralized execution: during rollouts each
//! actor sees only its own observation; during updates the critic sees
//! the global state. Per epoch the trainer
//!
//! 1. rolls out one episode with the current (stochastic) policies,
//! 2. stores it in the replay buffer `D`,
//! 3. sweeps "each timestep t in each episode in batch D" computing the
//!    TD target `y_t = r_t + γ V_φ(s_{t+1}) − V_ψ(s_t)`,
//! 4. applies MAPG updates to every actor and an `‖y‖²` update to the
//!    critic (one Adam step per timestep sample, which with the paper's
//!    learning rates 1e-4/1e-5 gives the convergence timescale of Fig. 3),
//! 5. periodically syncs the target network `φ ← ψ`.
//!
//! The update sweep is the **minibatch form** of Algorithm 1's lines
//! 12–16: the target `φ`, critic `ψ` and every actor `θ_n` are frozen
//! while all TD targets and gradients of the batch are computed, then the
//! per-sample Adam steps are applied in a deterministic fixed order
//! (agents in agent order, then the critic, sample by sample). Freezing
//! the gradient phase is what lets the whole sweep run as flat batched
//! circuit queues ([`UpdateEngine::Batched`], the default) while staying
//! **bit-identical** to the one-circuit-at-a-time reference
//! ([`UpdateEngine::Serial`]) — the engines only change how the gradients
//! are computed, never which updates are applied.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qmarl_env::metrics::{EpisodeMetrics, MetricsAccumulator, MetricsMean};
use qmarl_env::multi_agent::MultiAgentEnv;
use qmarl_env::vector::{ReplicatedVecEnv, SeedableEnv};
use qmarl_neural::optim::Adam;
use qmarl_neural::prelude::entropy;
use qmarl_runtime::rollout::{collect_episodes, derive_seed, RolloutConfig, WorkerEnv};
use qmarl_runtime::vec_rollout::collect_episodes_vec;

use qmarl_vqc::grad::Jacobian;

use crate::checkpoint::TrainerCheckpoint;
use crate::config::TrainConfig;
use crate::error::CoreError;
use crate::policy::{select_action, Actor};
use crate::replay::{Episode, ReplayBuffer, Transition};
use crate::value::Critic;
use crate::vec_policy::ActorsVecPolicy;

/// Which implementation drives the update sweep's gradient phase. Both
/// engines apply identical updates in identical order — the batched
/// engine is property-tested bit-identical to the serial reference —
/// so the choice is purely a throughput knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateEngine {
    /// One circuit at a time through the single-sample model paths (the
    /// reference implementation, and the baseline of
    /// `benches/train_update.rs`).
    Serial,
    /// Every (transition × agent) circuit of the sweep collected into
    /// flat prebound work queues ([`Actor::policy_gradients_batch`],
    /// [`Critic::values_with_gradients_batch`]).
    #[default]
    Batched,
}

/// One epoch's record: the quantities Fig. 3 plots, plus diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Metrics of the training episode rolled out this epoch.
    pub metrics: EpisodeMetrics,
    /// Mean squared TD error over the update sweep.
    pub critic_loss: f64,
    /// Mean policy entropy over the episode (exploration diagnostic).
    pub mean_entropy: f64,
}

/// The per-epoch history of a training run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainingHistory {
    records: Vec<EpochRecord>,
}

impl TrainingHistory {
    /// All records, epoch order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Appends an epoch record (used by the trainers).
    pub(crate) fn push_record(&mut self, record: EpochRecord) {
        self.records.push(record);
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` before the first epoch.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean total reward over the last `n` epochs (the "converged reward"
    /// the paper quotes per framework).
    pub fn final_reward(&self, n: usize) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let tail = &self.records[self.records.len().saturating_sub(n)..];
        Some(tail.iter().map(|r| r.metrics.total_reward).sum::<f64>() / tail.len() as f64)
    }

    /// Mean of an arbitrary metric over the last `n` epochs.
    pub fn final_metric<F: Fn(&EpochRecord) -> f64>(&self, n: usize, f: F) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let tail = &self.records[self.records.len().saturating_sub(n)..];
        Some(tail.iter().map(f).sum::<f64>() / tail.len() as f64)
    }

    /// CSV with one row per epoch (the Fig. 3 series).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "epoch,total_reward,avg_queue,empty_ratio,overflow_ratio,critic_loss,mean_entropy\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                r.epoch,
                r.metrics.total_reward,
                r.metrics.avg_queue,
                r.metrics.empty_ratio,
                r.metrics.overflow_ratio,
                r.critic_loss,
                r.mean_entropy,
            ));
        }
        out
    }
}

/// The CTDE trainer: environment + N actors + centralized critic + target.
pub struct CtdeTrainer<E: MultiAgentEnv> {
    env: E,
    actors: Vec<Box<dyn Actor>>,
    critic: Box<dyn Critic>,
    target: Box<dyn Critic>,
    actor_opts: Vec<Adam>,
    critic_opt: Adam,
    replay: ReplayBuffer,
    config: TrainConfig,
    rng: StdRng,
    history: TrainingHistory,
    epoch: usize,
    /// Completed parallel-collection rounds; advances the base seed so
    /// successive [`CtdeTrainer::rollout_parallel`] calls explore
    /// different episodes, deterministically.
    parallel_rounds: u64,
    /// How the update sweep computes its gradients (default: batched).
    update_engine: UpdateEngine,
}

impl<E: MultiAgentEnv> CtdeTrainer<E> {
    /// Assembles a trainer, validating that the actors/critic fit the
    /// environment's shapes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on any shape mismatch or bad
    /// hyper-parameter.
    pub fn new(
        env: E,
        actors: Vec<Box<dyn Actor>>,
        critic: Box<dyn Critic>,
        config: TrainConfig,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        if actors.len() != env.n_agents() {
            return Err(CoreError::InvalidConfig(format!(
                "environment has {} agents but {} actors were supplied",
                env.n_agents(),
                actors.len()
            )));
        }
        for (n, a) in actors.iter().enumerate() {
            if a.obs_dim() != env.obs_dim() {
                return Err(CoreError::InvalidConfig(format!(
                    "actor {n} expects {}-dim observations, environment emits {}",
                    a.obs_dim(),
                    env.obs_dim()
                )));
            }
            if a.n_actions() != env.n_actions() {
                return Err(CoreError::InvalidConfig(format!(
                    "actor {n} has {} actions, environment needs {}",
                    a.n_actions(),
                    env.n_actions()
                )));
            }
        }
        if critic.state_dim() != env.state_dim() {
            return Err(CoreError::InvalidConfig(format!(
                "critic expects {}-dim states, environment emits {}",
                critic.state_dim(),
                env.state_dim()
            )));
        }
        let actor_opts = actors
            .iter()
            .map(|a| Adam::new(config.lr_actor, a.param_count()))
            .collect();
        let critic_opt = Adam::new(config.lr_critic, critic.param_count());
        let target = critic.clone_box();
        let replay = ReplayBuffer::new(config.replay_capacity);
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(CtdeTrainer {
            env,
            actors,
            critic,
            target,
            actor_opts,
            critic_opt,
            replay,
            config,
            rng,
            history: TrainingHistory::default(),
            epoch: 0,
            parallel_rounds: 0,
            update_engine: UpdateEngine::default(),
        })
    }

    /// Selects the update-sweep engine (default:
    /// [`UpdateEngine::Batched`]). Switching engines mid-run is safe:
    /// they produce bit-identical updates.
    pub fn set_update_engine(&mut self, engine: UpdateEngine) {
        self.update_engine = engine;
    }

    /// The active update-sweep engine.
    pub fn update_engine(&self) -> UpdateEngine {
        self.update_engine
    }

    /// The training history so far.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// The actors (decentralized policies).
    pub fn actors(&self) -> &[Box<dyn Actor>] {
        &self.actors
    }

    /// The live critic `ψ`.
    pub fn critic(&self) -> &dyn Critic {
        self.critic.as_ref()
    }

    /// The environment.
    pub fn env_mut(&mut self) -> &mut E {
        &mut self.env
    }

    /// Epochs completed.
    pub fn epochs_done(&self) -> usize {
        self.epoch
    }

    /// Rolls out one episode with the current policies. Stochastic action
    /// sampling when `deterministic` is `false` (training); argmax when
    /// `true` (the paper's execution rule).
    ///
    /// # Errors
    ///
    /// Propagates environment and policy errors.
    pub fn rollout(
        &mut self,
        deterministic: bool,
    ) -> Result<(Episode, EpisodeMetrics, f64), CoreError> {
        let (mut obs, mut state) = self.env.reset();
        let mut episode = Episode::new();
        let mut acc = MetricsAccumulator::new();
        let mut entropy_sum = 0.0;
        let mut entropy_n = 0usize;
        loop {
            let mut actions = Vec::with_capacity(self.actors.len());
            for (n, actor) in self.actors.iter().enumerate() {
                let probs = actor.probs(&obs[n])?;
                entropy_sum += entropy(&probs);
                entropy_n += 1;
                actions.push(select_action(&probs, deterministic, &mut self.rng));
            }
            let out = self.env.step(&actions)?;
            acc.record_step(
                out.reward,
                &out.info.queue_levels,
                &out.info.cloud_empty,
                &out.info.cloud_full,
            );
            episode.push(Transition {
                state: state.clone(),
                observations: obs.clone(),
                actions,
                reward: out.reward,
                next_state: out.state.clone(),
                next_observations: out.observations.clone(),
                done: out.done,
            });
            obs = out.observations;
            state = out.state;
            if out.done {
                break;
            }
        }
        let mean_entropy = if entropy_n == 0 {
            0.0
        } else {
            entropy_sum / entropy_n as f64
        };
        Ok((episode, acc.finish(), mean_entropy))
    }

    /// One full epoch: rollout, store, update, maybe sync target.
    ///
    /// # Errors
    ///
    /// Propagates environment and model errors.
    pub fn run_epoch(&mut self) -> Result<EpochRecord, CoreError> {
        let (episode, metrics, mean_entropy) = self.rollout(false)?;
        self.replay.push(episode);
        let critic_loss = self.update()?;
        self.epoch += 1;
        if self.epoch.is_multiple_of(self.config.target_update_period) {
            self.target.set_params(&self.critic.params())?;
        }
        let record = EpochRecord {
            epoch: self.epoch - 1,
            metrics,
            critic_loss,
            mean_entropy,
        };
        self.history.records.push(record);
        Ok(record)
    }

    /// Trains for `epochs` epochs, appending to the history.
    ///
    /// # Errors
    ///
    /// Propagates the first epoch error.
    pub fn train(&mut self, epochs: usize) -> Result<&TrainingHistory, CoreError> {
        for _ in 0..epochs {
            self.run_epoch()?;
        }
        Ok(&self.history)
    }

    /// Lines 12–16 of Algorithm 1: sweep the batch, one Adam step per
    /// timestep sample. Returns the mean squared TD error.
    fn update(&mut self) -> Result<f64, CoreError> {
        self.update_sweep(self.config.batch_episodes)
    }

    /// One update sweep over the most recent `batch_episodes` episodes of
    /// the replay buffer, without rolling anything out — lines 12–16 of
    /// Algorithm 1 in minibatch form. Returns the mean squared TD error.
    ///
    /// **Gradient phase (frozen parameters).** All `V_φ(s')` targets, all
    /// `(V_ψ(s), ∇_ψ V)` pairs and every agent's MAPG gradients are
    /// evaluated under the parameters the sweep started with. Under
    /// [`UpdateEngine::Batched`] each of those collections is one flat
    /// batched runtime call (prebound adjoint lane slabs for quantum
    /// models); under [`UpdateEngine::Serial`] they are per-sample model
    /// calls producing bit-identical values.
    ///
    /// **Reduction phase (fixed order).** One Adam step per timestep
    /// sample, actors in agent order then the critic, in sweep order —
    /// identical under both engines by construction.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn update_sweep(&mut self, batch_episodes: usize) -> Result<f64, CoreError> {
        let gamma = self.config.gamma;
        let beta = self.config.entropy_coef;
        let episodes: Vec<Episode> = self.replay.recent(batch_episodes).cloned().collect();
        let transitions: Vec<&Transition> =
            episodes.iter().flat_map(|ep| ep.transitions()).collect();
        if transitions.is_empty() {
            return Ok(0.0);
        }

        // The target network φ is frozen for the whole sweep, so every
        // V_φ(s') of the batch is computed up front in one batched
        // runtime call (identical under both engines).
        let next_states: Vec<Vec<f64>> =
            transitions.iter().map(|tr| tr.next_state.clone()).collect();
        let v_next_all = self.target.values_batch(&next_states)?;

        // Critic gradient phase: (V_ψ(s), ∇_ψ V) per transition under the
        // frozen live critic.
        let critic_evals: Vec<(f64, Jacobian)> = match self.update_engine {
            UpdateEngine::Batched => {
                let states: Vec<Vec<f64>> = transitions.iter().map(|tr| tr.state.clone()).collect();
                self.critic.values_with_gradients_batch(&states)?
            }
            UpdateEngine::Serial => transitions
                .iter()
                .map(|tr| {
                    let (v, g) = self.critic.value_with_gradient(&tr.state)?;
                    Ok((v, Jacobian::from_row(g)))
                })
                .collect::<Result<_, CoreError>>()?,
        };

        // y_t = r + γ V_φ(s') − V_ψ(s): TD error = advantage, in sweep
        // order (also the loss the epoch reports).
        let ys: Vec<f64> = transitions
            .iter()
            .zip(&critic_evals)
            .zip(&v_next_all)
            .map(|((tr, (v_s, _)), &v_next)| tr.reward + gamma * v_next - v_s)
            .collect();

        // Actor gradient phase: each agent's whole (transition × circuit)
        // collection as one queue under its frozen policy.
        let actor_grads: Vec<Vec<Vec<f64>>> = self
            .actors
            .iter()
            .enumerate()
            .map(|(n, actor)| match self.update_engine {
                UpdateEngine::Batched => {
                    let obs_n: Vec<Vec<f64>> = transitions
                        .iter()
                        .map(|tr| tr.observations[n].clone())
                        .collect();
                    let act_n: Vec<usize> = transitions.iter().map(|tr| tr.actions[n]).collect();
                    actor.policy_gradients_batch(&obs_n, &act_n, &ys, beta)
                }
                UpdateEngine::Serial => transitions
                    .iter()
                    .zip(&ys)
                    .map(|(tr, &y)| {
                        actor.policy_gradient_with_entropy(
                            &tr.observations[n],
                            tr.actions[n],
                            y,
                            beta,
                        )
                    })
                    .collect(),
            })
            .collect::<Result<_, CoreError>>()?;

        // Deterministic fixed-order reduction: one Adam step per timestep
        // sample — actors in agent order (descend −y·∇log π_θn plus the
        // optional entropy bonus), then the critic (descend
        // ∇ψ‖y‖² = −2 y ∇ψ V_ψ(s) through one reused scratch buffer).
        let mut scratch = vec![0.0; self.critic.param_count()];
        let mut loss_sum = 0.0;
        for (t, ((_, critic_jac), &y)) in critic_evals.iter().zip(&ys).enumerate() {
            loss_sum += y * y;
            for (n, actor) in self.actors.iter_mut().enumerate() {
                let mut params = actor.params();
                self.actor_opts[n].step(&mut params, &actor_grads[n][t]);
                actor.set_params(&params)?;
            }
            critic_jac.vjp_into(&[-2.0 * y], &mut scratch);
            let mut params = self.critic.params();
            self.critic_opt.step(&mut params, &scratch);
            self.critic.set_params(&params)?;
        }
        Ok(loss_sum / transitions.len() as f64)
    }

    /// Evaluates the current policies without learning: `episodes`
    /// deterministic (argmax) rollouts, averaged.
    ///
    /// # Errors
    ///
    /// Propagates environment and policy errors.
    pub fn evaluate(&mut self, episodes: usize) -> Result<EpisodeMetrics, CoreError> {
        let mut agg = qmarl_env::metrics::MetricsMean::new();
        for _ in 0..episodes {
            let (_, m, _) = self.rollout(true)?;
            agg.add(&m);
        }
        agg.mean()
            .ok_or_else(|| CoreError::InvalidConfig("evaluate needs at least one episode".into()))
    }

    /// Captures the trainer's **complete optimisation state** — see
    /// [`TrainerCheckpoint`] for what that includes and the resume
    /// contract. `label` is a free-form tag (usually the sweep cell name).
    pub fn capture_state(&self, label: &str) -> TrainerCheckpoint {
        TrainerCheckpoint {
            label: label.to_string(),
            seed: self.config.seed,
            epoch: self.epoch,
            parallel_rounds: self.parallel_rounds,
            rng_state: self.rng.state(),
            actor_params: self.actors.iter().map(|a| a.params()).collect(),
            critic_params: self.critic.params(),
            target_params: self.target.params(),
            actor_opts: self.actor_opts.iter().map(Adam::state).collect(),
            critic_opt: self.critic_opt.state(),
            replay: self.replay.recent(self.replay.len()).cloned().collect(),
            history: self.history.clone(),
        }
    }

    /// Restores a [`TrainerCheckpoint`] into this trainer, which must be
    /// **freshly built with the same configuration** that produced the
    /// checkpoint. After restoring, continued training on the vectorized
    /// or parallel collection surfaces is bit-identical to a run that was
    /// never interrupted (the serial [`CtdeTrainer::rollout`] surface
    /// additionally depends on live environment state, which a checkpoint
    /// does not carry).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the checkpoint was taken
    /// under a different seed or its shapes (actor count, parameter and
    /// moment lengths) do not match this trainer's models.
    pub fn restore_state(&mut self, ckpt: &TrainerCheckpoint) -> Result<(), CoreError> {
        if ckpt.seed != self.config.seed {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint was captured under seed {} but this trainer is seeded {}; \
                 resuming would silently diverge",
                ckpt.seed, self.config.seed
            )));
        }
        if ckpt.actor_params.len() != self.actors.len()
            || ckpt.actor_opts.len() != self.actors.len()
        {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint holds {} actors / {} actor optimizers, trainer has {}",
                ckpt.actor_params.len(),
                ckpt.actor_opts.len(),
                self.actors.len()
            )));
        }
        // Every length is validated before anything is mutated, so a
        // corrupt checkpoint can never leave the trainer half-restored.
        for (n, (actor, (params, opt))) in self
            .actors
            .iter()
            .zip(ckpt.actor_params.iter().zip(&ckpt.actor_opts))
            .enumerate()
        {
            if params.len() != actor.param_count() {
                return Err(CoreError::InvalidConfig(format!(
                    "checkpoint actor {n} holds {} parameters, model has {}",
                    params.len(),
                    actor.param_count()
                )));
            }
            if opt.m.len() != actor.param_count() || opt.v.len() != actor.param_count() {
                return Err(CoreError::InvalidConfig(format!(
                    "checkpoint actor {n} optimizer holds {} moments, model has {} parameters",
                    opt.m.len(),
                    actor.param_count()
                )));
            }
        }
        let critic_len = self.critic.param_count();
        if ckpt.critic_params.len() != critic_len || ckpt.target_params.len() != critic_len {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint critic/target hold {}/{} parameters, model has {critic_len}",
                ckpt.critic_params.len(),
                ckpt.target_params.len()
            )));
        }
        if ckpt.critic_opt.m.len() != critic_len || ckpt.critic_opt.v.len() != critic_len {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint critic optimizer holds {}/{} first/second moments, \
                 model has {critic_len} parameters",
                ckpt.critic_opt.m.len(),
                ckpt.critic_opt.v.len(),
            )));
        }
        for (actor, params) in self.actors.iter_mut().zip(&ckpt.actor_params) {
            actor.set_params(params)?;
        }
        self.critic.set_params(&ckpt.critic_params)?;
        self.target.set_params(&ckpt.target_params)?;
        for (opt, state) in self.actor_opts.iter_mut().zip(&ckpt.actor_opts) {
            opt.set_state(state);
        }
        self.critic_opt.set_state(&ckpt.critic_opt);
        self.replay = ReplayBuffer::new(self.config.replay_capacity);
        for ep in &ckpt.replay {
            self.replay.push(ep.clone());
        }
        self.history = ckpt.history.clone();
        self.epoch = ckpt.epoch;
        self.parallel_rounds = ckpt.parallel_rounds;
        self.rng = StdRng::from_state(ckpt.rng_state);
        Ok(())
    }

    /// Shared validation for the multi-episode epoch surfaces.
    fn check_epoch_size(&self, episodes_per_epoch: usize) -> Result<(), CoreError> {
        if episodes_per_epoch == 0 {
            return Err(CoreError::InvalidConfig(
                "parallel epoch needs at least one episode".into(),
            ));
        }
        if episodes_per_epoch > self.config.replay_capacity {
            return Err(CoreError::InvalidConfig(format!(
                "episodes_per_epoch {episodes_per_epoch} exceeds replay capacity {}: \
                 collected episodes would be evicted before the update sweep",
                self.config.replay_capacity
            )));
        }
        Ok(())
    }

    /// Absorbs one multi-episode collection: replay push, update sweep,
    /// target sync, history record. Shared by the per-episode-parallel
    /// and vectorized epoch surfaces so their training semantics cannot
    /// drift apart.
    fn absorb_collected_epoch(
        &mut self,
        collected: Vec<(Episode, EpisodeMetrics, f64)>,
    ) -> Result<EpochRecord, CoreError> {
        let episodes_per_epoch = collected.len();
        let mut agg = MetricsMean::new();
        let mut entropy_sum = 0.0;
        for (episode, metrics, mean_entropy) in collected {
            agg.add(&metrics);
            entropy_sum += mean_entropy;
            self.replay.push(episode);
        }
        let metrics = agg.mean().expect("episodes_per_epoch > 0");
        // Sweep everything this epoch collected (or the configured batch,
        // whichever is larger) — a parallel epoch must train on the
        // episodes it just paid to roll out, not only the newest one.
        let critic_loss = self.update_sweep(episodes_per_epoch.max(self.config.batch_episodes))?;
        self.epoch += 1;
        if self.epoch.is_multiple_of(self.config.target_update_period) {
            self.target.set_params(&self.critic.params())?;
        }
        let record = EpochRecord {
            epoch: self.epoch - 1,
            metrics,
            critic_loss,
            mean_entropy: entropy_sum / episodes_per_epoch as f64,
        };
        self.history.records.push(record);
        Ok(record)
    }
}

/// Converts a runtime trace into the trainer's replay/metric triple.
fn trace_into_episode(
    trace: qmarl_runtime::rollout::EpisodeTrace,
) -> (Episode, EpisodeMetrics, f64) {
    let metrics = trace.metrics();
    let mean_entropy = trace.mean_aux();
    let mut episode = Episode::new();
    for step in trace.steps {
        episode.push(Transition {
            state: step.state,
            observations: step.observations,
            actions: step.actions,
            reward: step.reward,
            next_state: step.next_state,
            next_observations: step.next_observations,
            done: step.done,
        });
    }
    (episode, metrics, mean_entropy)
}

/// The parallel collection surface, available when the environment can
/// hand each rollout worker a reseedable private copy.
impl<E: WorkerEnv> CtdeTrainer<E> {
    /// Rolls out `n_episodes` under the **frozen current policies** with
    /// the runtime's parallel rollout workers (`workers = 0` auto-detects).
    ///
    /// Episode randomness derives from `(config.seed, collection round,
    /// episode index)` — see `qmarl_runtime::rollout` for the contract —
    /// so results are independent of `workers` and reproducible run to
    /// run. Returns `(episode, metrics, mean policy entropy)` per episode
    /// in episode order.
    ///
    /// # Errors
    ///
    /// Propagates environment and policy errors.
    pub fn rollout_parallel(
        &mut self,
        n_episodes: usize,
        workers: usize,
        deterministic: bool,
    ) -> Result<Vec<(Episode, EpisodeMetrics, f64)>, CoreError> {
        let base_seed = derive_seed(self.config.seed, 0xC0_11EC7, self.parallel_rounds);
        self.parallel_rounds += 1;
        let actors = &self.actors;
        let traces = collect_episodes(
            &self.env,
            |_episode| {
                move |obs: &[Vec<f64>], rng: &mut StdRng| -> Result<(Vec<usize>, f64), CoreError> {
                    let mut actions = Vec::with_capacity(actors.len());
                    let mut entropy_sum = 0.0;
                    for (n, actor) in actors.iter().enumerate() {
                        let probs = actor.probs(&obs[n])?;
                        entropy_sum += entropy(&probs);
                        actions.push(select_action(&probs, deterministic, rng));
                    }
                    Ok((actions, entropy_sum / actors.len() as f64))
                }
            },
            n_episodes,
            &RolloutConfig { workers, base_seed },
        )
        .map_err(CoreError::from)?;

        Ok(traces.into_iter().map(trace_into_episode).collect())
    }

    /// One parallel epoch: collect `episodes_per_epoch` episodes
    /// concurrently, feed them all into the replay buffer, then run the
    /// usual update sweep over the enlarged batch (the paper's Algorithm 1
    /// with line 8 amortised across workers). Records one epoch entry
    /// whose metrics average the collected episodes.
    ///
    /// # Errors
    ///
    /// Propagates environment and model errors.
    pub fn run_epoch_parallel(
        &mut self,
        episodes_per_epoch: usize,
        workers: usize,
    ) -> Result<EpochRecord, CoreError> {
        self.check_epoch_size(episodes_per_epoch)?;
        let collected = self.rollout_parallel(episodes_per_epoch, workers, false)?;
        self.absorb_collected_epoch(collected)
    }

    /// Trains for `epochs` parallel epochs (see
    /// [`CtdeTrainer::run_epoch_parallel`]).
    ///
    /// # Errors
    ///
    /// Propagates the first epoch error.
    pub fn train_parallel(
        &mut self,
        epochs: usize,
        episodes_per_epoch: usize,
        workers: usize,
    ) -> Result<&TrainingHistory, CoreError> {
        for _ in 0..epochs {
            self.run_epoch_parallel(episodes_per_epoch, workers)?;
        }
        Ok(&self.history)
    }

    /// Parallel deterministic evaluation: like [`CtdeTrainer::evaluate`]
    /// but collecting the argmax rollouts across workers. Does not mutate
    /// policies or the replay buffer.
    ///
    /// # Errors
    ///
    /// Propagates environment and policy errors, and rejects
    /// `episodes == 0`.
    pub fn evaluate_parallel(
        &mut self,
        episodes: usize,
        workers: usize,
    ) -> Result<EpisodeMetrics, CoreError> {
        let mut agg = MetricsMean::new();
        for (_, m, _) in self.rollout_parallel(episodes, workers, true)? {
            agg.add(&m);
        }
        agg.mean()
            .ok_or_else(|| CoreError::InvalidConfig("evaluate needs at least one episode".into()))
    }
}

/// The vectorized collection surface: all in-flight episodes advance in
/// lockstep over a [`ReplicatedVecEnv`] and every tick's `lanes × agents`
/// policy evaluations reach the batched circuit executor as one flat
/// forward batch (see `qmarl_runtime::vec_rollout`).
///
/// Episode seeding is identical to the per-episode parallel surface, so
/// [`CtdeTrainer::rollout_vec`] returns **bit-identical** episodes to
/// [`CtdeTrainer::rollout_parallel`] from the same trainer state — the
/// two engines are interchangeable mid-run.
impl<E: SeedableEnv + Clone + Send + Sync> CtdeTrainer<E> {
    /// Rolls out `n_episodes` under the frozen current policies on a
    /// `lanes`-wide vector environment (waves of `lanes` episodes in
    /// lockstep). Returns `(episode, metrics, mean policy entropy)` per
    /// episode in episode order, exactly like
    /// [`CtdeTrainer::rollout_parallel`].
    ///
    /// # Errors
    ///
    /// Propagates environment and policy errors, and rejects `lanes == 0`.
    pub fn rollout_vec(
        &mut self,
        n_episodes: usize,
        lanes: usize,
        deterministic: bool,
    ) -> Result<Vec<(Episode, EpisodeMetrics, f64)>, CoreError> {
        let base_seed = derive_seed(self.config.seed, 0xC0_11EC7, self.parallel_rounds);
        self.parallel_rounds += 1;
        let lanes = lanes.min(n_episodes.max(1));
        let mut venv = ReplicatedVecEnv::new(&self.env, lanes)?;
        let mut policy = ActorsVecPolicy::new(&self.actors, self.env.obs_dim(), deterministic);
        let traces = collect_episodes_vec(
            &mut venv,
            &mut policy,
            n_episodes,
            &RolloutConfig {
                workers: 0,
                base_seed,
            },
        )
        .map_err(CoreError::from)?;
        Ok(traces.into_iter().map(trace_into_episode).collect())
    }

    /// One vectorized epoch: collect `episodes_per_epoch` episodes in
    /// lockstep waves of `lanes`, then run the shared update sweep — the
    /// vectorized twin of [`CtdeTrainer::run_epoch_parallel`].
    ///
    /// # Errors
    ///
    /// Propagates environment and model errors.
    pub fn run_epoch_vec(
        &mut self,
        episodes_per_epoch: usize,
        lanes: usize,
    ) -> Result<EpochRecord, CoreError> {
        self.check_epoch_size(episodes_per_epoch)?;
        let collected = self.rollout_vec(episodes_per_epoch, lanes, false)?;
        self.absorb_collected_epoch(collected)
    }

    /// Trains for `epochs` vectorized epochs (see
    /// [`CtdeTrainer::run_epoch_vec`]).
    ///
    /// # Errors
    ///
    /// Propagates the first epoch error.
    pub fn train_vec(
        &mut self,
        epochs: usize,
        episodes_per_epoch: usize,
        lanes: usize,
    ) -> Result<&TrainingHistory, CoreError> {
        for _ in 0..epochs {
            self.run_epoch_vec(episodes_per_epoch, lanes)?;
        }
        Ok(&self.history)
    }

    /// Vectorized deterministic evaluation: like
    /// [`CtdeTrainer::evaluate_parallel`] but collected in lockstep
    /// waves. Does not mutate policies or the replay buffer.
    ///
    /// # Errors
    ///
    /// Propagates environment and policy errors, and rejects
    /// `episodes == 0`.
    pub fn evaluate_vec(
        &mut self,
        episodes: usize,
        lanes: usize,
    ) -> Result<EpisodeMetrics, CoreError> {
        let mut agg = MetricsMean::new();
        for (_, m, _) in self.rollout_vec(episodes, lanes, true)? {
            agg.add(&m);
        }
        agg.mean()
            .ok_or_else(|| CoreError::InvalidConfig("evaluate needs at least one episode".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::policy::{ClassicalActor, QuantumActor};
    use crate::value::{ClassicalCritic, QuantumCritic};
    use qmarl_env::single_hop::{EnvConfig, SingleHopEnv};

    fn small_env(seed: u64) -> SingleHopEnv {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = 15;
        SingleHopEnv::new(cfg, seed).unwrap()
    }

    fn small_train_config() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            target_update_period: 2,
            ..TrainConfig::paper_default()
        }
    }

    fn quantum_setup(seed: u64) -> CtdeTrainer<SingleHopEnv> {
        let env = small_env(seed);
        let actors: Vec<Box<dyn Actor>> = (0..4)
            .map(|n| Box::new(QuantumActor::new(4, 4, 4, 50, seed + n).unwrap()) as Box<dyn Actor>)
            .collect();
        let critic = Box::new(QuantumCritic::new(4, 16, 50, seed + 100).unwrap());
        CtdeTrainer::new(env, actors, critic, small_train_config()).unwrap()
    }

    #[test]
    fn trainer_validates_shapes() {
        let env = small_env(0);
        let actors: Vec<Box<dyn Actor>> = (0..3)
            .map(|n| Box::new(ClassicalActor::new(&[4, 5, 4], n).unwrap()) as Box<dyn Actor>)
            .collect();
        let critic = Box::new(ClassicalCritic::new(&[16, 2, 1], 0).unwrap());
        // 3 actors for a 4-agent environment.
        assert!(CtdeTrainer::new(env, actors, critic, small_train_config()).is_err());

        let env = small_env(0);
        let actors: Vec<Box<dyn Actor>> = (0..4)
            .map(|n| Box::new(ClassicalActor::new(&[3, 5, 4], n).unwrap()) as Box<dyn Actor>)
            .collect();
        let critic = Box::new(ClassicalCritic::new(&[16, 2, 1], 0).unwrap());
        // Wrong obs dim.
        assert!(CtdeTrainer::new(env, actors, critic, small_train_config()).is_err());

        let env = small_env(0);
        let actors: Vec<Box<dyn Actor>> = (0..4)
            .map(|n| Box::new(ClassicalActor::new(&[4, 5, 4], n).unwrap()) as Box<dyn Actor>)
            .collect();
        let critic = Box::new(ClassicalCritic::new(&[12, 2, 1], 0).unwrap());
        // Wrong state dim.
        assert!(CtdeTrainer::new(env, actors, critic, small_train_config()).is_err());
    }

    #[test]
    fn rollout_produces_full_episode() {
        let mut t = quantum_setup(1);
        let (ep, m, ent) = t.rollout(false).unwrap();
        assert_eq!(ep.len(), 15);
        assert_eq!(m.len, 15);
        assert!(m.total_reward <= 0.0);
        assert!(ent > 0.0 && ent <= (4.0f64).ln() + 1e-9);
        let last = ep.transitions().last().unwrap();
        assert!(last.done);
        assert!(ep.transitions().iter().rev().skip(1).all(|tr| !tr.done));
    }

    #[test]
    fn epoch_updates_parameters_and_history() {
        let mut t = quantum_setup(2);
        let before: Vec<Vec<f64>> = t.actors().iter().map(|a| a.params()).collect();
        let critic_before = t.critic().params();
        let rec = t.run_epoch().unwrap();
        assert_eq!(rec.epoch, 0);
        assert!(rec.critic_loss > 0.0);
        let after: Vec<Vec<f64>> = t.actors().iter().map(|a| a.params()).collect();
        for (b, a) in before.iter().zip(&after) {
            assert!(
                b.iter().zip(a).any(|(x, y)| (x - y).abs() > 1e-12),
                "actor params must move"
            );
        }
        assert!(
            critic_before
                .iter()
                .zip(&t.critic().params())
                .any(|(x, y)| (x - y).abs() > 1e-12),
            "critic params must move"
        );
        assert_eq!(t.history().len(), 1);
        assert_eq!(t.epochs_done(), 1);
    }

    #[test]
    fn target_network_syncs_on_period() {
        let mut t = quantum_setup(3);
        t.run_epoch().unwrap(); // epoch 1: no sync (period 2)
        let target_params = t.target.params();
        let critic_params = t.critic.params();
        assert!(target_params
            .iter()
            .zip(&critic_params)
            .any(|(a, b)| (a - b).abs() > 1e-12));
        t.run_epoch().unwrap(); // epoch 2: sync
        assert_eq!(t.target.params(), t.critic.params());
    }

    #[test]
    fn training_is_reproducible() {
        let run = |seed: u64| {
            let mut cfg = small_train_config();
            cfg.seed = seed;
            let env = small_env(seed);
            let actors: Vec<Box<dyn Actor>> = (0..4)
                .map(|n| {
                    Box::new(ClassicalActor::new(&[4, 5, 4], seed + n).unwrap()) as Box<dyn Actor>
                })
                .collect();
            let critic = Box::new(ClassicalCritic::new(&[16, 2, 1], seed).unwrap());
            let mut t = CtdeTrainer::new(env, actors, critic, cfg).unwrap();
            t.train(3).unwrap();
            t.history()
                .records()
                .iter()
                .map(|r| r.metrics.total_reward)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn history_final_reward() {
        let mut t = quantum_setup(4);
        t.train(3).unwrap();
        let h = t.history();
        assert_eq!(h.len(), 3);
        let f = h.final_reward(2).unwrap();
        let manual: f64 = h.records()[1..]
            .iter()
            .map(|r| r.metrics.total_reward)
            .sum::<f64>()
            / 2.0;
        assert!((f - manual).abs() < 1e-12);
        assert!(h.final_metric(2, |r| r.metrics.avg_queue).is_some());
        assert!(TrainingHistory::default().final_reward(5).is_none());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = quantum_setup(6);
        t.train(2).unwrap();
        let csv = t.history().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("epoch,total_reward"));
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn rollout_parallel_is_worker_count_invariant() {
        let collect = |workers: usize| {
            let mut t = quantum_setup(11);
            t.rollout_parallel(4, workers, false)
                .unwrap()
                .into_iter()
                .map(|(ep, m, ent)| (ep, m.total_reward, ent))
                .collect::<Vec<_>>()
        };
        let reference = collect(1);
        assert_eq!(reference.len(), 4);
        for workers in [2, 8] {
            assert_eq!(collect(workers), reference, "workers={workers}");
        }
        // Episodes are full-length and distinct from one another.
        assert_eq!(reference[0].0.len(), 15);
        assert_ne!(reference[0].1, reference[1].1);
    }

    #[test]
    fn successive_parallel_rounds_differ_deterministically() {
        let mut t = quantum_setup(12);
        let a: Vec<f64> = t
            .rollout_parallel(2, 2, false)
            .unwrap()
            .iter()
            .map(|(_, m, _)| m.total_reward)
            .collect();
        let b: Vec<f64> = t
            .rollout_parallel(2, 2, false)
            .unwrap()
            .iter()
            .map(|(_, m, _)| m.total_reward)
            .collect();
        assert_ne!(a, b, "rounds must explore different episodes");
        // A fresh trainer replays the exact same sequence.
        let mut t2 = quantum_setup(12);
        let a2: Vec<f64> = t2
            .rollout_parallel(2, 2, false)
            .unwrap()
            .iter()
            .map(|(_, m, _)| m.total_reward)
            .collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn parallel_epoch_trains_and_records() {
        let mut t = quantum_setup(13);
        let before: Vec<f64> = t.critic().params();
        let rec = t.run_epoch_parallel(3, 2).unwrap();
        assert_eq!(rec.epoch, 0);
        assert!(rec.critic_loss > 0.0);
        assert!(rec.mean_entropy > 0.0);
        assert!(t
            .critic()
            .params()
            .iter()
            .zip(&before)
            .any(|(x, y)| (x - y).abs() > 1e-12));
        assert_eq!(t.history().len(), 1);
        assert!(t.run_epoch_parallel(0, 1).is_err());
    }

    #[test]
    fn evaluate_parallel_matches_shape_of_serial_evaluate() {
        let mut t = quantum_setup(14);
        let m = t.evaluate_parallel(3, 2).unwrap();
        assert!(m.total_reward <= 0.0);
        assert!(m.avg_queue >= 0.0);
        assert!(t.evaluate_parallel(0, 2).is_err());
    }

    #[test]
    fn rollout_vec_is_bit_identical_to_rollout_parallel() {
        // Same trainer seed, same round counter → the vectorized engine
        // must reproduce the per-episode engine exactly, for any lane
        // count, including partial final waves.
        let reference = {
            let mut t = quantum_setup(21);
            t.rollout_parallel(5, 1, false).unwrap()
        };
        for lanes in [1usize, 2, 5, 8] {
            let mut t = quantum_setup(21);
            let got = t.rollout_vec(5, lanes, false).unwrap();
            assert_eq!(got, reference, "lanes={lanes}");
        }
        // Deterministic (argmax) collection matches too.
        let mut a = quantum_setup(22);
        let mut b = quantum_setup(22);
        assert_eq!(
            a.rollout_vec(3, 2, true).unwrap(),
            b.rollout_parallel(3, 4, true).unwrap()
        );
    }

    #[test]
    fn rollout_vec_matches_rollout_parallel_under_sampled_backend() {
        // Stochastic backends opt out of the prebound fast path, but the
        // vectorized collector must still reproduce the per-episode
        // engine bit for bit: shot streams are content-addressed, never
        // positional.
        use qmarl_runtime::backend::ExecutionBackend;
        let sampled_setup = || {
            let backend = ExecutionBackend::Sampled { shots: 48, seed: 6 };
            let env = small_env(41);
            let actors: Vec<Box<dyn Actor>> = (0..4)
                .map(|n| {
                    Box::new(
                        QuantumActor::new(4, 4, 4, 50, 41 + n)
                            .unwrap()
                            .with_backend(backend.clone()),
                    ) as Box<dyn Actor>
                })
                .collect();
            let critic = Box::new(
                QuantumCritic::new(4, 16, 50, 141)
                    .unwrap()
                    .with_backend(backend),
            );
            CtdeTrainer::new(env, actors, critic, small_train_config()).unwrap()
        };
        let reference = sampled_setup().rollout_parallel(3, 2, false).unwrap();
        for lanes in [1usize, 3] {
            assert_eq!(
                sampled_setup().rollout_vec(3, lanes, false).unwrap(),
                reference,
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn rollout_vec_works_with_classical_actors() {
        // The per-agent fallback route drives the same collector.
        let env = small_env(23);
        let actors: Vec<Box<dyn Actor>> = (0..4)
            .map(|n| Box::new(ClassicalActor::new(&[4, 5, 4], 23 + n).unwrap()) as Box<dyn Actor>)
            .collect();
        let critic = Box::new(ClassicalCritic::new(&[16, 2, 1], 23).unwrap());
        let mut t = CtdeTrainer::new(env, actors, critic, small_train_config()).unwrap();
        let reference = {
            let env = small_env(23);
            let actors: Vec<Box<dyn Actor>> = (0..4)
                .map(|n| {
                    Box::new(ClassicalActor::new(&[4, 5, 4], 23 + n).unwrap()) as Box<dyn Actor>
                })
                .collect();
            let critic = Box::new(ClassicalCritic::new(&[16, 2, 1], 23).unwrap());
            let mut t = CtdeTrainer::new(env, actors, critic, small_train_config()).unwrap();
            t.rollout_parallel(3, 1, false).unwrap()
        };
        assert_eq!(t.rollout_vec(3, 3, false).unwrap(), reference);
    }

    #[test]
    fn vec_epoch_trains_and_records() {
        let mut t = quantum_setup(24);
        let before: Vec<f64> = t.critic().params();
        let rec = t.run_epoch_vec(3, 2).unwrap();
        assert_eq!(rec.epoch, 0);
        assert!(rec.critic_loss > 0.0);
        assert!(rec.mean_entropy > 0.0);
        assert!(t
            .critic()
            .params()
            .iter()
            .zip(&before)
            .any(|(x, y)| (x - y).abs() > 1e-12));
        assert_eq!(t.history().len(), 1);
        assert!(t.run_epoch_vec(0, 1).is_err());
    }

    #[test]
    fn vec_and_parallel_training_histories_match() {
        // Whole-epoch equivalence: same seeds, same updates, same curves.
        let mut a = quantum_setup(25);
        let mut b = quantum_setup(25);
        a.train_parallel(2, 3, 2).unwrap();
        b.train_vec(2, 3, 2).unwrap();
        assert_eq!(a.history(), b.history());
        assert_eq!(a.critic().params(), b.critic().params());
        for (x, y) in a.actors().iter().zip(b.actors()) {
            assert_eq!(x.params(), y.params());
        }
    }

    #[test]
    fn evaluate_vec_matches_shape_of_serial_evaluate() {
        let mut t = quantum_setup(26);
        let m = t.evaluate_vec(3, 2).unwrap();
        assert!(m.total_reward <= 0.0);
        assert!(m.avg_queue >= 0.0);
        assert!(t.evaluate_vec(0, 2).is_err());
    }

    #[test]
    fn batched_update_engine_matches_serial_bit_exactly() {
        // Same seed, both engines: identical histories and identical
        // final parameters, for quantum and classical stacks.
        let quantum = |engine: UpdateEngine| {
            let mut t = quantum_setup(31);
            t.set_update_engine(engine);
            t.train(2).unwrap();
            t
        };
        let a = quantum(UpdateEngine::Serial);
        let b = quantum(UpdateEngine::Batched);
        assert_eq!(a.history(), b.history());
        assert_eq!(a.critic().params(), b.critic().params());
        for (x, y) in a.actors().iter().zip(b.actors()) {
            assert_eq!(x.params(), y.params());
        }

        let classical = |engine: UpdateEngine| {
            let env = small_env(32);
            let actors: Vec<Box<dyn Actor>> = (0..4)
                .map(|n| {
                    Box::new(ClassicalActor::new(&[4, 5, 4], 32 + n).unwrap()) as Box<dyn Actor>
                })
                .collect();
            let critic = Box::new(ClassicalCritic::new(&[16, 2, 1], 32).unwrap());
            let mut t = CtdeTrainer::new(env, actors, critic, small_train_config()).unwrap();
            t.set_update_engine(engine);
            t.train(2).unwrap();
            t
        };
        let a = classical(UpdateEngine::Serial);
        let b = classical(UpdateEngine::Batched);
        assert_eq!(a.history(), b.history());
        assert_eq!(a.critic().params(), b.critic().params());
    }

    #[test]
    fn update_sweep_without_replay_is_a_no_op() {
        let mut t = quantum_setup(33);
        assert_eq!(t.update_sweep(4).unwrap(), 0.0);
        assert_eq!(t.update_engine(), UpdateEngine::Batched);
    }

    #[test]
    fn restored_trainer_resumes_vec_training_bit_identically() {
        // One uninterrupted 4-epoch run vs capture-at-2 + restore + 2 more:
        // identical histories and identical final parameters, assert_eq.
        let mut full = quantum_setup(51);
        full.train_vec(4, 2, 2).unwrap();

        let mut first = quantum_setup(51);
        first.train_vec(2, 2, 2).unwrap();
        let ckpt = first.capture_state("resume-test");
        drop(first);

        let mut resumed = quantum_setup(51);
        resumed.restore_state(&ckpt).unwrap();
        assert_eq!(resumed.epochs_done(), 2);
        resumed.train_vec(2, 2, 2).unwrap();
        assert_eq!(resumed.history(), full.history());
        assert_eq!(resumed.critic().params(), full.critic().params());
        for (a, b) in resumed.actors().iter().zip(full.actors()) {
            assert_eq!(a.params(), b.params());
        }
        assert_eq!(
            resumed.capture_state("end").replay,
            full.capture_state("end").replay
        );
    }

    #[test]
    fn restore_rejects_mismatched_checkpoints() {
        let mut t = quantum_setup(52);
        t.train_vec(1, 2, 2).unwrap();
        let ckpt = t.capture_state("x");

        // Different config seed: refused.
        let mut other = {
            let mut cfg = small_train_config();
            cfg.seed = 999;
            let env = small_env(52);
            let actors: Vec<Box<dyn Actor>> = (0..4)
                .map(|n| {
                    Box::new(QuantumActor::new(4, 4, 4, 50, 52 + n).unwrap()) as Box<dyn Actor>
                })
                .collect();
            let critic = Box::new(QuantumCritic::new(4, 16, 50, 152).unwrap());
            CtdeTrainer::new(env, actors, critic, cfg).unwrap()
        };
        assert!(other.restore_state(&ckpt).is_err());

        // Wrong actor count: refused.
        let mut short = ckpt.clone();
        short.actor_params.pop();
        short.actor_opts.pop();
        assert!(quantum_setup(52).restore_state(&short).is_err());

        // Wrong optimizer moment length: refused before any mutation.
        let mut bad_opt = ckpt.clone();
        bad_opt.actor_opts[0].m.pop();
        assert!(quantum_setup(52).restore_state(&bad_opt).is_err());

        // Truncated parameter vector on a *later* actor: refused, and the
        // earlier actors are left untouched (no partial restore).
        let mut bad_params = ckpt.clone();
        bad_params.actor_params[2].pop();
        let mut target = quantum_setup(52);
        let before: Vec<Vec<f64>> = target.actors().iter().map(|a| a.params()).collect();
        assert!(target.restore_state(&bad_params).is_err());
        let after: Vec<Vec<f64>> = target.actors().iter().map(|a| a.params()).collect();
        assert_eq!(before, after, "failed restore must not mutate the trainer");

        // Wrong critic moment length: refused.
        let mut bad_critic = ckpt;
        bad_critic.critic_opt.v.push(0.0);
        assert!(quantum_setup(52).restore_state(&bad_critic).is_err());
    }

    #[test]
    fn evaluate_runs_deterministically() {
        let mut t = quantum_setup(7);
        let a = t.evaluate(2).unwrap();
        assert!(a.total_reward <= 0.0);
        assert!(t.evaluate(0).is_err());
    }
}
