//! Critics: the centralized state-value function `V(s)` (Sec. III-A2).
//!
//! The CTDE trainer feeds the **global** state (every agent's observation
//! concatenated) to one centralized critic. The paper's quantum critic
//! keeps the register at 4 qubits regardless of agent count by folding the
//! state through the layered encoder ("the state encoding is used …
//! because the state size is larger than the size in observation"); the
//! [`NaiveQuantumCritic`] implements the qubit-hungry alternative the
//! paper argues against (one wire per state feature), used by the
//! qubit-scaling ablation.

use qmarl_neural::prelude::{Activation, Mlp};
use qmarl_runtime::backend::ExecutionBackend;
use qmarl_runtime::qnn::CompiledVqc;
use qmarl_vqc::grad::Jacobian;
use qmarl_vqc::prelude::{GradMethod, OutputHead, Readout, Vqc, VqcBuilder};

use crate::error::CoreError;

/// A trainable state-value estimator.
pub trait Critic: Send {
    /// Global-state dimensionality.
    fn state_dim(&self) -> usize;
    /// Number of trainable parameters.
    fn param_count(&self) -> usize;

    /// The value estimate `V(s)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad state vector.
    fn value(&self, state: &[f64]) -> Result<f64, CoreError>;

    /// Value estimates for a whole batch of states. The default walks
    /// [`Critic::value`] serially; quantum critics override it with the
    /// runtime's batched executor (how the trainer evaluates all TD
    /// targets of a minibatch at once).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad state vector.
    fn values_batch(&self, states: &[Vec<f64>]) -> Result<Vec<f64>, CoreError> {
        states.iter().map(|s| self.value(s)).collect()
    }

    /// The value and its parameter gradient `∇_ψ V(s)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad state vector.
    fn value_with_gradient(&self, state: &[f64]) -> Result<(f64, Vec<f64>), CoreError>;

    /// Values and full-parameter Jacobians for a whole batch of states
    /// under the current (frozen) parameters — the update sweep's critic
    /// surface. The default walks [`Critic::value_with_gradient`]
    /// serially, wrapping each gradient as a single-row Jacobian;
    /// quantum critics override it with the runtime's batched gradient
    /// engine. Either route is bit-identical to per-state
    /// [`Critic::value_with_gradient`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad state vector.
    fn values_with_gradients_batch(
        &self,
        states: &[Vec<f64>],
    ) -> Result<Vec<(f64, Jacobian)>, CoreError> {
        states
            .iter()
            .map(|s| {
                let (v, g) = self.value_with_gradient(s)?;
                Ok((v, Jacobian::from_row(g)))
            })
            .collect()
    }

    /// Snapshot of the flat parameter vector (used for the target network
    /// `φ ← ψ`).
    fn params(&self) -> Vec<f64>;

    /// Loads a flat parameter vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ParamLenMismatch`] on length mismatch.
    fn set_params(&mut self, params: &[f64]) -> Result<(), CoreError>;

    /// A boxed deep copy — how the trainer materialises the target
    /// network `φ` from the live critic `ψ`.
    fn clone_box(&self) -> Box<dyn Critic>;
}

/// The paper's quantum centralized critic: `state_dim` features folded
/// into `n_qubits` wires by the layered encoder, scalar mean-`⟨Z⟩` readout
/// with a trainable affine head.
///
/// Evaluation runs through the batched runtime ([`CompiledVqc`]); batch
/// value queries ([`Critic::values_batch`]) fan out over its executor.
#[derive(Debug, Clone)]
pub struct QuantumCritic {
    model: CompiledVqc,
    params: Vec<f64>,
    grad_method: GradMethod,
}

impl QuantumCritic {
    /// Builds the critic with a total trainable budget of `total_params`
    /// (circuit angles + 2 affine head parameters).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the budget cannot fit the
    /// head.
    pub fn new(
        n_qubits: usize,
        state_dim: usize,
        total_params: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if total_params <= 2 {
            return Err(CoreError::InvalidConfig(
                "critic budget must exceed the 2-parameter affine head".into(),
            ));
        }
        let model = VqcBuilder::new(n_qubits)
            .encoder_inputs(state_dim)
            .ansatz_params(total_params - 2)
            .readout(Readout::mean_z(n_qubits))
            .output_head(OutputHead::Affine)
            .build()?;
        let params = model.init_params(seed);
        Ok(QuantumCritic {
            model: CompiledVqc::new(model),
            params,
            grad_method: GradMethod::Adjoint,
        })
    }

    /// Overrides the gradient method (default: adjoint).
    pub fn with_grad_method(mut self, method: GradMethod) -> Self {
        self.grad_method = method;
        self
    }

    /// Overrides the execution backend (default:
    /// [`ExecutionBackend::Ideal`], bit-identical to not setting one).
    /// Under `Sampled`/`Noisy` the gradient method is forced to the
    /// parameter-shift rule (see [`crate::policy::QuantumActor`]).
    pub fn with_backend(mut self, backend: ExecutionBackend) -> Self {
        self.grad_method = backend.effective_grad_method(self.grad_method);
        self.model = self.model.with_backend(backend);
        self
    }

    /// The execution backend in use.
    pub fn backend(&self) -> &ExecutionBackend {
        self.model.backend()
    }

    /// The underlying VQC.
    pub fn model(&self) -> &Vqc {
        self.model.model()
    }

    /// The compiled-runtime handle backing this critic.
    pub fn compiled(&self) -> &CompiledVqc {
        &self.model
    }

    fn check_state(&self, state: &[f64]) -> Result<(), CoreError> {
        if state.len() != self.model.model().input_len() {
            return Err(CoreError::FeatureLenMismatch {
                expected: self.model.model().input_len(),
                actual: state.len(),
            });
        }
        Ok(())
    }
}

impl Critic for QuantumCritic {
    fn state_dim(&self) -> usize {
        self.model.model().input_len()
    }

    fn param_count(&self) -> usize {
        self.model.model().param_count()
    }

    fn value(&self, state: &[f64]) -> Result<f64, CoreError> {
        self.check_state(state)?;
        Ok(self.model.forward(state, &self.params)?[0])
    }

    fn values_batch(&self, states: &[Vec<f64>]) -> Result<Vec<f64>, CoreError> {
        for s in states {
            self.check_state(s)?;
        }
        Ok(self.model.values_batch(states, &self.params)?)
    }

    fn value_with_gradient(&self, state: &[f64]) -> Result<(f64, Vec<f64>), CoreError> {
        self.check_state(state)?;
        let (out, jac) = self
            .model
            .forward_with_jacobian(state, &self.params, self.grad_method)?;
        Ok((out[0], jac.vjp(&[1.0])))
    }

    fn values_with_gradients_batch(
        &self,
        states: &[Vec<f64>],
    ) -> Result<Vec<(f64, Jacobian)>, CoreError> {
        for s in states {
            self.check_state(s)?;
        }
        let results = match self.grad_method {
            // The prebound adjoint engine: the whole batch as lane slabs
            // behind hoisted trig, bit-identical per state to the serial
            // model-path adjoint.
            GradMethod::Adjoint => self
                .model
                .forward_with_jacobian_batch_prebound(states, &self.params)?,
            // Adjoint unavailable (hardware-rule gradients requested):
            // the batched parameter-shift queue, bit-identical per state
            // to the single-sample shift path.
            GradMethod::ParameterShift => self
                .model
                .forward_with_jacobian_batch(states, &self.params)?,
            // No batched engine for finite differences — serial sweep.
            GradMethod::FiniteDiff => {
                return states
                    .iter()
                    .map(|s| {
                        let (v, g) = self.value_with_gradient(s)?;
                        Ok((v, Jacobian::from_row(g)))
                    })
                    .collect()
            }
        };
        Ok(results
            .into_iter()
            .map(|(out, jac)| (out[0], jac))
            .collect())
    }

    fn params(&self) -> Vec<f64> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f64]) -> Result<(), CoreError> {
        if params.len() != self.params.len() {
            return Err(CoreError::ParamLenMismatch {
                expected: self.params.len(),
                actual: params.len(),
            });
        }
        self.params.copy_from_slice(params);
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Critic> {
        Box::new(self.clone())
    }
}

/// The naive CTDE quantum critic the paper's introduction argues against:
/// **one qubit per state feature** (`N · obs_dim` wires), so the register
/// grows with the number of agents and the circuit inherits NISQ noise on
/// every extra wire. Exists for the qubit-scaling ablation.
#[derive(Debug, Clone)]
pub struct NaiveQuantumCritic {
    inner: QuantumCritic,
}

impl NaiveQuantumCritic {
    /// Builds the wide critic: `state_dim` wires, one encoder layer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for budgets that cannot fit
    /// the affine head, or [`CoreError::Vqc`] when the register would be
    /// too large to simulate.
    pub fn new(state_dim: usize, total_params: usize, seed: u64) -> Result<Self, CoreError> {
        Ok(NaiveQuantumCritic {
            inner: QuantumCritic::new(state_dim, state_dim, total_params, seed)?,
        })
    }

    /// Number of qubits the naive layout needs (= state dimension).
    pub fn n_qubits(&self) -> usize {
        self.inner.model().circuit().n_qubits()
    }

    /// The underlying VQC.
    pub fn model(&self) -> &Vqc {
        self.inner.model()
    }
}

impl Critic for NaiveQuantumCritic {
    fn state_dim(&self) -> usize {
        self.inner.state_dim()
    }

    fn param_count(&self) -> usize {
        self.inner.param_count()
    }

    fn value(&self, state: &[f64]) -> Result<f64, CoreError> {
        self.inner.value(state)
    }

    fn value_with_gradient(&self, state: &[f64]) -> Result<(f64, Vec<f64>), CoreError> {
        self.inner.value_with_gradient(state)
    }

    fn values_with_gradients_batch(
        &self,
        states: &[Vec<f64>],
    ) -> Result<Vec<(f64, Jacobian)>, CoreError> {
        self.inner.values_with_gradients_batch(states)
    }

    fn params(&self) -> Vec<f64> {
        self.inner.params()
    }

    fn set_params(&mut self, params: &[f64]) -> Result<(), CoreError> {
        self.inner.set_params(params)
    }

    fn clone_box(&self) -> Box<dyn Critic> {
        Box::new(self.clone())
    }
}

/// A classical MLP critic (Comp1's centralized critic; Comp2/Comp3).
#[derive(Debug, Clone)]
pub struct ClassicalCritic {
    mlp: Mlp,
}

impl ClassicalCritic {
    /// Builds an MLP value head with the given layer sizes
    /// (`[state_dim, …, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for fewer than two sizes or a
    /// non-scalar output.
    pub fn new(sizes: &[usize], seed: u64) -> Result<Self, CoreError> {
        if sizes.len() < 2 {
            return Err(CoreError::InvalidConfig(
                "critic MLP needs input and output sizes".into(),
            ));
        }
        if *sizes.last().expect("nonempty") != 1 {
            return Err(CoreError::InvalidConfig(
                "critic MLP must output a scalar".into(),
            ));
        }
        Ok(ClassicalCritic {
            mlp: Mlp::new(sizes, Activation::Tanh, seed),
        })
    }

    /// The underlying network.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    fn check_state(&self, state: &[f64]) -> Result<(), CoreError> {
        if state.len() != self.mlp.in_dim() {
            return Err(CoreError::FeatureLenMismatch {
                expected: self.mlp.in_dim(),
                actual: state.len(),
            });
        }
        Ok(())
    }
}

impl Critic for ClassicalCritic {
    fn state_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    fn param_count(&self) -> usize {
        self.mlp.param_count()
    }

    fn value(&self, state: &[f64]) -> Result<f64, CoreError> {
        self.check_state(state)?;
        Ok(self.mlp.forward(state)[0])
    }

    fn value_with_gradient(&self, state: &[f64]) -> Result<(f64, Vec<f64>), CoreError> {
        self.check_state(state)?;
        let v = self.mlp.forward(state)[0];
        let (grad, _) = self.mlp.backward(state, &[1.0]);
        Ok((v, grad))
    }

    fn params(&self) -> Vec<f64> {
        self.mlp.params()
    }

    fn set_params(&mut self, params: &[f64]) -> Result<(), CoreError> {
        if params.len() != self.mlp.param_count() {
            return Err(CoreError::ParamLenMismatch {
                expected: self.mlp.param_count(),
                actual: params.len(),
            });
        }
        self.mlp.set_params(params);
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Critic> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state16() -> Vec<f64> {
        (0..16).map(|i| (i as f64) / 16.0).collect()
    }

    #[test]
    fn quantum_critic_paper_shape() {
        let c = QuantumCritic::new(4, 16, 50, 1).unwrap();
        assert_eq!(c.state_dim(), 16);
        assert_eq!(c.param_count(), 50); // 48 circuit + scale + bias
        assert_eq!(c.model().circuit().n_qubits(), 4);
        let v = c.value(&state16()).unwrap();
        assert!(
            (-1.5..=1.5).contains(&v),
            "fresh critic near raw readout range, got {v}"
        );
    }

    #[test]
    fn quantum_critic_gradient_matches_finite_difference() {
        let mut c = QuantumCritic::new(4, 16, 20, 5).unwrap();
        let s = state16();
        let (v0, grad) = c.value_with_gradient(&s).unwrap();
        let base = c.params();
        let eps = 1e-6;
        for p in (0..base.len()).step_by(3) {
            let mut pp = base.clone();
            pp[p] += eps;
            c.set_params(&pp).unwrap();
            let plus = c.value(&s).unwrap();
            pp[p] -= 2.0 * eps;
            c.set_params(&pp).unwrap();
            let minus = c.value(&s).unwrap();
            let fd = (plus - minus) / (2.0 * eps);
            assert!((grad[p] - fd).abs() < 1e-5, "param {p}");
        }
        c.set_params(&base).unwrap();
        assert!((c.value(&s).unwrap() - v0).abs() < 1e-12);
    }

    #[test]
    fn naive_critic_needs_one_wire_per_feature() {
        let c = NaiveQuantumCritic::new(8, 20, 2).unwrap();
        assert_eq!(c.n_qubits(), 8);
        assert_eq!(c.state_dim(), 8);
        let s: Vec<f64> = (0..8).map(|i| 0.1 * i as f64).collect();
        let (v, g) = c.value_with_gradient(&s).unwrap();
        assert!(v.is_finite());
        assert_eq!(g.len(), 20);
        assert_eq!(c.params().len(), 20);
    }

    #[test]
    fn naive_critic_qubits_scale_with_agents() {
        // obs_dim = 4 per agent: 2 agents → 8 wires, 4 agents → 16 wires.
        for (agents, wires) in [(1usize, 4usize), (2, 8), (4, 16)] {
            let c = NaiveQuantumCritic::new(agents * 4, 12, 0).unwrap();
            assert_eq!(c.n_qubits(), wires);
        }
    }

    #[test]
    fn classical_critic_gradient_matches_finite_difference() {
        let mut c = ClassicalCritic::new(&[16, 2, 1], 9).unwrap();
        assert_eq!(c.param_count(), 37);
        let s = state16();
        let (_, grad) = c.value_with_gradient(&s).unwrap();
        let base = c.params();
        let eps = 1e-6;
        for p in 0..base.len() {
            let mut pp = base.clone();
            pp[p] += eps;
            c.set_params(&pp).unwrap();
            let plus = c.value(&s).unwrap();
            pp[p] -= 2.0 * eps;
            c.set_params(&pp).unwrap();
            let minus = c.value(&s).unwrap();
            let fd = (plus - minus) / (2.0 * eps);
            assert!((grad[p] - fd).abs() < 1e-5, "param {p}");
        }
    }

    #[test]
    fn batched_value_gradients_match_serial_bit_exactly() {
        let states: Vec<Vec<f64>> = (0..5)
            .map(|b| (0..16).map(|i| ((b * 16 + i) % 11) as f64 / 11.0).collect())
            .collect();
        for method in [
            GradMethod::Adjoint,
            GradMethod::ParameterShift,
            GradMethod::FiniteDiff,
        ] {
            let c = QuantumCritic::new(4, 16, 24, 7)
                .unwrap()
                .with_grad_method(method);
            let batched = c.values_with_gradients_batch(&states).unwrap();
            assert_eq!(batched.len(), states.len());
            for (s, (v, jac)) in states.iter().zip(&batched) {
                let (v_ref, g_ref) = c.value_with_gradient(s).unwrap();
                assert_eq!(*v, v_ref, "{method:?}");
                assert_eq!(jac.vjp(&[1.0]), g_ref, "{method:?}");
            }
        }
        // The MLP default route agrees with per-state calls too.
        let c = ClassicalCritic::new(&[16, 3, 1], 5).unwrap();
        for (s, (v, jac)) in states
            .iter()
            .zip(c.values_with_gradients_batch(&states).unwrap())
        {
            let (v_ref, g_ref) = c.value_with_gradient(s).unwrap();
            assert_eq!(v, v_ref);
            assert_eq!(jac.vjp(&[1.0]), g_ref);
        }
        // Bad shapes are rejected up front.
        let c = QuantumCritic::new(4, 16, 24, 7).unwrap();
        assert!(c.values_with_gradients_batch(&[vec![0.0; 3]]).is_err());
    }

    #[test]
    fn sampled_critic_is_deterministic_and_batches_bit_exactly() {
        let backend = ExecutionBackend::Sampled {
            shots: 128,
            seed: 4,
        };
        let c = QuantumCritic::new(4, 16, 24, 7)
            .unwrap()
            .with_backend(backend.clone());
        assert_eq!(c.backend(), &backend);
        let states: Vec<Vec<f64>> = (0..3)
            .map(|b| (0..16).map(|i| ((b * 16 + i) % 7) as f64 / 7.0).collect())
            .collect();
        let v = c.value(&states[0]).unwrap();
        assert_eq!(v, c.value(&states[0]).unwrap(), "shot noise is seeded");
        assert_ne!(
            v,
            QuantumCritic::new(4, 16, 24, 7)
                .unwrap()
                .value(&states[0])
                .unwrap(),
            "sampled value differs from exact"
        );
        let batched = c.values_with_gradients_batch(&states).unwrap();
        for (s, (val, jac)) in states.iter().zip(&batched) {
            let (v_ref, g_ref) = c.value_with_gradient(s).unwrap();
            assert_eq!(*val, v_ref);
            assert_eq!(jac.vjp(&[1.0]), g_ref);
        }
        assert_eq!(
            c.values_batch(&states).unwrap(),
            batched.iter().map(|(v, _)| *v).collect::<Vec<_>>()
        );
    }

    #[test]
    fn critics_validate_inputs() {
        let c = QuantumCritic::new(4, 16, 50, 0).unwrap();
        assert!(matches!(
            c.value(&[0.0; 4]),
            Err(CoreError::FeatureLenMismatch { .. })
        ));
        let mut c = ClassicalCritic::new(&[16, 2, 1], 0).unwrap();
        assert!(c.value(&[0.0; 3]).is_err());
        assert!(c.set_params(&[0.0; 2]).is_err());
        assert!(ClassicalCritic::new(&[16, 4], 0).is_err()); // non-scalar out
        assert!(ClassicalCritic::new(&[16], 0).is_err());
        assert!(QuantumCritic::new(4, 16, 2, 0).is_err());
    }

    #[test]
    fn target_network_snapshot_roundtrip() {
        let c = QuantumCritic::new(4, 16, 50, 3).unwrap();
        let mut target = c.clone();
        let s = state16();
        // Diverge the live critic, then sync φ ← ψ.
        let mut p = c.params();
        for x in p.iter_mut() {
            *x += 0.3;
        }
        let mut live = c.clone();
        live.set_params(&p).unwrap();
        assert!((live.value(&s).unwrap() - target.value(&s).unwrap()).abs() > 1e-9);
        target.set_params(&live.params()).unwrap();
        assert!((live.value(&s).unwrap() - target.value(&s).unwrap()).abs() < 1e-12);
    }
}
