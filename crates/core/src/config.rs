//! Experiment configuration — Table II of the paper as code.

use qmarl_env::single_hop::EnvConfig;
use qmarl_vqc::grad::GradMethod;

use crate::error::CoreError;

/// Training hyper-parameters (the optimisation rows of Table II plus the
/// quantities the paper leaves implicit, documented here).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Training epochs (the paper trains 1000).
    pub epochs: usize,
    /// Discount factor `γ`. Not printed in Table II; `0.95` keeps the
    /// discounted return within the critic's reachable output range.
    pub gamma: f64,
    /// Actor learning rate (Table II: `1e-4`, Adam).
    pub lr_actor: f64,
    /// Critic learning rate (Table II: `1e-5`, Adam).
    pub lr_critic: f64,
    /// Epochs between target-network syncs `φ ← ψ` (Algorithm 1, line 17).
    pub target_update_period: usize,
    /// How many recent episodes form the batch `D` each epoch (1 = pure
    /// on-policy, the default).
    pub batch_episodes: usize,
    /// Replay capacity in episodes.
    pub replay_capacity: usize,
    /// Register width for quantum models (Table II: 4 qubits).
    pub n_qubits: usize,
    /// Trainable-parameter budget per actor (Sec. IV-C: 50).
    pub actor_params: usize,
    /// Trainable-parameter budget for the critic (Sec. IV-C: 50).
    pub critic_params: usize,
    /// Entropy-bonus coefficient β added to the actor objective
    /// (`0.0` = the paper's plain MAPG; small positive values slow policy
    /// collapse — an extension knob, off by default).
    pub entropy_coef: f64,
    /// Differentiation method for quantum models.
    pub grad_method: GradMethod,
    /// Master RNG seed (environment, policy sampling, initialisation).
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's settings.
    pub fn paper_default() -> Self {
        TrainConfig {
            epochs: 1000,
            gamma: 0.95,
            lr_actor: 1e-4,
            lr_critic: 1e-5,
            target_update_period: 5,
            batch_episodes: 1,
            replay_capacity: 8,
            n_qubits: 4,
            actor_params: 50,
            critic_params: 50,
            entropy_coef: 0.0,
            grad_method: GradMethod::Adjoint,
            seed: 7,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first problem.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.epochs == 0 {
            return Err(CoreError::InvalidConfig("epochs must be positive".into()));
        }
        if !(0.0..1.0).contains(&self.gamma) {
            return Err(CoreError::InvalidConfig(format!(
                "gamma {} not in [0, 1)",
                self.gamma
            )));
        }
        if self.lr_actor <= 0.0 || self.lr_critic <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "learning rates must be positive".into(),
            ));
        }
        if self.target_update_period == 0 {
            return Err(CoreError::InvalidConfig(
                "target update period must be positive".into(),
            ));
        }
        if self.batch_episodes == 0 || self.batch_episodes > self.replay_capacity {
            return Err(CoreError::InvalidConfig(
                "batch episodes must be in 1..=replay capacity".into(),
            ));
        }
        if self.n_qubits == 0 {
            return Err(CoreError::InvalidConfig("need at least one qubit".into()));
        }
        if !(0.0..=1.0).contains(&self.entropy_coef) {
            return Err(CoreError::InvalidConfig(format!(
                "entropy coefficient {} not in [0, 1]",
                self.entropy_coef
            )));
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::paper_default()
    }
}

/// The full experiment: environment constants + training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ExperimentConfig {
    /// Environment constants (upper half of Table II).
    pub env: EnvConfig,
    /// Optimisation constants (lower half of Table II).
    pub train: TrainConfig,
}

impl ExperimentConfig {
    /// The complete Table II configuration.
    pub fn paper_default() -> Self {
        ExperimentConfig {
            env: EnvConfig::paper_default(),
            train: TrainConfig::paper_default(),
        }
    }

    /// Validates both halves.
    ///
    /// # Errors
    ///
    /// Returns the first configuration problem found.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.env.validate()?;
        self.train.validate()
    }

    /// Renders Table II as aligned text rows (the `table2_parameters`
    /// binary prints this).
    pub fn table2(&self) -> String {
        let e = &self.env;
        let t = &self.train;
        let rows: Vec<(String, String)> = vec![
            (
                "The numbers of clouds and edge agents (K, N)".into(),
                format!("{}, {}", e.n_clouds, e.n_edges),
            ),
            (
                "The packet amount space (P)".into(),
                format!("{:?}", e.packet_amounts),
            ),
            (
                "The hyper-parameters of environment (wP, wR)".into(),
                format!("({}, {})", e.w_p, e.w_r),
            ),
            (
                "Transmitted packets from the cloud".into(),
                format!("{}", e.cloud_departure),
            ),
            (
                "The capacity of queue (qmax)".into(),
                format!("{}", e.q_max),
            ),
            (
                "Episode length (calibrated; see EXPERIMENTS.md)".into(),
                format!("{}", e.episode_limit),
            ),
            ("Optimizer".into(), "Adam".into()),
            (
                "The number of qubits of actor/critic".into(),
                format!("{}", t.n_qubits),
            ),
            (
                "Trainable parameters of actor/critic".into(),
                format!("{}, {}", t.actor_params, t.critic_params),
            ),
            (
                "Learning rate of actor/critic".into(),
                format!("{:.0e}, {:.0e}", t.lr_actor, t.lr_critic),
            ),
            (
                "Discount factor (not in Table II)".into(),
                format!("{}", t.gamma),
            ),
            ("Training epochs".into(), format!("{}", t.epochs)),
        ];
        let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:w$}  {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_matches_table2() {
        let c = ExperimentConfig::paper_default();
        assert_eq!(c.env.n_clouds, 2);
        assert_eq!(c.env.n_edges, 4);
        assert_eq!(c.env.packet_amounts, vec![0.1, 0.2]);
        assert_eq!(c.env.w_p, 0.3);
        assert_eq!(c.env.w_r, 4.0);
        assert_eq!(c.env.cloud_departure, 0.3);
        assert_eq!(c.env.q_max, 1.0);
        assert_eq!(c.train.n_qubits, 4);
        assert_eq!(c.train.actor_params, 50);
        assert_eq!(c.train.critic_params, 50);
        assert_eq!(c.train.lr_actor, 1e-4);
        assert_eq!(c.train.lr_critic, 1e-5);
        assert_eq!(c.train.epochs, 1000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = TrainConfig::paper_default();
        c.gamma = 1.0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::paper_default();
        c.epochs = 0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::paper_default();
        c.lr_actor = 0.0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::paper_default();
        c.batch_episodes = 100;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::paper_default();
        c.target_update_period = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn table2_renders_all_rows() {
        let txt = ExperimentConfig::paper_default().table2();
        assert!(txt.contains("2, 4"));
        assert!(txt.contains("[0.1, 0.2]"));
        assert!(txt.contains("(0.3, 4)"));
        assert!(txt.contains("Adam"));
        assert!(txt.contains("1e-4, 1e-5"));
    }
}
