//! The Fig. 4 demonstration: queue trajectories + qubit-state heatmaps.
//!
//! The paper visualises a trained QMARL rollout as (a) the six queue
//! levels over 12 unit-steps and (b) the first edge agent's 4-qubit state
//! as a 4×4 heatmap of amplitude magnitude/phase in the HLS colour
//! system. [`run_demonstration`] captures the frames;
//! [`render_queue_chart`] and [`render_heatmap_ansi`] render them for a
//! terminal, and [`frames_to_csv`] exports them for external plotting.

use qmarl_env::multi_agent::MultiAgentEnv;
use qmarl_env::single_hop::SingleHopEnv;
use qmarl_qsim::bloch::{amplitude_color, amplitude_grid, AmplitudeCell};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::CoreError;
use crate::policy::{select_action, Actor, QuantumActor};

/// One captured time step of the demonstration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DemoFrame {
    /// Time step (1-based, like the paper's x-axis).
    pub time: usize,
    /// Edge queue levels (agent order).
    pub edge_levels: Vec<f64>,
    /// Cloud queue levels.
    pub cloud_levels: Vec<f64>,
    /// Joint flat actions taken this step.
    pub actions: Vec<usize>,
    /// Reward received.
    pub reward: f64,
    /// The observed agent's 4×4 amplitude grid (magnitude, phase).
    pub qubit_grid: [[AmplitudeCell; 4]; 4],
}

/// Rolls out `steps` steps of a trained team and captures, per step, the
/// queue levels and the `agent_idx`-th quantum actor's register state.
/// `deterministic` selects argmax execution (the paper's rule) versus the
/// stochastic behaviour policy used during training.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when `agent_idx` is out of range
/// or the observed actor is not 4 qubits wide; propagates environment
/// errors.
pub fn run_demonstration(
    env: &mut SingleHopEnv,
    actors: &[Box<dyn Actor>],
    quantum_views: &[QuantumActor],
    agent_idx: usize,
    steps: usize,
    seed: u64,
    deterministic: bool,
) -> Result<Vec<DemoFrame>, CoreError> {
    if agent_idx >= actors.len() || agent_idx >= quantum_views.len() {
        return Err(CoreError::InvalidConfig(format!(
            "agent index {agent_idx} out of range for {} actors",
            actors.len()
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut obs, _) = env.reset();
    let mut frames = Vec::with_capacity(steps);
    for t in 1..=steps {
        let mut actions = Vec::with_capacity(actors.len());
        for (n, actor) in actors.iter().enumerate() {
            let probs = actor.probs(&obs[n])?;
            actions.push(select_action(&probs, deterministic, &mut rng));
        }
        let state = quantum_views[agent_idx].quantum_state(&obs[agent_idx])?;
        let qubit_grid = amplitude_grid(&state).map_err(qmarl_vqc::error::VqcError::from)?;
        let out = env.step(&actions)?;
        frames.push(DemoFrame {
            time: t,
            edge_levels: out.info.queue_levels[..actors.len()].to_vec(),
            cloud_levels: out.info.queue_levels[actors.len()..].to_vec(),
            actions,
            reward: out.reward,
            qubit_grid,
        });
        obs = out.observations;
        if out.done {
            break;
        }
    }
    Ok(frames)
}

/// Renders the queue-level chart of Fig. 4 as ASCII: one row per queue,
/// one column per time step, `▁▂▃▄▅▆▇█` proportional to occupancy.
pub fn render_queue_chart(frames: &[DemoFrame]) -> String {
    if frames.is_empty() {
        return String::from("(no frames)\n");
    }
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let glyph = |level: f64| BLOCKS[((level.clamp(0.0, 1.0) * 7.0).round()) as usize];
    let n_edges = frames[0].edge_levels.len();
    let n_clouds = frames[0].cloud_levels.len();
    // Every row label is padded to one shared width so the data columns
    // line up for any queue count (edge10, cloud12, …), and every data
    // cell is as wide as the largest time stamp.
    let label_w = 1 + [
        "time".len(),
        format!("edge{n_edges}").len(),
        format!("cloud{n_clouds}").len(),
    ]
    .into_iter()
    .max()
    .expect("nonempty")
    .max(9);
    let cell_w = frames
        .iter()
        .map(|f| f.time.to_string().len())
        .max()
        .unwrap_or(2)
        .max(2);
    let mut out = String::new();
    out.push_str(&format!("{:<label_w$}", "time"));
    for f in frames {
        out.push_str(&format!("{:>cell_w$} ", f.time));
    }
    out.push('\n');
    let mut row = |name: String, levels: &dyn Fn(&DemoFrame) -> f64| {
        out.push_str(&format!("{name:<label_w$}"));
        for f in frames {
            out.push_str(&format!("{:>cell_w$} ", glyph(levels(f))));
        }
        out.push('\n');
    };
    for e in 0..n_edges {
        row(format!("edge{}", e + 1), &|f| f.edge_levels[e]);
    }
    for c in 0..n_clouds {
        row(format!("cloud{}", c + 1), &|f| f.cloud_levels[c]);
    }
    out
}

/// Renders one frame's 4×4 qubit heatmap with ANSI truecolor background
/// cells — the terminal equivalent of the paper's HLS heatmaps. Rows are
/// the first two qubits `(q₁q₂)`, columns the last two `(q₃q₄)`.
pub fn render_heatmap_ansi(frame: &DemoFrame) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "t={:>2}  1st edge's qubit state |amplitude| (colour = phase)\n",
        frame.time
    ));
    for row in &frame.qubit_grid {
        for cell in row {
            let c = amplitude_color(*cell);
            out.push_str(&format!(
                "\u{1b}[48;2;{};{};{}m {:+.2} \u{1b}[0m",
                c.r, c.g, c.b, cell.magnitude
            ));
        }
        out.push('\n');
    }
    out
}

/// Exports the frames as CSV (one row per queue/grid-cell sample) for
/// external plotting.
pub fn frames_to_csv(frames: &[DemoFrame]) -> String {
    let mut out = String::from("time,kind,index,value,phase\n");
    for f in frames {
        for (i, &v) in f.edge_levels.iter().enumerate() {
            out.push_str(&format!("{},edge,{},{:.6},\n", f.time, i + 1, v));
        }
        for (i, &v) in f.cloud_levels.iter().enumerate() {
            out.push_str(&format!("{},cloud,{},{:.6},\n", f.time, i + 1, v));
        }
        for (r, row) in f.qubit_grid.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                // Index by the row's actual width, not a hardcoded 4, so
                // non-4×4 grids export correct cell indices.
                out.push_str(&format!(
                    "{},amp,{},{:.6},{:.6}\n",
                    f.time,
                    r * row.len() + c,
                    cell.magnitude,
                    cell.phase
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::QuantumActor;
    use qmarl_env::single_hop::EnvConfig;

    fn demo_setup() -> (SingleHopEnv, Vec<Box<dyn Actor>>, Vec<QuantumActor>) {
        let mut cfg = EnvConfig::paper_default();
        cfg.episode_limit = 12;
        let env = SingleHopEnv::new(cfg, 3).unwrap();
        let quantum: Vec<QuantumActor> = (0..4)
            .map(|n| QuantumActor::new(4, 4, 4, 50, n as u64).unwrap())
            .collect();
        let actors: Vec<Box<dyn Actor>> = quantum
            .iter()
            .map(|q| Box::new(q.clone()) as Box<dyn Actor>)
            .collect();
        (env, actors, quantum)
    }

    #[test]
    fn demonstration_captures_twelve_frames() {
        let (mut env, actors, quantum) = demo_setup();
        let frames = run_demonstration(&mut env, &actors, &quantum, 0, 12, 9, false).unwrap();
        assert_eq!(frames.len(), 12);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.time, i + 1);
            assert_eq!(f.edge_levels.len(), 4);
            assert_eq!(f.cloud_levels.len(), 2);
            assert_eq!(f.actions.len(), 4);
            // Amplitude grid is a normalised quantum state.
            let norm: f64 = f
                .qubit_grid
                .iter()
                .flatten()
                .map(|c| c.magnitude * c.magnitude)
                .sum();
            assert!((norm - 1.0).abs() < 1e-9, "frame {i} norm {norm}");
        }
    }

    #[test]
    fn demonstration_validates_agent_index() {
        let (mut env, actors, quantum) = demo_setup();
        assert!(run_demonstration(&mut env, &actors, &quantum, 9, 12, 0, false).is_err());
    }

    #[test]
    fn queue_chart_lists_all_queues() {
        let (mut env, actors, quantum) = demo_setup();
        let frames = run_demonstration(&mut env, &actors, &quantum, 0, 12, 1, true).unwrap();
        let chart = render_queue_chart(&frames);
        for name in ["edge1", "edge4", "cloud1", "cloud2", "time"] {
            assert!(chart.contains(name), "missing {name}");
        }
        assert_eq!(render_queue_chart(&[]), "(no frames)\n");
    }

    /// Fabricates a frame with explicit queue levels (the grid content is
    /// irrelevant to the chart/CSV layout tests).
    fn frame(time: usize, edges: &[f64], clouds: &[f64]) -> DemoFrame {
        DemoFrame {
            time,
            edge_levels: edges.to_vec(),
            cloud_levels: clouds.to_vec(),
            actions: vec![0; edges.len()],
            reward: 0.0,
            qubit_grid: [[qmarl_qsim::bloch::AmplitudeCell {
                magnitude: 0.25,
                phase: 0.0,
            }; 4]; 4],
        }
    }

    #[test]
    fn queue_chart_columns_align_snapshot() {
        // The regression this pins: the old "time      " header was 10
        // chars while "edge1    "/"cloud1   " rows were 9, shifting every
        // data column by one.
        let frames = [frame(1, &[0.0, 1.0], &[0.5]), frame(2, &[1.0, 0.0], &[1.0])];
        let chart = render_queue_chart(&frames);
        assert_eq!(
            chart,
            "time       1  2 \n\
             edge1      ▁  █ \n\
             edge2      █  ▁ \n\
             cloud1     ▅  █ \n"
        );
        // Every line carries the same label width, so the data columns
        // start at one shared offset.
        let widths: Vec<usize> = chart.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn queue_chart_aligns_for_ten_plus_queues() {
        // N ≥ 10 queue labels are longer than the paper's; the shared
        // label width must grow instead of shearing the columns.
        let edges = vec![0.5; 12];
        let clouds = vec![0.5; 10];
        let frames = [frame(1, &edges, &clouds), frame(2, &edges, &clouds)];
        let chart = render_queue_chart(&frames);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 1 + 12 + 10);
        let width = lines[0].chars().count();
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.chars().count(), width, "line {i} misaligned");
        }
        assert!(chart.contains("edge12"));
        assert!(chart.contains("cloud10"));
        // The cell width follows the widest time stamp wherever it sits,
        // not just the last frame's.
        let frames = [frame(100, &[0.5], &[0.5]), frame(5, &[0.5], &[0.5])];
        let chart = render_queue_chart(&frames);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
    }

    #[test]
    fn heatmap_contains_ansi_colors() {
        let (mut env, actors, quantum) = demo_setup();
        let frames = run_demonstration(&mut env, &actors, &quantum, 0, 1, 1, false).unwrap();
        let art = render_heatmap_ansi(&frames[0]);
        assert!(art.contains("\u{1b}[48;2;"));
        assert!(art.contains("\u{1b}[0m"));
        assert_eq!(art.lines().count(), 5); // title + 4 rows
    }

    #[test]
    fn csv_export_covers_all_samples() {
        let (mut env, actors, quantum) = demo_setup();
        let frames = run_demonstration(&mut env, &actors, &quantum, 0, 2, 1, false).unwrap();
        let csv = frames_to_csv(&frames);
        // Per frame: 4 edges + 2 clouds + 16 amplitudes = 22 rows.
        assert_eq!(csv.trim().lines().count(), 1 + 2 * 22);
        assert!(csv.contains("edge"));
        assert!(csv.contains("amp"));
        // Grid cell indices come from the row stride: 0..=15 in order.
        let amp_indices: Vec<usize> = csv
            .lines()
            .filter(|l| l.starts_with("1,amp,"))
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        assert_eq!(amp_indices, (0..16).collect::<Vec<_>>());
    }
}
