//! Actors: decentralized policies `π_θ(u|o)` (Sec. III-A1).
//!
//! Every agent owns its own policy. The paper's **quantum actor** is a
//! 4-qubit VQC whose per-wire `⟨Z⟩` readouts become action logits through
//! a softmax; the **classical actor** (Comp2/Comp3) is an MLP with the
//! same interface. Both expose flat parameters and a policy-gradient
//! contribution so the CTDE trainer treats them uniformly.

use rand::Rng;

use qmarl_neural::prelude::{policy_gradient_logits, softmax, Activation, Mlp};
use qmarl_runtime::backend::ExecutionBackend;
use qmarl_runtime::qnn::CompiledVqc;
use qmarl_vqc::prelude::{GradMethod, OutputHead, Readout, Vqc, VqcBuilder};

use crate::error::CoreError;

/// A trainable stochastic policy over a discrete action set.
///
/// `Sync` is required so frozen-parameter policies can be shared with
/// parallel rollout workers (`&dyn Actor` crosses threads during
/// [`crate::trainer::CtdeTrainer::rollout_parallel`]).
pub trait Actor: Send + Sync {
    /// Observation dimensionality.
    fn obs_dim(&self) -> usize;
    /// Number of discrete actions.
    fn n_actions(&self) -> usize;
    /// Number of trainable parameters.
    fn param_count(&self) -> usize;

    /// The action distribution `π(·|o)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad observation.
    fn probs(&self, obs: &[f64]) -> Result<Vec<f64>, CoreError>;

    /// Action distributions for a whole batch of observations. The
    /// default walks [`Actor::probs`] serially; circuit-backed actors
    /// override it with the runtime's batched executor. Results are
    /// bit-identical to per-observation [`Actor::probs`] calls either way.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad observation.
    fn probs_batch(&self, batch: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        batch.iter().map(|o| self.probs(o)).collect()
    }

    /// The compiled-runtime handle behind this actor, when it is a
    /// compiled VQC: `(compiled model, flat parameter vector)`. The
    /// vectorized collector uses it to fuse all same-shaped actors'
    /// evaluations at one lockstep tick into a single flat circuit batch;
    /// `None` (the default) opts out of that path.
    fn runtime_handle(&self) -> Option<(&CompiledVqc, &[f64])> {
        None
    }

    /// The gradient of the MAPG pseudo-loss `−advantage · log π(action|o)`
    /// w.r.t. the parameters (ready for a *descent* step).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad observation.
    fn policy_gradient(
        &self,
        obs: &[f64],
        action: usize,
        advantage: f64,
    ) -> Result<Vec<f64>, CoreError> {
        self.policy_gradient_with_entropy(obs, action, advantage, 0.0)
    }

    /// The MAPG gradient with an entropy bonus: descending this maximises
    /// `advantage · log π(action|o) + β · H(π(·|o))`. With `β = 0` it is
    /// exactly [`Actor::policy_gradient`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad observation.
    fn policy_gradient_with_entropy(
        &self,
        obs: &[f64],
        action: usize,
        advantage: f64,
        entropy_coef: f64,
    ) -> Result<Vec<f64>, CoreError>;

    /// Batched MAPG gradients under the current (frozen) parameters: one
    /// descent-ready gradient per `(observation, action, advantage)`
    /// triple. The default walks
    /// [`Actor::policy_gradient_with_entropy`] serially; circuit-backed
    /// actors override it so every transition's circuit work lands in one
    /// flat runtime queue. Either route is bit-identical to per-sample
    /// [`Actor::policy_gradient_with_entropy`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad observation.
    /// `obs`, `actions` and `advantages` must have equal lengths.
    fn policy_gradients_batch(
        &self,
        obs: &[Vec<f64>],
        actions: &[usize],
        advantages: &[f64],
        entropy_coef: f64,
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        debug_assert_eq!(obs.len(), actions.len());
        debug_assert_eq!(obs.len(), advantages.len());
        obs.iter()
            .zip(actions)
            .zip(advantages)
            .map(|((o, &a), &adv)| self.policy_gradient_with_entropy(o, a, adv, entropy_coef))
            .collect()
    }

    /// Snapshot of the flat parameter vector.
    fn params(&self) -> Vec<f64>;

    /// Loads a flat parameter vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ParamLenMismatch`] on length mismatch.
    fn set_params(&mut self, params: &[f64]) -> Result<(), CoreError>;

    /// A boxed deep copy — how parallel rollout workers get private
    /// policy handles (mirrors [`crate::value::Critic::clone_box`]).
    fn clone_box(&self) -> Box<dyn Actor>;
}

/// The logits-gradient of the entropy-regularised MAPG pseudo-loss
/// `−advantage·log π[a] − β·H(π)`:
/// `advantage·(π_i − 1{i=a}) + β·π_i(ln π_i + H)`.
fn regularized_upstream(probs: &[f64], action: usize, advantage: f64, beta: f64) -> Vec<f64> {
    let mut up = policy_gradient_logits(probs, action, advantage);
    if beta != 0.0 {
        let h = qmarl_neural::loss::entropy(probs);
        for (u, &p) in up.iter_mut().zip(probs) {
            if p > 0.0 {
                *u += beta * p * (p.ln() + h);
            }
        }
    }
    up
}

/// Samples an action from a policy, or takes the argmax when
/// `deterministic` (the paper's execution-time rule `u = argmax π`).
pub fn select_action<R: Rng + ?Sized>(probs: &[f64], deterministic: bool, rng: &mut R) -> usize {
    if deterministic {
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are comparable"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    } else {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if r < acc {
                return i;
            }
        }
        probs.len() - 1
    }
}

/// The paper's quantum actor: layered-encoder VQC + softmax policy head.
///
/// Evaluation runs through the batched runtime ([`CompiledVqc`]): the
/// circuit is compiled once (shared process-wide with every same-shaped
/// actor) and forward passes execute the fused schedule.
#[derive(Debug, Clone)]
pub struct QuantumActor {
    model: CompiledVqc,
    params: Vec<f64>,
    grad_method: GradMethod,
}

impl QuantumActor {
    /// Builds the Fig. 1 actor: `obs_dim` features on `n_qubits` wires
    /// (one encoder layer when `obs_dim == n_qubits`), a structured ansatz
    /// sized so circuit + affine head = `total_params`, and `⟨Z⟩` logits on
    /// the first `n_actions` wires.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `n_actions > n_qubits` or
    /// the budget is too small for the affine head.
    pub fn new(
        n_qubits: usize,
        obs_dim: usize,
        n_actions: usize,
        total_params: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if n_actions > n_qubits {
            return Err(CoreError::InvalidConfig(format!(
                "need one readout wire per action: {n_actions} actions > {n_qubits} qubits"
            )));
        }
        let head_params = 2 * n_actions;
        if total_params <= head_params {
            return Err(CoreError::InvalidConfig(format!(
                "parameter budget {total_params} too small for a {head_params}-parameter output head"
            )));
        }
        let model = VqcBuilder::new(n_qubits)
            .encoder_inputs(obs_dim)
            .ansatz_params(total_params - head_params)
            .readout(Readout::ZPerQubit {
                qubits: (0..n_actions).collect(),
            })
            .output_head(OutputHead::Affine)
            .build()?;
        let params = model.init_params(seed);
        Ok(QuantumActor {
            model: CompiledVqc::new(model),
            params,
            grad_method: GradMethod::Adjoint,
        })
    }

    /// Overrides the gradient method (default: adjoint).
    pub fn with_grad_method(mut self, method: GradMethod) -> Self {
        self.grad_method = method;
        self
    }

    /// Overrides the execution backend (default:
    /// [`ExecutionBackend::Ideal`], bit-identical to not setting one).
    /// Under `Sampled`/`Noisy` the gradient method is forced to the
    /// parameter-shift rule — the adjoint sweep needs exact statevectors,
    /// which those backends never expose.
    pub fn with_backend(mut self, backend: ExecutionBackend) -> Self {
        self.grad_method = backend.effective_grad_method(self.grad_method);
        self.model = self.model.with_backend(backend);
        self
    }

    /// The execution backend in use.
    pub fn backend(&self) -> &ExecutionBackend {
        self.model.backend()
    }

    /// The underlying VQC (e.g. for circuit diagrams or Fig. 4 states).
    pub fn model(&self) -> &Vqc {
        self.model.model()
    }

    /// The compiled-runtime handle backing this actor.
    pub fn compiled(&self) -> &CompiledVqc {
        &self.model
    }

    /// The final quantum state for an observation — the Fig. 4 heatmap
    /// input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad observation.
    pub fn quantum_state(&self, obs: &[f64]) -> Result<qmarl_qsim::state::StateVector, CoreError> {
        self.check_obs(obs)?;
        Ok(self.model.model().state(obs, &self.params)?)
    }

    /// Action distributions for a whole batch of observations, fanned out
    /// over the runtime's batch executor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] for a bad observation.
    pub fn probs_batch(&self, batch: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        for obs in batch {
            self.check_obs(obs)?;
        }
        let logits = self.model.forward_batch(batch, &self.params)?;
        Ok(logits.iter().map(|l| softmax(l)).collect())
    }

    fn check_obs(&self, obs: &[f64]) -> Result<(), CoreError> {
        if obs.len() != self.model.model().input_len() {
            return Err(CoreError::FeatureLenMismatch {
                expected: self.model.model().input_len(),
                actual: obs.len(),
            });
        }
        Ok(())
    }
}

impl Actor for QuantumActor {
    fn obs_dim(&self) -> usize {
        self.model.model().input_len()
    }

    fn n_actions(&self) -> usize {
        self.model.model().output_len()
    }

    fn param_count(&self) -> usize {
        self.model.model().param_count()
    }

    fn probs(&self, obs: &[f64]) -> Result<Vec<f64>, CoreError> {
        self.check_obs(obs)?;
        let logits = self.model.forward(obs, &self.params)?;
        Ok(softmax(&logits))
    }

    fn probs_batch(&self, batch: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        QuantumActor::probs_batch(self, batch)
    }

    fn runtime_handle(&self) -> Option<(&CompiledVqc, &[f64])> {
        Some((&self.model, &self.params))
    }

    fn policy_gradient_with_entropy(
        &self,
        obs: &[f64],
        action: usize,
        advantage: f64,
        entropy_coef: f64,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_obs(obs)?;
        let (logits, jac) =
            self.model
                .forward_with_jacobian(obs, &self.params, self.grad_method)?;
        let probs = softmax(&logits);
        let upstream = regularized_upstream(&probs, action, advantage, entropy_coef);
        Ok(jac.vjp(&upstream))
    }

    fn policy_gradients_batch(
        &self,
        obs: &[Vec<f64>],
        actions: &[usize],
        advantages: &[f64],
        entropy_coef: f64,
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        debug_assert_eq!(obs.len(), actions.len());
        debug_assert_eq!(obs.len(), advantages.len());
        for o in obs {
            self.check_obs(o)?;
        }
        let results = match self.grad_method {
            // The prebound adjoint engine: all transitions as lane slabs
            // behind hoisted trig.
            GradMethod::Adjoint => self
                .model
                .forward_with_jacobian_batch_prebound(obs, &self.params)?,
            // Adjoint unavailable (hardware-rule gradients requested):
            // every shift evaluation of the whole batch as one flat
            // parameter-shift queue.
            GradMethod::ParameterShift => {
                self.model.forward_with_jacobian_batch(obs, &self.params)?
            }
            // No batched engine for finite differences — serial sweep.
            GradMethod::FiniteDiff => {
                return obs
                    .iter()
                    .zip(actions)
                    .zip(advantages)
                    .map(|((o, &a), &adv)| {
                        self.policy_gradient_with_entropy(o, a, adv, entropy_coef)
                    })
                    .collect()
            }
        };
        let mut grads = Vec::with_capacity(results.len());
        for ((logits, jac), (&action, &advantage)) in
            results.iter().zip(actions.iter().zip(advantages))
        {
            let probs = softmax(logits);
            let upstream = regularized_upstream(&probs, action, advantage, entropy_coef);
            let mut grad = vec![0.0; jac.n_params()];
            jac.vjp_into(&upstream, &mut grad);
            grads.push(grad);
        }
        Ok(grads)
    }

    fn params(&self) -> Vec<f64> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f64]) -> Result<(), CoreError> {
        if params.len() != self.params.len() {
            return Err(CoreError::ParamLenMismatch {
                expected: self.params.len(),
                actual: params.len(),
            });
        }
        self.params.copy_from_slice(params);
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Actor> {
        Box::new(self.clone())
    }
}

/// A classical MLP actor (the paper's Comp2/Comp3 policies).
#[derive(Debug, Clone)]
pub struct ClassicalActor {
    mlp: Mlp,
}

impl ClassicalActor {
    /// Builds an MLP policy with the given layer sizes
    /// (`[obs_dim, …, n_actions]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for fewer than two sizes.
    pub fn new(sizes: &[usize], seed: u64) -> Result<Self, CoreError> {
        if sizes.len() < 2 {
            return Err(CoreError::InvalidConfig(
                "actor MLP needs input and output sizes".into(),
            ));
        }
        Ok(ClassicalActor {
            mlp: Mlp::new(sizes, Activation::Tanh, seed),
        })
    }

    /// The underlying network.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    fn check_obs(&self, obs: &[f64]) -> Result<(), CoreError> {
        if obs.len() != self.mlp.in_dim() {
            return Err(CoreError::FeatureLenMismatch {
                expected: self.mlp.in_dim(),
                actual: obs.len(),
            });
        }
        Ok(())
    }
}

impl Actor for ClassicalActor {
    fn obs_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    fn n_actions(&self) -> usize {
        self.mlp.out_dim()
    }

    fn param_count(&self) -> usize {
        self.mlp.param_count()
    }

    fn probs(&self, obs: &[f64]) -> Result<Vec<f64>, CoreError> {
        self.check_obs(obs)?;
        Ok(softmax(&self.mlp.forward(obs)))
    }

    fn policy_gradient_with_entropy(
        &self,
        obs: &[f64],
        action: usize,
        advantage: f64,
        entropy_coef: f64,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_obs(obs)?;
        let probs = softmax(&self.mlp.forward(obs));
        let upstream = regularized_upstream(&probs, action, advantage, entropy_coef);
        let (grad, _) = self.mlp.backward(obs, &upstream);
        Ok(grad)
    }

    fn params(&self) -> Vec<f64> {
        self.mlp.params()
    }

    fn set_params(&mut self, params: &[f64]) -> Result<(), CoreError> {
        if params.len() != self.mlp.param_count() {
            return Err(CoreError::ParamLenMismatch {
                expected: self.mlp.param_count(),
                actual: params.len(),
            });
        }
        self.mlp.set_params(params);
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Actor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantum_actor() -> QuantumActor {
        QuantumActor::new(4, 4, 4, 50, 3).unwrap()
    }

    #[test]
    fn quantum_actor_paper_budget() {
        let a = quantum_actor();
        assert_eq!(a.param_count(), 50);
        assert_eq!(a.obs_dim(), 4);
        assert_eq!(a.n_actions(), 4);
        // 42 circuit params + 4 scales + 4 biases.
        assert_eq!(a.model().circuit_param_count(), 42);
    }

    #[test]
    fn quantum_actor_probs_form_distribution() {
        let a = quantum_actor();
        let p = a.probs(&[0.1, 0.7, 0.3, 0.9]).unwrap();
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn quantum_actor_rejects_bad_obs() {
        let a = quantum_actor();
        assert!(matches!(
            a.probs(&[0.1; 3]),
            Err(CoreError::FeatureLenMismatch { .. })
        ));
        assert!(a.policy_gradient(&[0.1; 5], 0, 1.0).is_err());
        assert!(a.quantum_state(&[0.1; 2]).is_err());
    }

    #[test]
    fn quantum_actor_gradient_matches_finite_difference() {
        let mut a = quantum_actor();
        let obs = [0.2, 0.8, 0.4, 0.6];
        let action = 2;
        let adv = -1.3;
        let grad = a.policy_gradient(&obs, action, adv).unwrap();
        let base = a.params();
        let eps = 1e-6;
        let loss = |a: &QuantumActor| -> f64 { -adv * a.probs(&obs).unwrap()[action].ln() };
        for p in (0..base.len()).step_by(7) {
            let mut pp = base.clone();
            pp[p] += eps;
            a.set_params(&pp).unwrap();
            let plus = loss(&a);
            pp[p] -= 2.0 * eps;
            a.set_params(&pp).unwrap();
            let minus = loss(&a);
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (grad[p] - fd).abs() < 1e-5,
                "param {p}: {} vs {fd}",
                grad[p]
            );
        }
    }

    #[test]
    fn entropy_regularised_gradient_matches_finite_difference() {
        let mut a = quantum_actor();
        let obs = [0.3, 0.6, 0.1, 0.9];
        let (action, adv, beta) = (1usize, 0.8, 0.3);
        let grad = a
            .policy_gradient_with_entropy(&obs, action, adv, beta)
            .unwrap();
        let base = a.params();
        let eps = 1e-6;
        // Loss = −adv·ln π[a] − β·H(π).
        let loss = |a: &QuantumActor| -> f64 {
            let p = a.probs(&obs).unwrap();
            -adv * p[action].ln() - beta * qmarl_neural::loss::entropy(&p)
        };
        for p in (0..base.len()).step_by(9) {
            let mut pp = base.clone();
            pp[p] += eps;
            a.set_params(&pp).unwrap();
            let plus = loss(&a);
            pp[p] -= 2.0 * eps;
            a.set_params(&pp).unwrap();
            let minus = loss(&a);
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (grad[p] - fd).abs() < 1e-5,
                "param {p}: {} vs {fd}",
                grad[p]
            );
        }
    }

    #[test]
    fn zero_entropy_coef_matches_plain_gradient() {
        let a = quantum_actor();
        let obs = [0.2, 0.4, 0.6, 0.8];
        let g1 = a.policy_gradient(&obs, 2, -1.1).unwrap();
        let g2 = a.policy_gradient_with_entropy(&obs, 2, -1.1, 0.0).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn batched_policy_gradients_match_serial_bit_exactly() {
        let obs: Vec<Vec<f64>> = (0..6)
            .map(|b| (0..4).map(|i| ((b * 4 + i) % 9) as f64 / 9.0).collect())
            .collect();
        let actions = [0usize, 3, 1, 2, 0, 1];
        let advantages = [0.7, -1.2, 0.0, 2.4, -0.3, 1.1];
        for method in [
            GradMethod::Adjoint,
            GradMethod::ParameterShift,
            GradMethod::FiniteDiff,
        ] {
            let a = quantum_actor().with_grad_method(method);
            for beta in [0.0, 0.25] {
                let batched = a
                    .policy_gradients_batch(&obs, &actions, &advantages, beta)
                    .unwrap();
                assert_eq!(batched.len(), obs.len());
                for (t, grad) in batched.iter().enumerate() {
                    let reference = a
                        .policy_gradient_with_entropy(&obs[t], actions[t], advantages[t], beta)
                        .unwrap();
                    assert_eq!(*grad, reference, "{method:?} β={beta} sample {t}");
                }
            }
        }
        // The MLP default route agrees with per-sample calls too.
        let a = ClassicalActor::new(&[4, 5, 4], 17).unwrap();
        let batched = a
            .policy_gradients_batch(&obs, &actions, &advantages, 0.1)
            .unwrap();
        for (t, grad) in batched.iter().enumerate() {
            let reference = a
                .policy_gradient_with_entropy(&obs[t], actions[t], advantages[t], 0.1)
                .unwrap();
            assert_eq!(*grad, reference);
        }
        // Bad shapes are rejected up front.
        let a = quantum_actor();
        assert!(a
            .policy_gradients_batch(&[vec![0.0; 3]], &[0], &[1.0], 0.0)
            .is_err());
    }

    #[test]
    fn sampled_actor_is_deterministic_and_routes_to_parameter_shift() {
        let backend = ExecutionBackend::Sampled {
            shots: 256,
            seed: 9,
        };
        // A sampled backend downgrades the default adjoint request.
        let a = quantum_actor().with_backend(backend.clone());
        assert_eq!(a.backend(), &backend);
        let obs: Vec<Vec<f64>> = (0..4)
            .map(|b| (0..4).map(|i| 0.11 * (b + i) as f64).collect())
            .collect();
        // Reproducible distributions that differ from the ideal ones.
        let p = a.probs(&obs[0]).unwrap();
        assert_eq!(p, a.probs(&obs[0]).unwrap());
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_ne!(p, quantum_actor().probs(&obs[0]).unwrap());
        // Batched gradients are bit-identical to per-sample calls: the
        // shot streams are content-addressed, not batch-positional.
        let actions = [0usize, 1, 2, 3];
        let advantages = [0.5, -0.9, 1.4, 0.0];
        let batched = a
            .policy_gradients_batch(&obs, &actions, &advantages, 0.1)
            .unwrap();
        for (t, grad) in batched.iter().enumerate() {
            let reference = a
                .policy_gradient_with_entropy(&obs[t], actions[t], advantages[t], 0.1)
                .unwrap();
            assert_eq!(*grad, reference, "sample {t}");
        }
    }

    #[test]
    fn classical_actor_budget_and_gradient() {
        let a = ClassicalActor::new(&[4, 5, 4], 7).unwrap();
        assert_eq!(a.param_count(), 49); // the paper's ≈50 budget
        let p = a.probs(&[0.3, 0.1, 0.5, 0.9]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let g = a.policy_gradient(&[0.3, 0.1, 0.5, 0.9], 1, 0.5).unwrap();
        assert_eq!(g.len(), 49);
    }

    #[test]
    fn classical_actor_rejects_bad_shapes() {
        assert!(ClassicalActor::new(&[4], 0).is_err());
        let mut a = ClassicalActor::new(&[4, 5, 4], 0).unwrap();
        assert!(a.probs(&[0.0; 5]).is_err());
        assert!(a.set_params(&[0.0; 3]).is_err());
    }

    #[test]
    fn quantum_actor_invalid_configs() {
        assert!(QuantumActor::new(4, 4, 5, 50, 0).is_err()); // 5 actions > 4 wires
        assert!(QuantumActor::new(4, 4, 4, 8, 0).is_err()); // budget ≤ head
    }

    #[test]
    fn select_action_argmax_and_sampling() {
        let probs = [0.1, 0.6, 0.2, 0.1];
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(select_action(&probs, true, &mut rng), 1);
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            counts[select_action(&probs, false, &mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 / 10_000.0 - probs[i]).abs() < 0.02, "action {i}");
        }
    }

    #[test]
    fn params_roundtrip_changes_policy() {
        let mut a = quantum_actor();
        let obs = [0.5, 0.5, 0.5, 0.5];
        let before = a.probs(&obs).unwrap();
        let mut p = a.params();
        for x in p.iter_mut().take(42) {
            *x += 0.7;
        }
        a.set_params(&p).unwrap();
        let after = a.probs(&obs).unwrap();
        assert!(before.iter().zip(&after).any(|(x, y)| (x - y).abs() > 1e-6));
    }
}
