//! Checkpointing: saving and restoring trained frameworks.
//!
//! Two granularities share the same dependency-free, diff-able plain-text
//! discipline (version-tagged, every `f64` in round-trip-exact scientific
//! notation):
//!
//! * [`FrameworkSnapshot`] — the **parameters only** (every actor's and
//!   the critic's flat vector). Enough to deploy or warm-start a policy.
//! * [`TrainerCheckpoint`] — the **full optimisation state** of a
//!   [`CtdeTrainer`]: parameters, target network, Adam moments, replay
//!   buffer, history, epoch counters and the trainer's RNG stream, so an
//!   interrupted run resumed through
//!   [`CtdeTrainer::restore_state`](crate::trainer::CtdeTrainer::restore_state)
//!   continues **bit-identically** to one that was never interrupted
//!   (on the vectorized/parallel collection surfaces, whose episode
//!   randomness derives from `(seed, round)` rather than live
//!   environment state).

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use qmarl_env::metrics::EpisodeMetrics;
use qmarl_neural::optim::AdamState;

use crate::error::CoreError;
use crate::policy::Actor;
use crate::replay::{Episode, Transition};
use crate::trainer::{CtdeTrainer, EpochRecord, TrainingHistory};
use crate::value::Critic;
use qmarl_env::multi_agent::MultiAgentEnv;

/// The format tag written at the top of every checkpoint.
const MAGIC: &str = "qmarl-checkpoint v1";

/// The format tag of the full-trainer-state format.
const TRAINER_MAGIC: &str = "qmarl-trainer-checkpoint v1";

/// Labels live on one line of the line-oriented codecs; a stray newline
/// would shift every following field (or, crafted, inject fields), so
/// line breaks are flattened to spaces at write time. Everything else
/// round-trips verbatim.
fn sanitize_label(label: &str) -> String {
    label.replace(['\n', '\r'], " ")
}

/// A framework's trained parameters, detached from the model objects.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrameworkSnapshot {
    /// Free-form label (usually the framework name).
    pub label: String,
    /// Per-actor flat parameter vectors.
    pub actor_params: Vec<Vec<f64>>,
    /// The critic's flat parameter vector.
    pub critic_params: Vec<f64>,
}

impl FrameworkSnapshot {
    /// Captures a trainer's current parameters.
    pub fn capture<E: MultiAgentEnv>(label: &str, trainer: &CtdeTrainer<E>) -> Self {
        FrameworkSnapshot {
            label: label.to_string(),
            actor_params: trainer.actors().iter().map(|a| a.params()).collect(),
            critic_params: trainer.critic().params(),
        }
    }

    /// Restores the parameters into matching actors and critic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ParamLenMismatch`] (or a config error on
    /// an actor-count mismatch) when architectures differ.
    pub fn restore(
        &self,
        actors: &mut [Box<dyn Actor>],
        critic: &mut dyn Critic,
    ) -> Result<(), CoreError> {
        if actors.len() != self.actor_params.len() {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint has {} actors, target has {}",
                self.actor_params.len(),
                actors.len()
            )));
        }
        for (actor, params) in actors.iter_mut().zip(&self.actor_params) {
            actor.set_params(params)?;
        }
        critic.set_params(&self.critic_params)
    }

    /// Serialises to the checkpoint text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{MAGIC}").expect("string write");
        writeln!(out, "label {}", sanitize_label(&self.label)).expect("string write");
        writeln!(out, "actors {}", self.actor_params.len()).expect("string write");
        for (i, params) in self.actor_params.iter().enumerate() {
            writeln!(out, "actor {i} {}", params.len()).expect("string write");
            for p in params {
                writeln!(out, "{p:e}").expect("string write");
            }
        }
        writeln!(out, "critic {}", self.critic_params.len()).expect("string write");
        for p in &self.critic_params {
            writeln!(out, "{p:e}").expect("string write");
        }
        out
    }

    /// Parses the checkpoint text format.
    ///
    /// Built for hostile input: a snapshot may be read by a hot-swap
    /// watcher while another process is still writing it, so every count
    /// is treated as a claim to verify line by line (never a trusted
    /// allocation size) and content after the critic section is rejected.
    /// Any truncation or corruption surfaces as
    /// [`CoreError::CorruptCheckpoint`] — this function does not panic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptCheckpoint`] describing the first
    /// syntax problem.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let bad = |msg: &str| CoreError::CorruptCheckpoint(format!("checkpoint parse: {msg}"));
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(bad("missing or wrong magic header"));
        }
        let label_line = lines.next().ok_or_else(|| bad("missing label"))?;
        let label = label_line
            .strip_prefix("label ")
            .ok_or_else(|| bad("malformed label line"))?
            .to_string();
        let n_actors: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("actors "))
            .ok_or_else(|| bad("missing actors count"))?
            .parse()
            .map_err(|_| bad("actors count not a number"))?;

        // A corrupt header can claim absurd counts; pre-allocating from
        // them would turn a torn file into an allocation abort. Capacity
        // is bounded and the vectors grow only as real lines arrive.
        const CAP: usize = 4096;
        let read_params =
            |lines: &mut std::str::Lines<'_>, n: usize| -> Result<Vec<f64>, CoreError> {
                let mut v = Vec::with_capacity(n.min(CAP));
                for _ in 0..n {
                    let line = lines.next().ok_or_else(|| bad("unexpected end of file"))?;
                    v.push(line.parse().map_err(|_| bad("malformed parameter"))?);
                }
                Ok(v)
            };

        let mut actor_params = Vec::with_capacity(n_actors.min(CAP));
        for i in 0..n_actors {
            let header = lines.next().ok_or_else(|| bad("missing actor header"))?;
            let rest = header
                .strip_prefix(&format!("actor {i} "))
                .ok_or_else(|| bad("malformed actor header"))?;
            let len: usize = rest.parse().map_err(|_| bad("actor length not a number"))?;
            actor_params.push(read_params(&mut lines, len)?);
        }
        let critic_header = lines.next().ok_or_else(|| bad("missing critic header"))?;
        let critic_len: usize = critic_header
            .strip_prefix("critic ")
            .ok_or_else(|| bad("malformed critic header"))?
            .parse()
            .map_err(|_| bad("critic length not a number"))?;
        let critic_params = read_params(&mut lines, critic_len)?;
        // The critic section ends the document; trailing content means a
        // torn or concatenated file, not a parseable prefix.
        if lines.next().is_some() {
            return Err(bad("trailing content after the critic section"));
        }
        Ok(FrameworkSnapshot {
            label,
            actor_params,
            critic_params,
        })
    }

    /// Writes the checkpoint to a file **atomically** (write to a `.tmp`
    /// sibling, then rename). A reader polling the directory — serve's
    /// hot-swap watcher — therefore never observes a half-written
    /// snapshot under the final name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptCheckpoint`] wrapping the I/O failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CoreError> {
        let path = path.as_ref();
        let io_err =
            |what: &str, e: std::io::Error| CoreError::CorruptCheckpoint(format!("{what}: {e}"));
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_text())
            .map_err(|e| io_err(&format!("write {}", tmp.display()), e))?;
        fs::rename(&tmp, path).map_err(|e| {
            io_err(
                &format!("rename {} -> {}", tmp.display(), path.display()),
                e,
            )
        })
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptCheckpoint`] on I/O or syntax
    /// problems.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CoreError> {
        let text = fs::read_to_string(path.as_ref()).map_err(|e| {
            CoreError::CorruptCheckpoint(format!("read {}: {e}", path.as_ref().display()))
        })?;
        FrameworkSnapshot::from_text(&text)
    }
}

/// The complete optimisation state of a [`CtdeTrainer`], detached from
/// the model and environment objects.
///
/// Captured by [`CtdeTrainer::capture_state`](crate::trainer::CtdeTrainer::capture_state)
/// and restored by [`CtdeTrainer::restore_state`](crate::trainer::CtdeTrainer::restore_state)
/// into a trainer built with the **same configuration** (the `seed` field
/// guards the pairing). The environment itself is deliberately absent:
/// the vectorized and parallel collection surfaces reseed every episode
/// from `(config.seed, parallel_rounds, episode index)`, so restoring the
/// round counter restores the exact episode stream.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainerCheckpoint {
    /// Free-form label (usually the sweep cell name).
    pub label: String,
    /// The `TrainConfig::seed` of the captured trainer; restore refuses a
    /// differently-seeded trainer (resume would silently diverge).
    pub seed: u64,
    /// Epochs completed.
    pub epoch: usize,
    /// Completed parallel/vectorized collection rounds.
    pub parallel_rounds: u64,
    /// The trainer's own RNG stream (serial rollout action sampling).
    pub rng_state: [u64; 4],
    /// Per-actor flat parameter vectors.
    pub actor_params: Vec<Vec<f64>>,
    /// The live critic `ψ`.
    pub critic_params: Vec<f64>,
    /// The target network `φ`.
    pub target_params: Vec<f64>,
    /// Per-actor Adam moments.
    pub actor_opts: Vec<AdamState>,
    /// The critic's Adam moments.
    pub critic_opt: AdamState,
    /// The replay buffer `D`, oldest episode first.
    pub replay: Vec<Episode>,
    /// The per-epoch history so far.
    pub history: TrainingHistory,
}

/// Writes one `f64` slice as a single space-separated line.
fn push_vec_line(out: &mut String, tag: &str, xs: &[f64]) {
    out.push_str(tag);
    for x in xs {
        write!(out, " {x:e}").expect("string write");
    }
    out.push('\n');
}

/// Parses a whitespace-separated `f64` line with a required tag prefix.
fn parse_vec_line(
    line: &str,
    tag: &str,
    bad: &dyn Fn(&str) -> CoreError,
) -> Result<Vec<f64>, CoreError> {
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| bad(&format!("expected a {tag:?} line, got {line:?}")))?;
    rest.split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| bad(&format!("malformed float {t:?}")))
        })
        .collect()
}

impl TrainerCheckpoint {
    /// Serialises to the trainer-checkpoint text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{TRAINER_MAGIC}").expect("string write");
        writeln!(out, "label {}", sanitize_label(&self.label)).expect("string write");
        writeln!(out, "seed {}", self.seed).expect("string write");
        writeln!(out, "epoch {}", self.epoch).expect("string write");
        writeln!(out, "rounds {}", self.parallel_rounds).expect("string write");
        let [s0, s1, s2, s3] = self.rng_state;
        writeln!(out, "rng {s0} {s1} {s2} {s3}").expect("string write");
        writeln!(out, "actors {}", self.actor_params.len()).expect("string write");
        for (i, params) in self.actor_params.iter().enumerate() {
            push_vec_line(&mut out, &format!("actor {i}"), params);
        }
        push_vec_line(&mut out, "critic", &self.critic_params);
        push_vec_line(&mut out, "target", &self.target_params);
        for (i, opt) in self.actor_opts.iter().enumerate() {
            writeln!(out, "opt actor {i} t {}", opt.t).expect("string write");
            push_vec_line(&mut out, "m", &opt.m);
            push_vec_line(&mut out, "v", &opt.v);
        }
        writeln!(out, "opt critic t {}", self.critic_opt.t).expect("string write");
        push_vec_line(&mut out, "m", &self.critic_opt.m);
        push_vec_line(&mut out, "v", &self.critic_opt.v);
        writeln!(out, "replay {}", self.replay.len()).expect("string write");
        for (i, ep) in self.replay.iter().enumerate() {
            writeln!(out, "episode {i} {}", ep.len()).expect("string write");
            for tr in ep.transitions() {
                writeln!(
                    out,
                    "step agents {} done {}",
                    tr.observations.len(),
                    u8::from(tr.done)
                )
                .expect("string write");
                push_vec_line(&mut out, "s", &tr.state);
                for o in &tr.observations {
                    push_vec_line(&mut out, "o", o);
                }
                out.push('u');
                for a in &tr.actions {
                    write!(out, " {a}").expect("string write");
                }
                out.push('\n');
                writeln!(out, "r {:e}", tr.reward).expect("string write");
                push_vec_line(&mut out, "ns", &tr.next_state);
                for o in &tr.next_observations {
                    push_vec_line(&mut out, "no", o);
                }
            }
        }
        writeln!(out, "history {}", self.history.len()).expect("string write");
        for r in self.history.records() {
            writeln!(
                out,
                "rec {} {} {:e} {:e} {:e} {:e} {:e} {:e}",
                r.epoch,
                r.metrics.len,
                r.metrics.total_reward,
                r.metrics.avg_queue,
                r.metrics.empty_ratio,
                r.metrics.overflow_ratio,
                r.critic_loss,
                r.mean_entropy,
            )
            .expect("string write");
        }
        out
    }

    /// Parses the trainer-checkpoint text format.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first syntax
    /// problem.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let bad = |msg: &str| CoreError::InvalidConfig(format!("trainer checkpoint parse: {msg}"));
        let mut lines = text.lines();
        let mut next = |what: &str| -> Result<&str, CoreError> {
            lines.next().ok_or_else(|| bad(&format!("missing {what}")))
        };
        if next("magic")? != TRAINER_MAGIC {
            return Err(bad("missing or wrong magic header"));
        }
        let label = next("label")?
            .strip_prefix("label ")
            .ok_or_else(|| bad("malformed label line"))?
            .to_string();
        let field = |line: &str, tag: &str| -> Result<u64, CoreError> {
            line.strip_prefix(tag)
                .and_then(|rest| rest.trim().parse().ok())
                .ok_or_else(|| bad(&format!("malformed {tag:?} line")))
        };
        let seed = field(next("seed")?, "seed ")?;
        let epoch = field(next("epoch")?, "epoch ")? as usize;
        let parallel_rounds = field(next("rounds")?, "rounds ")?;
        let rng_line = next("rng")?
            .strip_prefix("rng ")
            .ok_or_else(|| bad("malformed rng line"))?;
        let rng_words: Vec<u64> = rng_line
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| bad("malformed rng word")))
            .collect::<Result<_, _>>()?;
        let rng_state: [u64; 4] = rng_words
            .try_into()
            .map_err(|_| bad("rng line must hold 4 words"))?;
        let n_actors = field(next("actors")?, "actors ")? as usize;
        let mut actor_params = Vec::with_capacity(n_actors);
        for i in 0..n_actors {
            actor_params.push(parse_vec_line(
                next("actor params")?,
                &format!("actor {i}"),
                &bad,
            )?);
        }
        let critic_params = parse_vec_line(next("critic params")?, "critic", &bad)?;
        let target_params = parse_vec_line(next("target params")?, "target", &bad)?;
        let mut parse_opt = |header: String| -> Result<AdamState, CoreError> {
            let t = field(next("optimizer header")?, &format!("{header} t "))?;
            let m = parse_vec_line(next("opt m")?, "m", &bad)?;
            let v = parse_vec_line(next("opt v")?, "v", &bad)?;
            if m.len() != v.len() {
                return Err(bad("optimizer moment lengths differ"));
            }
            Ok(AdamState { m, v, t })
        };
        let mut actor_opts = Vec::with_capacity(n_actors);
        for i in 0..n_actors {
            actor_opts.push(parse_opt(format!("opt actor {i}"))?);
        }
        let critic_opt = parse_opt("opt critic".into())?;
        let n_episodes = field(next("replay")?, "replay ")? as usize;
        let mut replay = Vec::with_capacity(n_episodes);
        for i in 0..n_episodes {
            let len = field(next("episode header")?, &format!("episode {i} "))? as usize;
            let mut ep = Episode::new();
            for _ in 0..len {
                let header = next("step header")?
                    .strip_prefix("step agents ")
                    .ok_or_else(|| bad("malformed step header"))?;
                let (agents_str, done_str) = header
                    .split_once(" done ")
                    .ok_or_else(|| bad("malformed step header"))?;
                let n_agents: usize = agents_str
                    .parse()
                    .map_err(|_| bad("step agent count not a number"))?;
                let done = match done_str {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad("step done flag must be 0 or 1")),
                };
                let state = parse_vec_line(next("state")?, "s", &bad)?;
                let mut observations = Vec::with_capacity(n_agents);
                for _ in 0..n_agents {
                    observations.push(parse_vec_line(next("obs")?, "o", &bad)?);
                }
                let actions = next("actions")?
                    .strip_prefix('u')
                    .ok_or_else(|| bad("malformed action line"))?
                    .split_whitespace()
                    .map(|t| t.parse().map_err(|_| bad("malformed action")))
                    .collect::<Result<Vec<usize>, _>>()?;
                if actions.len() != n_agents {
                    return Err(bad("action count does not match agent count"));
                }
                let reward: f64 = next("reward")?
                    .strip_prefix("r ")
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("malformed reward line"))?;
                let next_state = parse_vec_line(next("next state")?, "ns", &bad)?;
                let mut next_observations = Vec::with_capacity(n_agents);
                for _ in 0..n_agents {
                    next_observations.push(parse_vec_line(next("next obs")?, "no", &bad)?);
                }
                ep.push(Transition {
                    state,
                    observations,
                    actions,
                    reward,
                    next_state,
                    next_observations,
                    done,
                });
            }
            replay.push(ep);
        }
        let n_records = field(next("history")?, "history ")? as usize;
        let mut history = TrainingHistory::default();
        for _ in 0..n_records {
            let rest = next("history record")?
                .strip_prefix("rec ")
                .ok_or_else(|| bad("malformed history record"))?;
            let words: Vec<&str> = rest.split_whitespace().collect();
            if words.len() != 8 {
                return Err(bad("history record must hold 8 fields"));
            }
            let int = |t: &str| -> Result<usize, CoreError> {
                t.parse().map_err(|_| bad("malformed history integer"))
            };
            let flt = |t: &str| -> Result<f64, CoreError> {
                t.parse().map_err(|_| bad("malformed history float"))
            };
            history.push_record(EpochRecord {
                epoch: int(words[0])?,
                metrics: EpisodeMetrics {
                    len: int(words[1])?,
                    total_reward: flt(words[2])?,
                    avg_queue: flt(words[3])?,
                    empty_ratio: flt(words[4])?,
                    overflow_ratio: flt(words[5])?,
                },
                critic_loss: flt(words[6])?,
                mean_entropy: flt(words[7])?,
            });
        }
        // The history section ends the document; trailing content means
        // a corrupt file (e.g. two checkpoints concatenated) and is
        // rejected rather than silently resumed from the first half.
        if lines.next().is_some() {
            return Err(bad("trailing content after the history section"));
        }
        Ok(TrainerCheckpoint {
            label,
            seed,
            epoch,
            parallel_rounds,
            rng_state,
            actor_params,
            critic_params,
            target_params,
            actor_opts,
            critic_opt,
            replay,
            history,
        })
    }

    /// Writes the checkpoint to a file **atomically** (write to a
    /// `.tmp` sibling, then rename), so a run killed mid-write can never
    /// leave a truncated checkpoint behind.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] wrapping the I/O failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CoreError> {
        let path = path.as_ref();
        let io_err =
            |what: &str, e: std::io::Error| CoreError::InvalidConfig(format!("{what}: {e}"));
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_text())
            .map_err(|e| io_err(&format!("write {}", tmp.display()), e))?;
        fs::rename(&tmp, path).map_err(|e| {
            io_err(
                &format!("rename {} -> {}", tmp.display(), path.display()),
                e,
            )
        })
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on I/O or syntax problems.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CoreError> {
        let text = fs::read_to_string(path.as_ref()).map_err(|e| {
            CoreError::InvalidConfig(format!("read {}: {e}", path.as_ref().display()))
        })?;
        TrainerCheckpoint::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::framework::{build_actors, build_critic, build_trainer, FrameworkKind};

    fn tiny_config() -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_default();
        c.env.episode_limit = 8;
        c
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let snap = FrameworkSnapshot {
            label: "Proposed".into(),
            actor_params: vec![vec![0.1, -2.5e-17, std::f64::consts::PI], vec![1.0]],
            critic_params: vec![f64::MIN_POSITIVE, -1234.5678901234567],
        };
        let parsed = FrameworkSnapshot::from_text(&snap.to_text()).expect("parses");
        assert_eq!(parsed, snap, "f64 round-trip must be bit-exact");
    }

    #[test]
    fn capture_and_restore_through_trainer() {
        let cfg = tiny_config();
        let mut trainer = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
        trainer.train(1).expect("trains");
        let snap = FrameworkSnapshot::capture("Proposed", &trainer);

        let mut actors =
            build_actors(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
        let mut critic =
            build_critic(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
        // Fresh models differ from the trained snapshot…
        assert_ne!(actors[0].params(), snap.actor_params[0]);
        snap.restore(&mut actors, critic.as_mut())
            .expect("restores");
        // …and match after restore.
        for (a, p) in actors.iter().zip(&snap.actor_params) {
            assert_eq!(a.params(), *p);
        }
        assert_eq!(critic.params(), snap.critic_params);
    }

    #[test]
    fn file_roundtrip() {
        let cfg = tiny_config();
        let trainer = build_trainer(FrameworkKind::Comp2, &cfg).expect("builds");
        let snap = FrameworkSnapshot::capture("Comp2", &trainer);
        let dir = std::env::temp_dir().join("qmarl_ckpt_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("comp2.ckpt");
        snap.save(&path).expect("saves");
        let loaded = FrameworkSnapshot::load(&path).expect("loads");
        assert_eq!(loaded, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(FrameworkSnapshot::from_text("").is_err());
        assert!(FrameworkSnapshot::from_text("wrong magic\n").is_err());
        assert!(
            FrameworkSnapshot::from_text("qmarl-checkpoint v1\nlabel x\nactors nope\n").is_err()
        );
        let truncated = "qmarl-checkpoint v1\nlabel x\nactors 1\nactor 0 3\n1.0\n";
        assert!(FrameworkSnapshot::from_text(truncated).is_err());
        let bad_param = "qmarl-checkpoint v1\nlabel x\nactors 0\ncritic 1\nnot-a-number\n";
        assert!(FrameworkSnapshot::from_text(bad_param).is_err());
        assert!(FrameworkSnapshot::load("/nonexistent/path/x.ckpt").is_err());
    }

    #[test]
    fn every_truncation_of_a_valid_snapshot_is_a_typed_error() {
        // A torn write can cut the file at any byte. Every prefix must
        // come back as CorruptCheckpoint — no panic, no partial parse
        // accepted as a complete snapshot.
        let snap = FrameworkSnapshot {
            label: "torn".into(),
            actor_params: vec![vec![0.25, -1.5e-3, 7.0], vec![1.0, 2.0]],
            critic_params: vec![-0.5, 0.125, 3.25],
        };
        let text = snap.to_text();
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let prefix = &text[..cut];
            match FrameworkSnapshot::from_text(prefix) {
                Err(CoreError::CorruptCheckpoint(_)) => {}
                Err(other) => panic!("cut at {cut}: wrong error variant {other:?}"),
                // Only cuts inside the final parameter line can still
                // parse (a float's prefix may be a valid shorter float —
                // the one tear the text format cannot see, which is why
                // `save` is atomic). Everything before it must error.
                Ok(parsed) => {
                    assert!(cut > text.len() - "3.25e0\n".len(), "cut at {cut}");
                    assert_eq!(parsed.actor_params, snap.actor_params, "cut at {cut}");
                    assert_eq!(parsed.critic_params.len(), snap.critic_params.len());
                }
            }
        }
    }

    #[test]
    fn corrupt_counts_cannot_trigger_huge_allocations() {
        // Header claims absurd sizes; parsing must fail on the missing
        // lines without ever allocating for the claimed count.
        let huge_actor = "qmarl-checkpoint v1\nlabel x\nactors 1\nactor 0 18446744073709551615\n";
        assert!(matches!(
            FrameworkSnapshot::from_text(huge_actor),
            Err(CoreError::CorruptCheckpoint(_))
        ));
        let huge_actors = "qmarl-checkpoint v1\nlabel x\nactors 9999999999999\n";
        assert!(matches!(
            FrameworkSnapshot::from_text(huge_actors),
            Err(CoreError::CorruptCheckpoint(_))
        ));
        let huge_critic = "qmarl-checkpoint v1\nlabel x\nactors 0\ncritic 987654321987654321\n";
        assert!(matches!(
            FrameworkSnapshot::from_text(huge_critic),
            Err(CoreError::CorruptCheckpoint(_))
        ));
    }

    #[test]
    fn trailing_content_and_concatenation_rejected() {
        let snap = FrameworkSnapshot {
            label: "t".into(),
            actor_params: vec![vec![1.0]],
            critic_params: vec![2.0],
        };
        let good = snap.to_text();
        assert!(FrameworkSnapshot::from_text(&good).is_ok());
        let doubled = format!("{good}{good}");
        assert!(matches!(
            FrameworkSnapshot::from_text(&doubled),
            Err(CoreError::CorruptCheckpoint(_))
        ));
        let garbage_tail = format!("{good}stray line\n");
        assert!(FrameworkSnapshot::from_text(&garbage_tail).is_err());
    }

    #[test]
    fn snapshot_save_is_atomic() {
        let snap = FrameworkSnapshot {
            label: "atomic".into(),
            actor_params: vec![vec![0.5; 4]],
            critic_params: vec![0.25; 3],
        };
        let dir = std::env::temp_dir().join("qmarl_snap_atomic_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("a.snap");
        snap.save(&path).expect("saves");
        // The tmp sibling is renamed away, never left behind.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(FrameworkSnapshot::load(&path).expect("loads"), snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trainer_checkpoint_text_roundtrip_is_exact() {
        // Capture a genuinely trained state (non-empty replay, moments,
        // history) and require a bit-exact text round trip.
        let cfg = tiny_config();
        let mut trainer = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
        trainer.train_vec(2, 2, 2).expect("trains");
        let ckpt = trainer.capture_state("roundtrip");
        assert!(!ckpt.replay.is_empty());
        assert!(ckpt.critic_opt.t > 0);
        assert_eq!(ckpt.history.len(), 2);
        let parsed = TrainerCheckpoint::from_text(&ckpt.to_text()).expect("parses");
        assert_eq!(
            parsed, ckpt,
            "full trainer state must round-trip bit-exactly"
        );
    }

    #[test]
    fn trainer_checkpoint_file_roundtrip() {
        let cfg = tiny_config();
        let mut trainer = build_trainer(FrameworkKind::Comp2, &cfg).expect("builds");
        trainer.train_vec(1, 2, 2).expect("trains");
        let ckpt = trainer.capture_state("file");
        let dir = std::env::temp_dir().join("qmarl_trainer_ckpt_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("cell.ckpt");
        ckpt.save(&path).expect("saves");
        // The atomic write leaves no temporary sibling behind.
        assert!(!path.with_extension("tmp").exists());
        let loaded = TrainerCheckpoint::load(&path).expect("loads");
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newline_in_label_cannot_break_the_line_codec() {
        // A label with embedded line breaks must still produce a
        // parseable file (breaks flatten to spaces), never a shifted or
        // field-injecting document.
        let snap = FrameworkSnapshot {
            label: "cell A\nnotes\rseed 5".into(),
            actor_params: vec![vec![1.0]],
            critic_params: vec![2.0],
        };
        let parsed = FrameworkSnapshot::from_text(&snap.to_text()).expect("parses");
        assert_eq!(parsed.label, "cell A notes seed 5");
        assert_eq!(parsed.actor_params, snap.actor_params);

        let cfg = tiny_config();
        let mut trainer = build_trainer(FrameworkKind::Comp2, &cfg).expect("builds");
        trainer.train_vec(1, 1, 1).expect("trains");
        let mut ckpt = trainer.capture_state("x\ninjected");
        let parsed = TrainerCheckpoint::from_text(&ckpt.to_text()).expect("parses");
        assert_eq!(parsed.label, "x injected");
        ckpt.label = parsed.label.clone();
        assert_eq!(
            parsed, ckpt,
            "everything but the flattened label round-trips"
        );
    }

    #[test]
    fn trainer_checkpoint_rejects_malformed_text() {
        assert!(TrainerCheckpoint::from_text("").is_err());
        assert!(TrainerCheckpoint::from_text("qmarl-checkpoint v1\n").is_err());
        let head = "qmarl-trainer-checkpoint v1\nlabel x\nseed 7\nepoch 1\nrounds 1\n";
        assert!(TrainerCheckpoint::from_text(head).is_err(), "truncated");
        let bad_rng = format!("{head}rng 1 2 3\n");
        assert!(TrainerCheckpoint::from_text(&bad_rng).is_err(), "short rng");
        let bad_actor = format!("{head}rng 1 2 3 4\nactors 1\nactor 0 nope\n");
        assert!(TrainerCheckpoint::from_text(&bad_actor).is_err());
        assert!(TrainerCheckpoint::load("/nonexistent/x.ckpt").is_err());

        // Trailing content (e.g. two concatenated checkpoints) is a
        // corrupt file, not a parseable prefix.
        let cfg = tiny_config();
        let trainer = build_trainer(FrameworkKind::Comp2, &cfg).expect("builds");
        let good = trainer.capture_state("t").to_text();
        assert!(TrainerCheckpoint::from_text(&good).is_ok());
        let doubled = format!("{good}{good}");
        assert!(TrainerCheckpoint::from_text(&doubled).is_err());
    }

    #[test]
    fn restore_validates_architecture() {
        let cfg = tiny_config();
        let snap = FrameworkSnapshot {
            label: "bad".into(),
            actor_params: vec![vec![0.0; 50]; 2], // wrong actor count
            critic_params: vec![0.0; 50],
        };
        let mut actors =
            build_actors(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
        let mut critic =
            build_critic(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
        assert!(snap.restore(&mut actors, critic.as_mut()).is_err());

        let snap2 = FrameworkSnapshot {
            label: "bad2".into(),
            actor_params: vec![vec![0.0; 7]; 4], // wrong param length
            critic_params: vec![0.0; 50],
        };
        assert!(snap2.restore(&mut actors, critic.as_mut()).is_err());
    }
}
