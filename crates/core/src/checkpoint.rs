//! Checkpointing: saving and restoring trained frameworks.
//!
//! A checkpoint is a plain-text file (version-tagged, one parameter per
//! line in round-trip-exact scientific notation) holding every actor's
//! and the critic's flat parameter vector. Text keeps the format
//! dependency-free and diff-able; exact `f64` round-tripping is asserted
//! by tests.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::error::CoreError;
use crate::policy::Actor;
use crate::trainer::CtdeTrainer;
use crate::value::Critic;
use qmarl_env::multi_agent::MultiAgentEnv;

/// The format tag written at the top of every checkpoint.
const MAGIC: &str = "qmarl-checkpoint v1";

/// A framework's trained parameters, detached from the model objects.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrameworkSnapshot {
    /// Free-form label (usually the framework name).
    pub label: String,
    /// Per-actor flat parameter vectors.
    pub actor_params: Vec<Vec<f64>>,
    /// The critic's flat parameter vector.
    pub critic_params: Vec<f64>,
}

impl FrameworkSnapshot {
    /// Captures a trainer's current parameters.
    pub fn capture<E: MultiAgentEnv>(label: &str, trainer: &CtdeTrainer<E>) -> Self {
        FrameworkSnapshot {
            label: label.to_string(),
            actor_params: trainer.actors().iter().map(|a| a.params()).collect(),
            critic_params: trainer.critic().params(),
        }
    }

    /// Restores the parameters into matching actors and critic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ParamLenMismatch`] (or a config error on
    /// an actor-count mismatch) when architectures differ.
    pub fn restore(
        &self,
        actors: &mut [Box<dyn Actor>],
        critic: &mut dyn Critic,
    ) -> Result<(), CoreError> {
        if actors.len() != self.actor_params.len() {
            return Err(CoreError::InvalidConfig(format!(
                "checkpoint has {} actors, target has {}",
                self.actor_params.len(),
                actors.len()
            )));
        }
        for (actor, params) in actors.iter_mut().zip(&self.actor_params) {
            actor.set_params(params)?;
        }
        critic.set_params(&self.critic_params)
    }

    /// Serialises to the checkpoint text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{MAGIC}").expect("string write");
        writeln!(out, "label {}", self.label).expect("string write");
        writeln!(out, "actors {}", self.actor_params.len()).expect("string write");
        for (i, params) in self.actor_params.iter().enumerate() {
            writeln!(out, "actor {i} {}", params.len()).expect("string write");
            for p in params {
                writeln!(out, "{p:e}").expect("string write");
            }
        }
        writeln!(out, "critic {}", self.critic_params.len()).expect("string write");
        for p in &self.critic_params {
            writeln!(out, "{p:e}").expect("string write");
        }
        out
    }

    /// Parses the checkpoint text format.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first syntax
    /// problem.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let bad = |msg: &str| CoreError::InvalidConfig(format!("checkpoint parse: {msg}"));
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(bad("missing or wrong magic header"));
        }
        let label_line = lines.next().ok_or_else(|| bad("missing label"))?;
        let label = label_line
            .strip_prefix("label ")
            .ok_or_else(|| bad("malformed label line"))?
            .to_string();
        let n_actors: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("actors "))
            .ok_or_else(|| bad("missing actors count"))?
            .parse()
            .map_err(|_| bad("actors count not a number"))?;

        let read_params =
            |lines: &mut std::str::Lines<'_>, n: usize| -> Result<Vec<f64>, CoreError> {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    let line = lines.next().ok_or_else(|| bad("unexpected end of file"))?;
                    v.push(line.parse().map_err(|_| bad("malformed parameter"))?);
                }
                Ok(v)
            };

        let mut actor_params = Vec::with_capacity(n_actors);
        for i in 0..n_actors {
            let header = lines.next().ok_or_else(|| bad("missing actor header"))?;
            let rest = header
                .strip_prefix(&format!("actor {i} "))
                .ok_or_else(|| bad("malformed actor header"))?;
            let len: usize = rest.parse().map_err(|_| bad("actor length not a number"))?;
            actor_params.push(read_params(&mut lines, len)?);
        }
        let critic_header = lines.next().ok_or_else(|| bad("missing critic header"))?;
        let critic_len: usize = critic_header
            .strip_prefix("critic ")
            .ok_or_else(|| bad("malformed critic header"))?
            .parse()
            .map_err(|_| bad("critic length not a number"))?;
        let critic_params = read_params(&mut lines, critic_len)?;
        Ok(FrameworkSnapshot {
            label,
            actor_params,
            critic_params,
        })
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] wrapping the I/O failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CoreError> {
        fs::write(path.as_ref(), self.to_text()).map_err(|e| {
            CoreError::InvalidConfig(format!("write {}: {e}", path.as_ref().display()))
        })
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on I/O or syntax problems.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CoreError> {
        let text = fs::read_to_string(path.as_ref()).map_err(|e| {
            CoreError::InvalidConfig(format!("read {}: {e}", path.as_ref().display()))
        })?;
        FrameworkSnapshot::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::framework::{build_actors, build_critic, build_trainer, FrameworkKind};

    fn tiny_config() -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_default();
        c.env.episode_limit = 8;
        c
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let snap = FrameworkSnapshot {
            label: "Proposed".into(),
            actor_params: vec![vec![0.1, -2.5e-17, std::f64::consts::PI], vec![1.0]],
            critic_params: vec![f64::MIN_POSITIVE, -1234.5678901234567],
        };
        let parsed = FrameworkSnapshot::from_text(&snap.to_text()).expect("parses");
        assert_eq!(parsed, snap, "f64 round-trip must be bit-exact");
    }

    #[test]
    fn capture_and_restore_through_trainer() {
        let cfg = tiny_config();
        let mut trainer = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
        trainer.train(1).expect("trains");
        let snap = FrameworkSnapshot::capture("Proposed", &trainer);

        let mut actors =
            build_actors(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
        let mut critic =
            build_critic(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
        // Fresh models differ from the trained snapshot…
        assert_ne!(actors[0].params(), snap.actor_params[0]);
        snap.restore(&mut actors, critic.as_mut())
            .expect("restores");
        // …and match after restore.
        for (a, p) in actors.iter().zip(&snap.actor_params) {
            assert_eq!(a.params(), *p);
        }
        assert_eq!(critic.params(), snap.critic_params);
    }

    #[test]
    fn file_roundtrip() {
        let cfg = tiny_config();
        let trainer = build_trainer(FrameworkKind::Comp2, &cfg).expect("builds");
        let snap = FrameworkSnapshot::capture("Comp2", &trainer);
        let dir = std::env::temp_dir().join("qmarl_ckpt_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("comp2.ckpt");
        snap.save(&path).expect("saves");
        let loaded = FrameworkSnapshot::load(&path).expect("loads");
        assert_eq!(loaded, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(FrameworkSnapshot::from_text("").is_err());
        assert!(FrameworkSnapshot::from_text("wrong magic\n").is_err());
        assert!(
            FrameworkSnapshot::from_text("qmarl-checkpoint v1\nlabel x\nactors nope\n").is_err()
        );
        let truncated = "qmarl-checkpoint v1\nlabel x\nactors 1\nactor 0 3\n1.0\n";
        assert!(FrameworkSnapshot::from_text(truncated).is_err());
        let bad_param = "qmarl-checkpoint v1\nlabel x\nactors 0\ncritic 1\nnot-a-number\n";
        assert!(FrameworkSnapshot::from_text(bad_param).is_err());
        assert!(FrameworkSnapshot::load("/nonexistent/path/x.ckpt").is_err());
    }

    #[test]
    fn restore_validates_architecture() {
        let cfg = tiny_config();
        let snap = FrameworkSnapshot {
            label: "bad".into(),
            actor_params: vec![vec![0.0; 50]; 2], // wrong actor count
            critic_params: vec![0.0; 50],
        };
        let mut actors =
            build_actors(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
        let mut critic =
            build_critic(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
        assert!(snap.restore(&mut actors, critic.as_mut()).is_err());

        let snap2 = FrameworkSnapshot {
            label: "bad2".into(),
            actor_params: vec![vec![0.0; 7]; 4], // wrong param length
            critic_params: vec![0.0; 50],
        };
        assert!(snap2.restore(&mut actors, critic.as_mut()).is_err());
    }
}
