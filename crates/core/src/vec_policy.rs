//! Bridges the trainer's per-agent actors to the vectorized collector.
//!
//! [`ActorsVecPolicy`] implements `qmarl_runtime`'s `VecRolloutPolicy`
//! over the trainer's `Box<dyn Actor>` set. At every lockstep tick it
//! evaluates **all agents of all live lanes** and then samples exactly
//! like the serial engine (per lane, agent order), so vectorized traces
//! are bit-identical to serial ones. Two evaluation routes:
//!
//! * **Flat circuit batch** — when every actor reports a compiled-runtime
//!   handle ([`Actor::runtime_handle`]) over the *same* compiled circuit
//!   (the paper's setting: N same-shaped VQC actors with private
//!   weights), the whole tick becomes one
//!   `BatchExecutor::expectation_batch_prebound` call of
//!   `lanes × agents` circuits — each agent's parameters prebound once
//!   per collection so the executor walks trig-free schedules.
//! * **Per-agent batches** — otherwise (classical MLP actors, mixed
//!   sets), each agent's distribution is computed over all lanes via
//!   [`Actor::probs_batch`].
//!
//! Both routes apply the same scaling/readout/head/softmax functions as
//! [`Actor::probs`], so the choice of route never changes a single bit of
//! the result (asserted in tests).

use rand::rngs::StdRng;

use qmarl_neural::prelude::{entropy, softmax};
use qmarl_runtime::vec_rollout::{VecDecision, VecRolloutPolicy};

use crate::error::CoreError;
use crate::policy::{select_action, Actor};

/// Pre-split flat-batch state: every actor shares one compiled circuit.
/// Parameters are split **and prebound** once — each agent's frozen
/// circuit parameters resolve to a
/// [`qmarl_runtime::prebound::PreboundCircuit`] whose parameter-only
/// rotation trig is hoisted out of the per-circuit loop entirely.
///
/// The batch owns everything it needs (the `CompiledVqc` clone shares the
/// cached `Arc<CompiledCircuit>`; scales/biases are copied — a handful of
/// `f64` per agent), so it can outlive the borrow it was built from. The
/// trainer rebuilds one per collection; the serving layer builds one at
/// policy-load time and reuses it for every micro-batch tick.
pub(crate) struct FlatBatch {
    compiled: qmarl_runtime::qnn::CompiledVqc,
    prebound: Vec<qmarl_runtime::prebound::PreboundCircuit>,
    scales: Vec<Vec<f64>>,
    biases: Vec<Vec<f64>>,
}

impl FlatBatch {
    /// Builds the flat-route state when every actor runs the same
    /// compiled circuit; `None` selects the per-agent route.
    pub(crate) fn build(actors: &[Box<dyn Actor>]) -> Option<FlatBatch> {
        let first = actors.first()?.runtime_handle()?.0;
        let mut prebound = Vec::with_capacity(actors.len());
        let mut scales = Vec::with_capacity(actors.len());
        let mut biases = Vec::with_capacity(actors.len());
        for actor in actors {
            let (compiled, params) = actor.runtime_handle()?;
            // One schedule, one scaling, one readout, one head layout —
            // model equality covers them all; the Arc pointer check makes
            // the shared compilation explicit. The prebound fast path
            // evaluates exact statevectors, so any non-Ideal execution
            // backend opts the whole tick out (the per-agent route's
            // `probs_batch` is backend-aware and, by the content-addressed
            // seed contract, still bit-identical to serial collection).
            if compiled.model() != first.model()
                || !std::sync::Arc::ptr_eq(compiled.compiled(), first.compiled())
                || !compiled.backend().is_ideal()
            {
                return None;
            }
            let (c, s, b) = compiled.model().split_params(params).ok()?;
            prebound.push(qmarl_runtime::prebound::prebind(compiled.compiled(), c).ok()?);
            scales.push(s.to_vec());
            biases.push(b.to_vec());
        }
        Some(FlatBatch {
            compiled: first.clone(),
            prebound,
            scales,
            biases,
        })
    }
}

/// The trainer's frozen actors as a vectorized lockstep policy.
pub(crate) struct ActorsVecPolicy<'a> {
    actors: &'a [Box<dyn Actor>],
    deterministic: bool,
    obs_dim: usize,
    flat: Option<FlatBatch>,
}

impl<'a> ActorsVecPolicy<'a> {
    /// Builds the policy, choosing the flat route when every actor runs
    /// the same compiled circuit.
    pub(crate) fn new(actors: &'a [Box<dyn Actor>], obs_dim: usize, deterministic: bool) -> Self {
        let flat = FlatBatch::build(actors);
        ActorsVecPolicy {
            actors,
            deterministic,
            obs_dim,
            flat,
        }
    }

    /// Builds the policy without probing for the flat route — for callers
    /// that hold a long-lived [`FlatBatch`] of their own (the serving
    /// layer) and pass it per call through [`ActorsVecPolicy::act_with`].
    pub(crate) fn bare(actors: &'a [Box<dyn Actor>], obs_dim: usize, deterministic: bool) -> Self {
        ActorsVecPolicy {
            actors,
            deterministic,
            obs_dim,
            flat: None,
        }
    }

    /// Whether this policy fuses the tick into one flat circuit batch.
    #[cfg(test)]
    pub(crate) fn is_flat(&self) -> bool {
        self.flat.is_some()
    }

    /// One lockstep tick against an explicitly supplied flat batch (or
    /// the per-agent route when `None`). This is [`act_vec`] with the
    /// route decision lifted out, so a caller owning a prebound
    /// [`FlatBatch`] does not pay the prebind again on every tick.
    ///
    /// [`act_vec`]: VecRolloutPolicy::act_vec
    pub(crate) fn act_with(
        &self,
        flat: Option<&FlatBatch>,
        observations: &[f64],
        lanes: &[usize],
        rngs: &mut [StdRng],
    ) -> Result<VecDecision, CoreError> {
        match flat {
            Some(flat) => self.act_flat(flat, observations, lanes, rngs),
            None => self.act_per_agent(observations, lanes, rngs),
        }
    }

    /// The flat route: one executor call for the whole tick, grouped by
    /// agent so each agent's prebound schedule covers all its lanes.
    fn act_flat(
        &self,
        flat: &FlatBatch,
        observations: &[f64],
        lanes: &[usize],
        rngs: &mut [StdRng],
    ) -> Result<VecDecision, CoreError> {
        let (na, od) = (self.actors.len(), self.obs_dim);
        let model = flat.compiled.model();
        let scaling = model.input_scaling();
        let scaled: Vec<f64> = observations.iter().map(|&x| scaling.apply(x)).collect();
        let groups: Vec<qmarl_runtime::batch::PreboundGroup<'_>> = (0..na)
            .map(|n| qmarl_runtime::batch::PreboundGroup {
                circuit: &flat.prebound[n],
                inputs: (0..lanes.len())
                    .map(|row| {
                        let start = (row * na + n) * od;
                        &scaled[start..start + od]
                    })
                    .collect(),
            })
            .collect();
        let raws = flat
            .compiled
            .executor()
            .expectation_batch_prebound(model.readout(), &groups)?;

        self.sample_rows(lanes, rngs, |row, n| {
            let logits = model.apply_head(&raws[n][row], &flat.scales[n], &flat.biases[n]);
            Ok(softmax(&logits))
        })
    }

    /// The generic route: one [`Actor::probs_batch`] call per agent.
    fn act_per_agent(
        &self,
        observations: &[f64],
        lanes: &[usize],
        rngs: &mut [StdRng],
    ) -> Result<VecDecision, CoreError> {
        let (na, od) = (self.actors.len(), self.obs_dim);
        let mut per_agent: Vec<Vec<Vec<f64>>> = Vec::with_capacity(na);
        for (n, actor) in self.actors.iter().enumerate() {
            let batch: Vec<Vec<f64>> = (0..lanes.len())
                .map(|row| {
                    let start = (row * na + n) * od;
                    observations[start..start + od].to_vec()
                })
                .collect();
            per_agent.push(actor.probs_batch(&batch)?);
        }

        self.sample_rows(lanes, rngs, |row, n| {
            Ok(std::mem::take(&mut per_agent[n][row]))
        })
    }

    /// The shared sampling discipline — this loop IS the bit-exactness
    /// contract with the serial engine: one distribution per agent in
    /// agent order per lane, one RNG draw per sample, entropy folded in
    /// the same order. Both evaluation routes must go through it so they
    /// cannot drift apart.
    fn sample_rows<F>(
        &self,
        lanes: &[usize],
        rngs: &mut [StdRng],
        mut probs_for: F,
    ) -> Result<VecDecision, CoreError>
    where
        F: FnMut(usize, usize) -> Result<Vec<f64>, CoreError>,
    {
        let na = self.actors.len();
        let mut actions = Vec::with_capacity(lanes.len() * na);
        let mut aux = Vec::with_capacity(lanes.len());
        for (row, &lane) in lanes.iter().enumerate() {
            let mut entropy_sum = 0.0;
            for n in 0..na {
                let probs = probs_for(row, n)?;
                entropy_sum += entropy(&probs);
                actions.push(select_action(&probs, self.deterministic, &mut rngs[lane]));
            }
            aux.push(entropy_sum / na as f64);
        }
        Ok(VecDecision { actions, aux })
    }
}

impl VecRolloutPolicy for ActorsVecPolicy<'_> {
    type Error = CoreError;

    fn act_vec(
        &mut self,
        observations: &[f64],
        lanes: &[usize],
        rngs: &mut [StdRng],
    ) -> Result<VecDecision, CoreError> {
        self.act_with(self.flat.as_ref(), observations, lanes, rngs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ClassicalActor, QuantumActor};
    use rand::SeedableRng;

    fn quantum_actors(n: usize) -> Vec<Box<dyn Actor>> {
        (0..n)
            .map(|i| {
                Box::new(QuantumActor::new(4, 4, 4, 50, 10 + i as u64).unwrap()) as Box<dyn Actor>
            })
            .collect()
    }

    fn classical_actors(n: usize) -> Vec<Box<dyn Actor>> {
        (0..n)
            .map(|i| {
                Box::new(ClassicalActor::new(&[4, 5, 4], 10 + i as u64).unwrap()) as Box<dyn Actor>
            })
            .collect()
    }

    fn obs_slab(rows: usize, na: usize, od: usize) -> Vec<f64> {
        (0..rows * na * od)
            .map(|i| (i % 13) as f64 / 13.0)
            .collect()
    }

    fn decide(actors: &[Box<dyn Actor>], deterministic: bool) -> (bool, VecDecision) {
        let mut policy = ActorsVecPolicy::new(actors, 4, deterministic);
        let lanes: Vec<usize> = (0..3).collect();
        let mut rngs: Vec<StdRng> = (0..3).map(|i| StdRng::seed_from_u64(90 + i)).collect();
        let obs = obs_slab(3, actors.len(), 4);
        let flat = policy.is_flat();
        (flat, policy.act_vec(&obs, &lanes, &mut rngs).unwrap())
    }

    #[test]
    fn quantum_set_takes_the_flat_route() {
        let actors = quantum_actors(4);
        let (flat, d) = decide(&actors, true);
        assert!(flat, "same-shaped quantum actors must fuse");
        assert_eq!(d.actions.len(), 12);
        assert_eq!(d.aux.len(), 3);
        assert!(d.aux.iter().all(|&h| h > 0.0));
    }

    #[test]
    fn classical_set_takes_the_per_agent_route() {
        let actors = classical_actors(4);
        let (flat, d) = decide(&actors, true);
        assert!(!flat, "MLP actors have no compiled handle");
        assert_eq!(d.actions.len(), 12);
    }

    #[test]
    fn flat_and_per_agent_routes_are_bit_identical() {
        // Force the generic route over the same quantum actors by
        // evaluating through probs_batch, and compare with the flat route
        // under identical RNG streams.
        let actors = quantum_actors(4);
        let obs = obs_slab(3, 4, 4);
        let lanes: Vec<usize> = (0..3).collect();

        let mut flat_policy = ActorsVecPolicy::new(&actors, 4, false);
        assert!(flat_policy.is_flat());
        let mut rngs_a: Vec<StdRng> = (0..3).map(|i| StdRng::seed_from_u64(7 + i)).collect();
        let a = flat_policy.act_vec(&obs, &lanes, &mut rngs_a).unwrap();

        let mut generic = ActorsVecPolicy::new(&actors, 4, false);
        generic.flat = None;
        let mut rngs_b: Vec<StdRng> = (0..3).map(|i| StdRng::seed_from_u64(7 + i)).collect();
        let b = generic.act_vec(&obs, &lanes, &mut rngs_b).unwrap();

        assert_eq!(a, b, "evaluation route must not change any bit");
    }

    #[test]
    fn stochastic_backends_opt_out_of_the_flat_route() {
        // The prebound fast path runs exact statevectors; a sampled
        // backend must force the backend-aware per-agent route instead of
        // silently executing ideal circuits.
        let actors: Vec<Box<dyn Actor>> = (0..4)
            .map(|i| {
                Box::new(
                    QuantumActor::new(4, 4, 4, 50, 10 + i as u64)
                        .unwrap()
                        .with_backend(qmarl_runtime::backend::ExecutionBackend::Sampled {
                            shots: 64,
                            seed: 1,
                        }),
                ) as Box<dyn Actor>
            })
            .collect();
        let policy = ActorsVecPolicy::new(&actors, 4, true);
        assert!(!policy.is_flat());
        let (_, d) = decide(&actors, true);
        assert_eq!(d.actions.len(), 12);
    }

    #[test]
    fn mixed_actor_sets_fall_back() {
        let mut actors = quantum_actors(3);
        actors.push(Box::new(ClassicalActor::new(&[4, 5, 4], 3).unwrap()));
        let policy = ActorsVecPolicy::new(&actors, 4, true);
        assert!(!policy.is_flat());
    }

    #[test]
    fn differently_shaped_quantum_actors_fall_back() {
        let mut actors = quantum_actors(3);
        // Same qubit count but a different parameter budget → different
        // circuit → different compiled schedule.
        actors.push(Box::new(QuantumActor::new(4, 4, 4, 30, 9).unwrap()));
        let policy = ActorsVecPolicy::new(&actors, 4, true);
        assert!(!policy.is_flat());
    }
}
