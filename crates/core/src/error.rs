//! Error type for the QMARL framework layer.

use std::error::Error;
use std::fmt;

/// Errors surfaced while building or training QMARL frameworks.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying VQC layer failed.
    Vqc(qmarl_vqc::error::VqcError),
    /// The environment failed.
    Env(qmarl_env::error::EnvError),
    /// The batched execution runtime failed.
    Runtime(qmarl_runtime::error::RuntimeError),
    /// A parameter vector had the wrong length.
    ParamLenMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// An observation/state vector had the wrong length.
    FeatureLenMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// A training configuration value was rejected.
    InvalidConfig(String),
    /// A checkpoint file was unreadable, truncated or corrupt.
    ///
    /// Distinct from [`CoreError::InvalidConfig`] so callers that watch a
    /// checkpoint directory (the serving hot-swap path) can skip torn or
    /// half-written files without swallowing genuine configuration
    /// mistakes.
    CorruptCheckpoint(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Vqc(e) => write!(f, "vqc error: {e}"),
            CoreError::Env(e) => write!(f, "environment error: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
            CoreError::ParamLenMismatch { expected, actual } => {
                write!(f, "expected {expected} parameters, got {actual}")
            }
            CoreError::FeatureLenMismatch { expected, actual } => {
                write!(
                    f,
                    "expected a {expected}-dimensional feature vector, got {actual}"
                )
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid training config: {msg}"),
            CoreError::CorruptCheckpoint(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Vqc(e) => Some(e),
            CoreError::Env(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qmarl_vqc::error::VqcError> for CoreError {
    fn from(e: qmarl_vqc::error::VqcError) -> Self {
        CoreError::Vqc(e)
    }
}

impl From<qmarl_env::error::EnvError> for CoreError {
    fn from(e: qmarl_env::error::EnvError) -> Self {
        CoreError::Env(e)
    }
}

impl From<qmarl_runtime::error::RuntimeError> for CoreError {
    fn from(e: qmarl_runtime::error::RuntimeError) -> Self {
        // Length mismatches keep their specific core variants so callers'
        // error matching is unchanged by the runtime rewiring.
        match e {
            qmarl_runtime::error::RuntimeError::ParamLenMismatch { expected, actual } => {
                CoreError::ParamLenMismatch { expected, actual }
            }
            qmarl_runtime::error::RuntimeError::InputLenMismatch { expected, actual } => {
                CoreError::FeatureLenMismatch { expected, actual }
            }
            qmarl_runtime::error::RuntimeError::Vqc(e) => CoreError::Vqc(e),
            qmarl_runtime::error::RuntimeError::Env(e) => CoreError::Env(e),
            other => CoreError::Runtime(other),
        }
    }
}

impl<E: Into<CoreError>> From<qmarl_runtime::rollout::RolloutError<E>> for CoreError {
    fn from(e: qmarl_runtime::rollout::RolloutError<E>) -> Self {
        match e {
            qmarl_runtime::rollout::RolloutError::Env(e) => CoreError::Env(e),
            qmarl_runtime::rollout::RolloutError::Policy(e) => e.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CoreError::from(qmarl_vqc::error::VqcError::InvalidConfig("x".into()));
        assert!(e.to_string().contains("vqc error"));
        assert!(e.source().is_some());
        let e = CoreError::from(qmarl_env::error::EnvError::EpisodeOver);
        assert!(e.source().is_some());
        let e = CoreError::InvalidConfig("bad gamma".into());
        assert!(e.source().is_none());
        assert!(!CoreError::ParamLenMismatch {
            expected: 1,
            actual: 2
        }
        .to_string()
        .is_empty());
        assert!(!CoreError::FeatureLenMismatch {
            expected: 1,
            actual: 2
        }
        .to_string()
        .is_empty());
    }
}
