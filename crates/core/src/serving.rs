//! Deployable policies: the serving-side view of a trained framework.
//!
//! Training needs the whole CTDE apparatus — critic, replay buffer,
//! optimisers. Execution needs none of it: the paper's deployment story
//! is decentralized actors answering observation streams with argmax
//! actions. [`ServablePolicy`] is that object: an owned actor set plus a
//! **prebound** flat-batch plan built once at load time, so an inference
//! server can coalesce concurrent requests into a single
//! `expectation_batch_prebound` lane-slab execution per tick without
//! re-resolving parameter trig on the hot path.
//!
//! Two entry points, one contract:
//!
//! * [`ServablePolicy::act`] — the single-request reference path:
//!   per-agent [`Actor::probs`] followed by the deterministic
//!   [`select_action`] rule.
//! * [`ServablePolicy::act_batch`] — the coalesced path: all requests of
//!   a micro-batch tick evaluated through the same
//!   [`ActorsVecPolicy`](crate::vec_policy) bridge the vectorized trainer
//!   uses (flat prebound slab for same-shaped quantum actors on the
//!   `Ideal` backend, backend-aware `probs_batch` otherwise).
//!
//! The two are **bit-identical** for every registered scenario ×
//! framework × {`Ideal`, `Sampled`} backend — asserted by this module's
//! tests. Batching is a latency/throughput decision, never a numerics
//! decision.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qmarl_runtime::backend::ExecutionBackend;

use crate::checkpoint::FrameworkSnapshot;
use crate::config::TrainConfig;
use crate::error::CoreError;
use crate::framework::{actors_from_snapshot, FrameworkKind};
use crate::policy::{select_action, Actor};
use crate::vec_policy::{ActorsVecPolicy, FlatBatch};

/// A frozen actor set packaged for inference serving.
///
/// Owns its actors (no borrow into a trainer) and, when every actor runs
/// the same compiled circuit on the `Ideal` backend, a prebound
/// flat-batch plan reused by every [`act_batch`](ServablePolicy::act_batch)
/// call. Actions are selected deterministically (argmax — the paper's
/// execution-time rule), so serving the same observation always returns
/// the same action, batched or not.
pub struct ServablePolicy {
    actors: Vec<Box<dyn Actor>>,
    flat: Option<FlatBatch>,
    obs_dim: usize,
    n_actions: usize,
    label: String,
}

impl std::fmt::Debug for ServablePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServablePolicy")
            .field("label", &self.label)
            .field("n_agents", &self.actors.len())
            .field("obs_dim", &self.obs_dim)
            .field("n_actions", &self.n_actions)
            .field("flat", &self.flat.is_some())
            .finish()
    }
}

impl ServablePolicy {
    /// Packages an actor set for serving. The set must be non-empty and
    /// dimensionally uniform (one joint request carries every agent's
    /// observation).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on an empty or ragged set.
    pub fn from_actors(label: &str, actors: Vec<Box<dyn Actor>>) -> Result<Self, CoreError> {
        let first = actors.first().ok_or_else(|| {
            CoreError::InvalidConfig("a servable policy needs at least one actor".into())
        })?;
        let (obs_dim, n_actions) = (first.obs_dim(), first.n_actions());
        for (n, actor) in actors.iter().enumerate() {
            if actor.obs_dim() != obs_dim || actor.n_actions() != n_actions {
                return Err(CoreError::InvalidConfig(format!(
                    "actor {n} has shape {}→{}, actor 0 has {obs_dim}→{n_actions}; \
                     a servable policy must be dimensionally uniform",
                    actor.obs_dim(),
                    actor.n_actions()
                )));
            }
        }
        let flat = FlatBatch::build(&actors);
        Ok(ServablePolicy {
            actors,
            flat,
            obs_dim,
            n_actions,
            label: label.to_string(),
        })
    }

    /// Rebuilds a framework's actors from a snapshot and packages them —
    /// the checkpoint-file → inference-server constructor, for any
    /// framework × scenario × backend cell
    /// (see [`actors_from_snapshot`]).
    ///
    /// # Errors
    ///
    /// Returns construction and restore errors (count/length mismatches
    /// when the snapshot was trained on a different cell).
    pub fn from_snapshot(
        snapshot: &FrameworkSnapshot,
        kind: FrameworkKind,
        scenario: &str,
        backend: &ExecutionBackend,
        train: &TrainConfig,
    ) -> Result<Self, CoreError> {
        let actors = actors_from_snapshot(snapshot, kind, scenario, backend, train)?;
        ServablePolicy::from_actors(&snapshot.label, actors)
    }

    /// The number of agents answered per request.
    pub fn n_agents(&self) -> usize {
        self.actors.len()
    }

    /// Observation dimension per agent.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Size of each agent's action set.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The policy's label (usually the snapshot label).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Flat length of one joint-observation request
    /// (`n_agents × obs_dim`).
    pub fn request_len(&self) -> usize {
        self.actors.len() * self.obs_dim
    }

    /// Whether batched ticks fuse into one prebound lane-slab execution
    /// (same-shaped quantum actors on the `Ideal` backend).
    pub fn is_prebound(&self) -> bool {
        self.flat.is_some()
    }

    /// Serves one joint observation through the single-request reference
    /// path: per-agent [`Actor::probs`], deterministic action selection.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] when `obs` is not one
    /// flat `n_agents × obs_dim` slab.
    pub fn act(&self, obs: &[f64]) -> Result<Vec<usize>, CoreError> {
        if obs.len() != self.request_len() {
            return Err(CoreError::FeatureLenMismatch {
                expected: self.request_len(),
                actual: obs.len(),
            });
        }
        // Deterministic selection never draws; the RNG is a signature
        // artifact of the shared `select_action` rule.
        let mut rng = StdRng::seed_from_u64(0);
        let mut actions = Vec::with_capacity(self.actors.len());
        for (n, actor) in self.actors.iter().enumerate() {
            let probs = actor.probs(&obs[n * self.obs_dim..(n + 1) * self.obs_dim])?;
            actions.push(select_action(&probs, true, &mut rng));
        }
        Ok(actions)
    }

    /// Serves a coalesced micro-batch of `requests` joint observations in
    /// one tick: quantum actor sets run as **one**
    /// `expectation_batch_prebound` lane-slab call over the plan prebound
    /// at load time; other sets run one backend-aware
    /// [`Actor::probs_batch`] call per agent. Returns
    /// `requests × n_agents` actions, row-major, bit-identical to calling
    /// [`ServablePolicy::act`] per request.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureLenMismatch`] when `obs` is not
    /// `requests` flat request slabs.
    pub fn act_batch(&self, obs: &[f64], requests: usize) -> Result<Vec<usize>, CoreError> {
        if obs.len() != requests * self.request_len() {
            return Err(CoreError::FeatureLenMismatch {
                expected: requests * self.request_len(),
                actual: obs.len(),
            });
        }
        if requests == 0 {
            return Ok(Vec::new());
        }
        let bridge = ActorsVecPolicy::bare(&self.actors, self.obs_dim, true);
        let lanes: Vec<usize> = (0..requests).collect();
        let mut rngs: Vec<StdRng> = (0..requests).map(|_| StdRng::seed_from_u64(0)).collect();
        let decision = bridge.act_with(self.flat.as_ref(), obs, &lanes, &mut rngs)?;
        Ok(decision.actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::build_scenario_actors;

    fn cell_policy(
        kind: FrameworkKind,
        scenario: &str,
        backend: &ExecutionBackend,
    ) -> ServablePolicy {
        let train = TrainConfig::paper_default();
        let actors = build_scenario_actors(kind, scenario, backend, &train)
            .unwrap_or_else(|e| panic!("{kind} × {scenario}: {e}"));
        ServablePolicy::from_actors(&format!("{kind}@{scenario}"), actors).unwrap()
    }

    fn obs_slab(rows: usize, len: usize) -> Vec<f64> {
        (0..rows * len).map(|i| (i % 17) as f64 / 17.0).collect()
    }

    /// The batching-parity contract: coalesced micro-batched action
    /// selection is bit-identical to the single-request path for every
    /// registered scenario × framework × {Ideal, Sampled} backend.
    #[test]
    fn micro_batched_serving_matches_single_requests_on_the_full_grid() {
        let backends: Vec<ExecutionBackend> = vec![
            "ideal".parse().unwrap(),
            "sampled:shots=64:seed=3".parse().unwrap(),
        ];
        for scenario in qmarl_env::scenario::scenarios() {
            for kind in FrameworkKind::TRAINABLE {
                for backend in &backends {
                    // Classical frameworks have no circuits for a
                    // stochastic backend; the cell is rejected upstream.
                    if matches!(kind, FrameworkKind::Comp2 | FrameworkKind::Comp3)
                        && !backend.is_ideal()
                    {
                        continue;
                    }
                    let policy = cell_policy(kind, scenario.name(), backend);
                    let rows = 5;
                    let slab = obs_slab(rows, policy.request_len());
                    let batched = policy.act_batch(&slab, rows).unwrap();
                    assert_eq!(batched.len(), rows * policy.n_agents());
                    for row in 0..rows {
                        let req =
                            &slab[row * policy.request_len()..(row + 1) * policy.request_len()];
                        let single = policy.act(req).unwrap();
                        assert_eq!(
                            batched[row * policy.n_agents()..(row + 1) * policy.n_agents()],
                            single[..],
                            "{kind} × {} × {backend}, row {row}",
                            scenario.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quantum_policies_serve_through_the_prebound_plan() {
        let ideal = ExecutionBackend::Ideal;
        assert!(cell_policy(FrameworkKind::Proposed, "single-hop", &ideal).is_prebound());
        assert!(cell_policy(FrameworkKind::Comp1, "two-tier", &ideal).is_prebound());
        // MLP actors and stochastic backends take the per-agent route.
        assert!(!cell_policy(FrameworkKind::Comp2, "single-hop", &ideal).is_prebound());
        let sampled: ExecutionBackend = "sampled:shots=32:seed=1".parse().unwrap();
        assert!(!cell_policy(FrameworkKind::Proposed, "single-hop", &sampled).is_prebound());
    }

    #[test]
    fn serving_is_deterministic_across_calls_and_batch_shapes() {
        let policy = cell_policy(
            FrameworkKind::Proposed,
            "single-hop",
            &ExecutionBackend::Ideal,
        );
        let req = obs_slab(1, policy.request_len());
        let a = policy.act(&req).unwrap();
        assert_eq!(a, policy.act(&req).unwrap());
        // The same request inside differently-sized batches gets the
        // same answer (batch-position invariance).
        for rows in [1usize, 2, 7] {
            let slab: Vec<f64> = req.iter().copied().cycle().take(rows * req.len()).collect();
            let batched = policy.act_batch(&slab, rows).unwrap();
            for row in 0..rows {
                assert_eq!(
                    batched[row * policy.n_agents()..(row + 1) * policy.n_agents()],
                    a[..],
                    "rows={rows}, row={row}"
                );
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_serves_identically_to_the_source_actors() {
        let train = TrainConfig::paper_default();
        let backend = ExecutionBackend::Ideal;
        let mut actors =
            build_scenario_actors(FrameworkKind::Proposed, "single-hop", &backend, &train).unwrap();
        // Perturb parameters so the snapshot differs from a fresh build.
        for actor in &mut actors {
            let p: Vec<f64> = actor.params().iter().map(|x| x + 0.05).collect();
            actor.set_params(&p).unwrap();
        }
        let snapshot = FrameworkSnapshot {
            label: "perturbed".into(),
            actor_params: actors.iter().map(|a| a.params()).collect(),
            critic_params: Vec::new(),
        };
        let direct = ServablePolicy::from_actors("direct", actors).unwrap();
        let via_snapshot = ServablePolicy::from_snapshot(
            &snapshot,
            FrameworkKind::Proposed,
            "single-hop",
            &backend,
            &train,
        )
        .unwrap();
        let slab = obs_slab(3, direct.request_len());
        assert_eq!(
            direct.act_batch(&slab, 3).unwrap(),
            via_snapshot.act_batch(&slab, 3).unwrap()
        );
        assert_eq!(via_snapshot.label(), "perturbed");
    }

    #[test]
    fn shape_errors_are_typed() {
        let policy = cell_policy(FrameworkKind::Comp2, "single-hop", &ExecutionBackend::Ideal);
        assert!(matches!(
            policy.act(&[0.0; 3]),
            Err(CoreError::FeatureLenMismatch { .. })
        ));
        assert!(matches!(
            policy.act_batch(&[0.0; 5], 2),
            Err(CoreError::FeatureLenMismatch { .. })
        ));
        assert!(policy.act_batch(&[], 0).unwrap().is_empty());
        assert!(ServablePolicy::from_actors("empty", Vec::new()).is_err());
    }
}
