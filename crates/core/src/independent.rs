//! Independent learners: the non-CTDE strawman.
//!
//! The paper adopts CTDE because independent per-agent training makes
//! each agent's reward non-stationary from the others' viewpoint ("agent
//! interactions often incur the non-stationary reward of each agent,
//! hindering the MARL training convergence"). [`IndependentTrainer`]
//! implements exactly that strawman — each agent owns a **local critic
//! over its own observation only** and never sees the global state — so
//! the CTDE-vs-independent ablation can measure what centralized training
//! actually buys.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qmarl_env::metrics::MetricsAccumulator;
use qmarl_env::multi_agent::MultiAgentEnv;
use qmarl_neural::optim::Adam;

use crate::config::TrainConfig;
use crate::error::CoreError;
use crate::policy::{select_action, Actor};
use crate::trainer::{EpochRecord, TrainingHistory};
use crate::value::Critic;

/// A decentralized trainer: per-agent actors *and* per-agent local
/// critics, no shared state, no centralized anything.
pub struct IndependentTrainer<E: MultiAgentEnv> {
    env: E,
    actors: Vec<Box<dyn Actor>>,
    critics: Vec<Box<dyn Critic>>,
    targets: Vec<Box<dyn Critic>>,
    actor_opts: Vec<Adam>,
    critic_opts: Vec<Adam>,
    config: TrainConfig,
    rng: StdRng,
    history: TrainingHistory,
    epoch: usize,
}

impl<E: MultiAgentEnv> IndependentTrainer<E> {
    /// Assembles the trainer. Each critic must consume the **per-agent
    /// observation** (`env.obs_dim()`), not the global state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on shape mismatches.
    pub fn new(
        env: E,
        actors: Vec<Box<dyn Actor>>,
        critics: Vec<Box<dyn Critic>>,
        config: TrainConfig,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        if actors.len() != env.n_agents() || critics.len() != env.n_agents() {
            return Err(CoreError::InvalidConfig(format!(
                "need one actor and one critic per agent: {} agents, {} actors, {} critics",
                env.n_agents(),
                actors.len(),
                critics.len()
            )));
        }
        for (n, (a, c)) in actors.iter().zip(&critics).enumerate() {
            if a.obs_dim() != env.obs_dim() || a.n_actions() != env.n_actions() {
                return Err(CoreError::InvalidConfig(format!(
                    "actor {n} shape mismatch"
                )));
            }
            if c.state_dim() != env.obs_dim() {
                return Err(CoreError::InvalidConfig(format!(
                    "critic {n} must be local (obs dim {}), got {}",
                    env.obs_dim(),
                    c.state_dim()
                )));
            }
        }
        let actor_opts = actors
            .iter()
            .map(|a| Adam::new(config.lr_actor, a.param_count()))
            .collect();
        let critic_opts = critics
            .iter()
            .map(|c| Adam::new(config.lr_critic, c.param_count()))
            .collect();
        let targets = critics.iter().map(|c| c.clone_box()).collect();
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(IndependentTrainer {
            env,
            actors,
            critics,
            targets,
            actor_opts,
            critic_opts,
            config,
            rng,
            history: TrainingHistory::default(),
            epoch: 0,
        })
    }

    /// The training history so far.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// The actors.
    pub fn actors(&self) -> &[Box<dyn Actor>] {
        &self.actors
    }

    /// One epoch: rollout with stochastic policies, then per-agent
    /// actor-critic updates using only local information.
    ///
    /// # Errors
    ///
    /// Propagates environment and model errors.
    pub fn run_epoch(&mut self) -> Result<EpochRecord, CoreError> {
        let (mut obs, _state) = self.env.reset();
        let mut acc = MetricsAccumulator::new();
        // (observations, joint action, reward, next observations).
        type Sample = (Vec<Vec<f64>>, Vec<usize>, f64, Vec<Vec<f64>>);
        let mut transitions: Vec<Sample> = Vec::new();
        let mut entropy_sum = 0.0;
        let mut entropy_n = 0usize;
        loop {
            let mut actions = Vec::with_capacity(self.actors.len());
            for (n, actor) in self.actors.iter().enumerate() {
                let probs = actor.probs(&obs[n])?;
                entropy_sum += qmarl_neural::loss::entropy(&probs);
                entropy_n += 1;
                actions.push(select_action(&probs, false, &mut self.rng));
            }
            let out = self.env.step(&actions)?;
            acc.record_step(
                out.reward,
                &out.info.queue_levels,
                &out.info.cloud_empty,
                &out.info.cloud_full,
            );
            transitions.push((obs.clone(), actions, out.reward, out.observations.clone()));
            obs = out.observations;
            if out.done {
                break;
            }
        }
        let metrics = acc.finish();

        // Per-sample independent updates (mirrors the CTDE trainer's
        // schedule so the comparison isolates the critic architecture).
        let gamma = self.config.gamma;
        // Per-agent target values are frozen for the sweep: batch each
        // agent's V_φn(o'_n) over the whole episode through the runtime
        // instead of one circuit per (step, agent) inside the loop.
        let v_next_by_agent: Vec<Vec<f64>> = (0..self.actors.len())
            .map(|n| {
                let next_obs: Vec<Vec<f64>> = transitions
                    .iter()
                    .map(|(_, _, _, o_next)| o_next[n].clone())
                    .collect();
                self.targets[n].values_batch(&next_obs)
            })
            .collect::<Result<_, _>>()?;
        let mut loss_sum = 0.0;
        let mut loss_n = 0usize;
        for (t, (o_t, u_t, r, _o_next)) in transitions.iter().enumerate() {
            for n in 0..self.actors.len() {
                let (v, critic_grad) = self.critics[n].value_with_gradient(&o_t[n])?;
                let v_next = v_next_by_agent[n][t];
                let y = r + gamma * v_next - v;
                loss_sum += y * y;
                loss_n += 1;

                let grad = self.actors[n].policy_gradient(&o_t[n], u_t[n], y)?;
                let mut params = self.actors[n].params();
                self.actor_opts[n].step(&mut params, &grad);
                self.actors[n].set_params(&params)?;

                let mut cparams = self.critics[n].params();
                let scaled: Vec<f64> = critic_grad.iter().map(|g| -2.0 * y * g).collect();
                self.critic_opts[n].step(&mut cparams, &scaled);
                self.critics[n].set_params(&cparams)?;
            }
        }
        self.epoch += 1;
        if self.epoch.is_multiple_of(self.config.target_update_period) {
            for (t, c) in self.targets.iter_mut().zip(&self.critics) {
                t.set_params(&c.params())?;
            }
        }
        let record = EpochRecord {
            epoch: self.epoch - 1,
            metrics,
            critic_loss: if loss_n == 0 {
                0.0
            } else {
                loss_sum / loss_n as f64
            },
            mean_entropy: if entropy_n == 0 {
                0.0
            } else {
                entropy_sum / entropy_n as f64
            },
        };
        self.history.push_record(record);
        Ok(record)
    }

    /// Trains for `epochs` epochs.
    ///
    /// # Errors
    ///
    /// Propagates the first epoch error.
    pub fn train(&mut self, epochs: usize) -> Result<&TrainingHistory, CoreError> {
        for _ in 0..epochs {
            self.run_epoch()?;
        }
        Ok(&self.history)
    }
}

/// Per-agent actors paired with per-agent local critics.
pub type IndependentBundle = (Vec<Box<dyn Actor>>, Vec<Box<dyn Critic>>);

/// Convenience: the *quantum* independent-learner bundle (quantum actors +
/// quantum local critics at the same budgets as `Proposed`).
///
/// # Errors
///
/// Returns construction errors.
pub fn build_independent_quantum(
    env_cfg: &qmarl_env::single_hop::EnvConfig,
    train: &TrainConfig,
) -> Result<IndependentBundle, CoreError> {
    let actors =
        crate::framework::build_actors(crate::framework::FrameworkKind::Proposed, env_cfg, train)?;
    let critics: Vec<Box<dyn Critic>> = (0..env_cfg.n_edges)
        .map(|n| {
            crate::value::QuantumCritic::new(
                train.n_qubits,
                env_cfg.obs_dim(),
                train.critic_params,
                train.seed.wrapping_add(5000 + n as u64),
            )
            .map(|c| Box::new(c.with_grad_method(train.grad_method)) as Box<dyn Critic>)
        })
        .collect::<Result<_, _>>()?;
    Ok((actors, critics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::value::QuantumCritic;
    use qmarl_env::single_hop::{EnvConfig, SingleHopEnv};

    fn setup(seed: u64) -> IndependentTrainer<SingleHopEnv> {
        let mut env_cfg = EnvConfig::paper_default();
        env_cfg.episode_limit = 10;
        let mut train = ExperimentConfig::paper_default().train;
        train.seed = seed;
        let env = SingleHopEnv::new(env_cfg.clone(), seed).unwrap();
        let (actors, critics) = build_independent_quantum(&env_cfg, &train).unwrap();
        IndependentTrainer::new(env, actors, critics, train).unwrap()
    }

    #[test]
    fn builds_with_local_critics() {
        let t = setup(1);
        assert_eq!(t.actors().len(), 4);
    }

    #[test]
    fn rejects_centralized_critic() {
        let mut env_cfg = EnvConfig::paper_default();
        env_cfg.episode_limit = 10;
        let train = ExperimentConfig::paper_default().train;
        let env = SingleHopEnv::new(env_cfg.clone(), 0).unwrap();
        let (actors, _) = build_independent_quantum(&env_cfg, &train).unwrap();
        // Centralized (16-input) critics must be rejected.
        let critics: Vec<Box<dyn Critic>> = (0..4)
            .map(|n| Box::new(QuantumCritic::new(4, 16, 50, n).unwrap()) as Box<dyn Critic>)
            .collect();
        assert!(IndependentTrainer::new(env, actors, critics, train).is_err());
    }

    #[test]
    fn epoch_runs_and_records() {
        let mut t = setup(2);
        let rec = t.run_epoch().unwrap();
        assert_eq!(rec.epoch, 0);
        assert!(rec.metrics.total_reward <= 0.0);
        assert!(rec.critic_loss.is_finite());
        assert_eq!(t.history().len(), 1);
    }

    #[test]
    fn training_is_reproducible() {
        let run = |seed: u64| {
            let mut t = setup(seed);
            t.train(3).unwrap();
            t.history()
                .records()
                .iter()
                .map(|r| r.metrics.total_reward)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn parameters_move_during_training() {
        let mut t = setup(3);
        let before = t.actors()[0].params();
        t.train(2).unwrap();
        let after = t.actors()[0].params();
        assert!(before
            .iter()
            .zip(&after)
            .any(|(a, b)| (a - b).abs() > 1e-12));
    }
}
