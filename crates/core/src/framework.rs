//! The four evaluated frameworks (Sec. IV-C) plus the random-walk
//! baseline, as ready-to-train bundles.
//!
//! | name | actors | centralized critic | budget |
//! |---|---|---|---|
//! | `Proposed` | quantum (VQC) | quantum (VQC + state encoding) | 50 / 50 |
//! | `Comp1` | quantum (VQC) | classical MLP | 50 / ≈50 |
//! | `Comp2` | classical MLP | classical MLP | ≈50 / ≈50 |
//! | `Comp3` | classical MLP | classical MLP | > 40 000 |
//! | `RandomWalk` | uniform random | — | 0 |

use qmarl_env::multi_agent::MultiAgentEnv;
use qmarl_env::scenario::{build_scenario_with, ScenarioEnv, ScenarioParams};
use qmarl_env::single_hop::{EnvConfig, SingleHopEnv};
use qmarl_neural::mlp::hidden_for_budget;
use qmarl_runtime::backend::ExecutionBackend;

use crate::checkpoint::FrameworkSnapshot;
use crate::config::{ExperimentConfig, TrainConfig};
use crate::error::CoreError;
use crate::policy::{Actor, ClassicalActor, QuantumActor};
use crate::trainer::CtdeTrainer;
use crate::value::{ClassicalCritic, Critic, QuantumCritic};

/// Which of the paper's frameworks to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FrameworkKind {
    /// Quantum actors + quantum centralized critic (the paper's QMARL).
    Proposed,
    /// Quantum actors + classical critic (hybrid).
    Comp1,
    /// Classical actors + classical critic at the ~50-parameter budget.
    Comp2,
    /// Classical actors + classical critic, unconstrained (> 40 K params).
    Comp3,
    /// Uniform-random joint policy (normalisation baseline).
    RandomWalk,
}

impl FrameworkKind {
    /// All trainable frameworks, in the paper's order.
    pub const TRAINABLE: [FrameworkKind; 4] = [
        FrameworkKind::Proposed,
        FrameworkKind::Comp1,
        FrameworkKind::Comp2,
        FrameworkKind::Comp3,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            FrameworkKind::Proposed => "Proposed",
            FrameworkKind::Comp1 => "Comp1",
            FrameworkKind::Comp2 => "Comp2",
            FrameworkKind::Comp3 => "Comp3",
            FrameworkKind::RandomWalk => "RandomWalk",
        }
    }
}

impl std::fmt::Display for FrameworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FrameworkKind {
    type Err = CoreError;

    /// Parses the paper's framework names (case-insensitive), so sweep
    /// specs can name frameworks the way figures do.
    fn from_str(s: &str) -> Result<Self, CoreError> {
        match s.to_ascii_lowercase().as_str() {
            "proposed" => Ok(FrameworkKind::Proposed),
            "comp1" => Ok(FrameworkKind::Comp1),
            "comp2" => Ok(FrameworkKind::Comp2),
            "comp3" => Ok(FrameworkKind::Comp3),
            "randomwalk" | "random-walk" => Ok(FrameworkKind::RandomWalk),
            other => Err(CoreError::InvalidConfig(format!(
                "unknown framework {other:?}; expected Proposed/Comp1/Comp2/Comp3/RandomWalk"
            ))),
        }
    }
}

/// Hidden sizes for Comp3's unconstrained networks (> 40 K parameters,
/// matching "the number of parameters is more than 40 K").
const COMP3_HIDDEN: usize = 200;

/// Builds the actors of a framework.
///
/// # Errors
///
/// Returns construction errors; `RandomWalk` has no actors and returns an
/// empty vector.
pub fn build_actors(
    kind: FrameworkKind,
    env: &EnvConfig,
    train: &TrainConfig,
) -> Result<Vec<Box<dyn Actor>>, CoreError> {
    let obs_dim = env.obs_dim();
    let n_actions = env.n_clouds * env.packet_amounts.len();
    let seed = train.seed;
    let mut actors: Vec<Box<dyn Actor>> = Vec::with_capacity(env.n_edges);
    for n in 0..env.n_edges {
        let actor_seed = seed.wrapping_add(1000 + n as u64);
        let actor: Box<dyn Actor> = match kind {
            FrameworkKind::Proposed | FrameworkKind::Comp1 => Box::new(
                QuantumActor::new(
                    train.n_qubits,
                    obs_dim,
                    n_actions,
                    train.actor_params,
                    actor_seed,
                )?
                .with_grad_method(train.grad_method),
            ),
            FrameworkKind::Comp2 => {
                let (h, _) = hidden_for_budget(obs_dim, n_actions, train.actor_params);
                Box::new(ClassicalActor::new(&[obs_dim, h, n_actions], actor_seed)?)
            }
            FrameworkKind::Comp3 => Box::new(ClassicalActor::new(
                &[obs_dim, COMP3_HIDDEN, COMP3_HIDDEN, n_actions],
                actor_seed,
            )?),
            FrameworkKind::RandomWalk => {
                return Err(CoreError::InvalidConfig(
                    "the random walk has no trainable actors".into(),
                ))
            }
        };
        actors.push(actor);
    }
    Ok(actors)
}

/// Builds the centralized critic of a framework.
///
/// # Errors
///
/// Returns construction errors; `RandomWalk` has no critic.
pub fn build_critic(
    kind: FrameworkKind,
    env: &EnvConfig,
    train: &TrainConfig,
) -> Result<Box<dyn Critic>, CoreError> {
    let state_dim = env.state_dim();
    let seed = train.seed.wrapping_add(9000);
    match kind {
        FrameworkKind::Proposed => Ok(Box::new(
            QuantumCritic::new(train.n_qubits, state_dim, train.critic_params, seed)?
                .with_grad_method(train.grad_method),
        )),
        FrameworkKind::Comp1 | FrameworkKind::Comp2 => {
            let (h, _) = hidden_for_budget(state_dim, 1, train.critic_params);
            Ok(Box::new(ClassicalCritic::new(&[state_dim, h, 1], seed)?))
        }
        FrameworkKind::Comp3 => Ok(Box::new(ClassicalCritic::new(
            &[state_dim, COMP3_HIDDEN, COMP3_HIDDEN, 1],
            seed,
        )?)),
        FrameworkKind::RandomWalk => Err(CoreError::InvalidConfig(
            "the random walk has no critic".into(),
        )),
    }
}

/// Builds the complete trainer for a framework on a fresh environment.
///
/// # Errors
///
/// Returns construction errors (and rejects `RandomWalk`, which is not
/// trainable — use [`qmarl_env::random_walk::random_walk_baseline`]).
pub fn build_trainer(
    kind: FrameworkKind,
    config: &ExperimentConfig,
) -> Result<CtdeTrainer<SingleHopEnv>, CoreError> {
    config.validate()?;
    let env = SingleHopEnv::new(config.env.clone(), config.train.seed)?;
    let actors = build_actors(kind, &config.env, &config.train)?;
    let critic = build_critic(kind, &config.env, &config.train)?;
    CtdeTrainer::new(env, actors, critic, config.train.clone())
}

/// Builds the paper's quantum CTDE stack on any registry scenario under
/// any [`ExecutionBackend`] — the scenario × backend sweep surface.
///
/// Shapes come from the environment (one readout wire per action, the
/// critic's state folded into `train.n_qubits` wires), so every
/// registered scenario is runnable under every backend; the backend spec
/// is string-constructible via `ExecutionBackend::from_str`
/// (`"ideal"`, `"sampled:shots=1024"`, `"noisy:p1=0.001:p2=0.002"`, …).
/// Gradient routing follows backend capability: `Ideal` keeps
/// `train.grad_method` (adjoint/prebound fast paths), `Sampled`/`Noisy`
/// train by the batched parameter-shift queue with shot-sampled/noisy
/// expectations.
///
/// # Errors
///
/// Returns construction errors from the scenario registry or the model
/// builders.
pub fn build_scenario_trainer(
    scenario: &str,
    backend: &ExecutionBackend,
    train: &TrainConfig,
    episode_limit: Option<usize>,
) -> Result<CtdeTrainer<Box<dyn ScenarioEnv>>, CoreError> {
    build_kind_scenario_trainer(
        FrameworkKind::Proposed,
        scenario,
        backend,
        train,
        episode_limit,
    )
}

/// Builds **any trainable framework** on any registry scenario under any
/// [`ExecutionBackend`] — the full sweep grid surface
/// (framework × scenario × backend), generalising both [`build_trainer`]
/// (frameworks, paper scenario only) and [`build_scenario_trainer`]
/// (scenarios, `Proposed` only).
///
/// On the paper's `"single-hop"` scenario with the `Ideal` backend the
/// resulting trainer is **identical** to [`build_trainer`]'s (same model
/// seeds, shapes and budgets), so sweeps reproduce the figure binaries'
/// training runs bit for bit. The backend applies to the quantum models
/// of a framework; a fully classical framework (`Comp2`/`Comp3`) is only
/// buildable under `Ideal` — accepting a stochastic backend there would
/// silently run a noise-free experiment that looks like a noisy one.
///
/// # Errors
///
/// Returns construction errors from the scenario registry or the model
/// builders, and rejects `RandomWalk` (not trainable) and classical
/// frameworks under non-`Ideal` backends.
pub fn build_kind_scenario_trainer(
    kind: FrameworkKind,
    scenario: &str,
    backend: &ExecutionBackend,
    train: &TrainConfig,
    episode_limit: Option<usize>,
) -> Result<CtdeTrainer<Box<dyn ScenarioEnv>>, CoreError> {
    backend.validate().map_err(CoreError::from)?;
    if kind == FrameworkKind::RandomWalk {
        return Err(CoreError::InvalidConfig(
            "the random walk is not trainable; use qmarl_env::random_walk::random_walk_baseline"
                .into(),
        ));
    }
    let quantum_actors = matches!(kind, FrameworkKind::Proposed | FrameworkKind::Comp1);
    let quantum_critic = kind == FrameworkKind::Proposed;
    if !quantum_actors && !quantum_critic && !backend.is_ideal() {
        return Err(CoreError::InvalidConfig(format!(
            "framework {kind} has no quantum circuits to execute under backend {backend}; \
             only Ideal is meaningful for fully classical frameworks"
        )));
    }
    let mut params = ScenarioParams::seeded(train.seed);
    if let Some(t) = episode_limit {
        params = params.with_episode_limit(t);
    }
    let env = build_scenario_with(scenario, &params)?;
    let (obs_dim, state_dim, n_actions) = (env.obs_dim(), env.state_dim(), env.n_actions());
    let actors = scenario_actor_set(kind, backend, train, env.n_agents(), obs_dim, n_actions)?;
    let critic_seed = train.seed.wrapping_add(9000);
    let critic: Box<dyn Critic> = match kind {
        FrameworkKind::Proposed => Box::new(
            QuantumCritic::new(train.n_qubits, state_dim, train.critic_params, critic_seed)?
                .with_grad_method(train.grad_method)
                .with_backend(backend.clone()),
        ),
        FrameworkKind::Comp1 | FrameworkKind::Comp2 => {
            let (h, _) = hidden_for_budget(state_dim, 1, train.critic_params);
            Box::new(ClassicalCritic::new(&[state_dim, h, 1], critic_seed)?)
        }
        FrameworkKind::Comp3 => Box::new(ClassicalCritic::new(
            &[state_dim, COMP3_HIDDEN, COMP3_HIDDEN, 1],
            critic_seed,
        )?),
        FrameworkKind::RandomWalk => unreachable!("rejected above"),
    };
    CtdeTrainer::new(env, actors, critic, train.clone())
}

/// The shared actor-construction loop of the scenario builders. The seed
/// derivation (`train.seed + 1000 + n`) and the shape rules (one readout
/// wire per action, parameter budget grown for wide action sets) are the
/// **deployment contract**: [`build_scenario_actors`] and
/// [`actors_from_snapshot`] must rebuild the exact models
/// [`build_kind_scenario_trainer`] trained, or a restored snapshot would
/// silently fit a differently-shaped (or differently-initialised) policy.
fn scenario_actor_set(
    kind: FrameworkKind,
    backend: &ExecutionBackend,
    train: &TrainConfig,
    n_agents: usize,
    obs_dim: usize,
    n_actions: usize,
) -> Result<Vec<Box<dyn Actor>>, CoreError> {
    // One readout wire per action; budgets grow with the action set when
    // the scenario is wider than the paper's.
    let n_qubits = n_actions.max(train.n_qubits);
    let q_actor_params = train.actor_params.max(2 * n_actions + 8);
    (0..n_agents)
        .map(|n| {
            let actor_seed = train.seed.wrapping_add(1000 + n as u64);
            Ok(match kind {
                FrameworkKind::Proposed | FrameworkKind::Comp1 => Box::new(
                    QuantumActor::new(n_qubits, obs_dim, n_actions, q_actor_params, actor_seed)?
                        .with_grad_method(train.grad_method)
                        .with_backend(backend.clone()),
                )
                    as Box<dyn Actor>,
                FrameworkKind::Comp2 => {
                    let (h, _) = hidden_for_budget(obs_dim, n_actions, train.actor_params);
                    Box::new(ClassicalActor::new(&[obs_dim, h, n_actions], actor_seed)?)
                }
                FrameworkKind::Comp3 => Box::new(ClassicalActor::new(
                    &[obs_dim, COMP3_HIDDEN, COMP3_HIDDEN, n_actions],
                    actor_seed,
                )?),
                FrameworkKind::RandomWalk => {
                    return Err(CoreError::InvalidConfig(
                        "the random walk has no trainable actors".into(),
                    ))
                }
            })
        })
        .collect()
}

/// Builds **only the actor set** of a framework on a registry scenario —
/// the decentralized-execution half of CTDE, without the critic, replay
/// buffer or trainer that only centralized training needs.
///
/// The models are identical (same seeds, same shapes) to the ones
/// [`build_kind_scenario_trainer`] would train under the same
/// `(kind, scenario, backend, train)` cell, so parameters captured from a
/// trainer drop into this set unchanged — see [`actors_from_snapshot`].
///
/// # Errors
///
/// Returns construction errors from the scenario registry or the model
/// builders, and rejects `RandomWalk` (no trainable actors) and classical
/// frameworks under non-`Ideal` backends (no quantum circuits to
/// execute).
pub fn build_scenario_actors(
    kind: FrameworkKind,
    scenario: &str,
    backend: &ExecutionBackend,
    train: &TrainConfig,
) -> Result<Vec<Box<dyn Actor>>, CoreError> {
    backend.validate().map_err(CoreError::from)?;
    let quantum_actors = matches!(kind, FrameworkKind::Proposed | FrameworkKind::Comp1);
    if !quantum_actors && !backend.is_ideal() && kind != FrameworkKind::RandomWalk {
        return Err(CoreError::InvalidConfig(format!(
            "framework {kind} has no quantum circuits to execute under backend {backend}; \
             only Ideal is meaningful for fully classical actors"
        )));
    }
    let env = build_scenario_with(scenario, &ScenarioParams::seeded(train.seed))?;
    scenario_actor_set(
        kind,
        backend,
        train,
        env.n_agents(),
        env.obs_dim(),
        env.n_actions(),
    )
}

/// Rebuilds a framework's actor set from a [`FrameworkSnapshot`] — the
/// snapshot → deployable-policy constructor. Builds the same models as
/// [`build_scenario_actors`] and restores the snapshot's per-actor
/// parameters into them, without constructing a critic or a
/// [`CtdeTrainer`].
///
/// # Errors
///
/// Returns construction errors, [`CoreError::InvalidConfig`] on an
/// actor-count mismatch and [`CoreError::ParamLenMismatch`] when a
/// parameter vector does not fit the rebuilt architecture (e.g. a
/// snapshot trained on a different scenario or framework).
pub fn actors_from_snapshot(
    snapshot: &FrameworkSnapshot,
    kind: FrameworkKind,
    scenario: &str,
    backend: &ExecutionBackend,
    train: &TrainConfig,
) -> Result<Vec<Box<dyn Actor>>, CoreError> {
    let mut actors = build_scenario_actors(kind, scenario, backend, train)?;
    if actors.len() != snapshot.actor_params.len() {
        return Err(CoreError::InvalidConfig(format!(
            "snapshot {:?} holds {} actors, the {kind} × {scenario:?} cell builds {}",
            snapshot.label,
            snapshot.actor_params.len(),
            actors.len()
        )));
    }
    for (actor, params) in actors.iter_mut().zip(&snapshot.actor_params) {
        actor.set_params(params)?;
    }
    Ok(actors)
}

/// Parameter accounting per framework — the budget table of Sec. IV-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParamReport {
    /// Framework.
    pub kind: FrameworkKind,
    /// Trainable parameters per actor.
    pub per_actor: usize,
    /// Number of actors.
    pub n_actors: usize,
    /// Trainable parameters in the critic.
    pub critic: usize,
}

impl ParamReport {
    /// Total trainable parameters across the framework.
    pub fn total(&self) -> usize {
        self.per_actor * self.n_actors + self.critic
    }
}

/// Computes the parameter report for a framework.
///
/// # Errors
///
/// Returns construction errors.
pub fn parameter_report(
    kind: FrameworkKind,
    config: &ExperimentConfig,
) -> Result<ParamReport, CoreError> {
    if kind == FrameworkKind::RandomWalk {
        return Ok(ParamReport {
            kind,
            per_actor: 0,
            n_actors: 0,
            critic: 0,
        });
    }
    let actors = build_actors(kind, &config.env, &config.train)?;
    let critic = build_critic(kind, &config.env, &config.train)?;
    Ok(ParamReport {
        kind,
        per_actor: actors[0].param_count(),
        n_actors: actors.len(),
        critic: critic.param_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_default();
        c.env.episode_limit = 10;
        c
    }

    #[test]
    fn scenario_trainer_builds_under_every_backend_spec() {
        let mut train = TrainConfig::paper_default();
        train.epochs = 1;
        for spec in [
            "ideal",
            "sampled:shots=64:seed=3",
            "noisy:p1=0.01:p2=0.02",
            "trajectory:p1=0.01:p2=0.02:samples=8:seed=3",
        ] {
            let backend: ExecutionBackend = spec.parse().unwrap();
            for scenario in qmarl_env::scenario::scenarios() {
                // Density-matrix rollouts on the 8-qubit wide scenario are
                // exact but slow (256×256 ρ per gate); the construction
                // path it would exercise is identical to the other
                // entries', so skip only that cell.
                if matches!(backend, ExecutionBackend::Noisy { .. })
                    && scenario.name() == "single-hop-wide"
                {
                    continue;
                }
                let name = scenario.name();
                let mut t = build_scenario_trainer(name, &backend, &train, Some(5))
                    .unwrap_or_else(|e| panic!("{name} × {spec}: {e}"));
                let (ep, m, _) = t.rollout(false).unwrap();
                assert_eq!(ep.len(), 5, "{name} × {spec}");
                assert!(m.total_reward <= 0.0);
            }
        }
        assert!(
            build_scenario_trainer("no-such-scenario", &ExecutionBackend::Ideal, &train, None)
                .is_err()
        );
    }

    #[test]
    fn kind_scenario_trainer_matches_build_trainer_on_paper_default() {
        // The generalized builder must reproduce the figure binaries'
        // trainers bit for bit on the paper scenario: identical model
        // seeds/shapes, so identical serial training histories.
        let mut train = TrainConfig::paper_default();
        train.epochs = 2;
        for kind in FrameworkKind::TRAINABLE {
            let mut cfg = ExperimentConfig::paper_default();
            cfg.train = train.clone();
            let mut reference = build_trainer(kind, &cfg).unwrap();
            reference.train(2).unwrap();
            let mut generalized = build_kind_scenario_trainer(
                kind,
                "single-hop",
                &ExecutionBackend::Ideal,
                &train,
                None,
            )
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
            generalized.train(2).unwrap();
            assert_eq!(generalized.history(), reference.history(), "{kind}");
            assert_eq!(
                generalized.critic().params(),
                reference.critic().params(),
                "{kind}"
            );
            for (a, b) in generalized.actors().iter().zip(reference.actors()) {
                assert_eq!(a.params(), b.params(), "{kind}");
            }
        }
    }

    #[test]
    fn kind_scenario_trainer_builds_every_framework_on_every_scenario() {
        let mut train = TrainConfig::paper_default();
        train.epochs = 1;
        for kind in FrameworkKind::TRAINABLE {
            for scenario in qmarl_env::scenario::scenarios() {
                let t = build_kind_scenario_trainer(
                    kind,
                    scenario.name(),
                    &ExecutionBackend::Ideal,
                    &train,
                    Some(4),
                )
                .unwrap_or_else(|e| panic!("{kind} × {}: {e}", scenario.name()));
                assert!(!t.actors().is_empty());
            }
        }
    }

    #[test]
    fn kind_scenario_trainer_rejects_meaningless_cells() {
        let train = TrainConfig::paper_default();
        let sampled: ExecutionBackend = "sampled:shots=32".parse().unwrap();
        // Classical frameworks have no circuits for a stochastic backend.
        for kind in [FrameworkKind::Comp2, FrameworkKind::Comp3] {
            assert!(
                build_kind_scenario_trainer(kind, "single-hop", &sampled, &train, None).is_err(),
                "{kind}"
            );
        }
        // Comp1's quantum actors make the sampled backend meaningful.
        assert!(build_kind_scenario_trainer(
            FrameworkKind::Comp1,
            "single-hop",
            &sampled,
            &train,
            Some(4)
        )
        .is_ok());
        assert!(build_kind_scenario_trainer(
            FrameworkKind::RandomWalk,
            "single-hop",
            &ExecutionBackend::Ideal,
            &train,
            None
        )
        .is_err());
    }

    #[test]
    fn scenario_actors_match_trainer_actors_bit_for_bit() {
        // The actor-only builder must produce the exact models the full
        // trainer builder trains — same seeds, same shapes, same initial
        // parameters — for every framework × scenario cell.
        let train = TrainConfig::paper_default();
        for kind in FrameworkKind::TRAINABLE {
            for scenario in qmarl_env::scenario::scenarios() {
                let name = scenario.name();
                let solo = build_scenario_actors(kind, name, &ExecutionBackend::Ideal, &train)
                    .unwrap_or_else(|e| panic!("{kind} × {name}: {e}"));
                let trainer = build_kind_scenario_trainer(
                    kind,
                    name,
                    &ExecutionBackend::Ideal,
                    &train,
                    Some(4),
                )
                .unwrap();
                assert_eq!(solo.len(), trainer.actors().len(), "{kind} × {name}");
                for (a, b) in solo.iter().zip(trainer.actors()) {
                    assert_eq!(a.params(), b.params(), "{kind} × {name}");
                    assert_eq!(a.obs_dim(), b.obs_dim());
                    assert_eq!(a.n_actions(), b.n_actions());
                }
            }
        }
    }

    #[test]
    fn actors_from_snapshot_restores_trained_parameters() {
        let mut train = TrainConfig::paper_default();
        train.epochs = 1;
        let backend = ExecutionBackend::Ideal;
        let mut trainer = build_kind_scenario_trainer(
            FrameworkKind::Proposed,
            "two-tier",
            &backend,
            &train,
            Some(6),
        )
        .unwrap();
        trainer.train(1).unwrap();
        let snap = FrameworkSnapshot::capture("two-tier", &trainer);
        let actors =
            actors_from_snapshot(&snap, FrameworkKind::Proposed, "two-tier", &backend, &train)
                .unwrap();
        for (restored, trained) in actors.iter().zip(trainer.actors()) {
            assert_eq!(restored.params(), trained.params());
            // Same parameters ⇒ same policy, bit for bit.
            let obs: Vec<f64> = (0..restored.obs_dim()).map(|i| 0.1 * i as f64).collect();
            assert_eq!(restored.probs(&obs).unwrap(), trained.probs(&obs).unwrap());
        }
    }

    #[test]
    fn actors_from_snapshot_rejects_architecture_mismatches() {
        let train = TrainConfig::paper_default();
        let backend = ExecutionBackend::Ideal;
        // Wrong actor count.
        let snap = FrameworkSnapshot {
            label: "bad-count".into(),
            actor_params: vec![vec![0.0; 50]; 2],
            critic_params: vec![],
        };
        assert!(matches!(
            actors_from_snapshot(
                &snap,
                FrameworkKind::Proposed,
                "single-hop",
                &backend,
                &train
            ),
            Err(CoreError::InvalidConfig(_))
        ));
        // Right count, wrong parameter length (e.g. captured from a
        // different framework).
        let snap2 = FrameworkSnapshot {
            label: "bad-len".into(),
            actor_params: vec![vec![0.0; 7]; 4],
            critic_params: vec![],
        };
        assert!(matches!(
            actors_from_snapshot(
                &snap2,
                FrameworkKind::Proposed,
                "single-hop",
                &backend,
                &train
            ),
            Err(CoreError::ParamLenMismatch { .. })
        ));
    }

    #[test]
    fn scenario_actors_reject_meaningless_cells() {
        let train = TrainConfig::paper_default();
        let sampled: ExecutionBackend = "sampled:shots=32".parse().unwrap();
        for kind in [FrameworkKind::Comp2, FrameworkKind::Comp3] {
            assert!(
                build_scenario_actors(kind, "single-hop", &sampled, &train).is_err(),
                "{kind}"
            );
        }
        assert!(
            build_scenario_actors(FrameworkKind::RandomWalk, "single-hop", &sampled, &train)
                .is_err()
        );
        assert!(
            build_scenario_actors(FrameworkKind::Comp1, "single-hop", &sampled, &train).is_ok()
        );
        assert!(build_scenario_actors(
            FrameworkKind::Proposed,
            "no-such-scenario",
            &ExecutionBackend::Ideal,
            &train
        )
        .is_err());
    }

    #[test]
    fn framework_kind_parses_from_names() {
        for kind in FrameworkKind::TRAINABLE {
            assert_eq!(kind.name().parse::<FrameworkKind>().unwrap(), kind);
            assert_eq!(
                kind.name().to_lowercase().parse::<FrameworkKind>().unwrap(),
                kind
            );
        }
        assert_eq!(
            "random-walk".parse::<FrameworkKind>().unwrap(),
            FrameworkKind::RandomWalk
        );
        assert!("comp9".parse::<FrameworkKind>().is_err());
    }

    #[test]
    fn parameter_budgets_match_section_4c() {
        let cfg = config();
        let proposed = parameter_report(FrameworkKind::Proposed, &cfg).unwrap();
        assert_eq!(proposed.per_actor, 50);
        assert_eq!(proposed.critic, 50);
        assert_eq!(proposed.n_actors, 4);
        assert_eq!(proposed.total(), 250);

        let comp1 = parameter_report(FrameworkKind::Comp1, &cfg).unwrap();
        assert_eq!(comp1.per_actor, 50);
        assert!(
            comp1.critic <= 50,
            "comp1 critic {} must respect the budget",
            comp1.critic
        );

        let comp2 = parameter_report(FrameworkKind::Comp2, &cfg).unwrap();
        assert!(comp2.per_actor <= 50);
        assert!(comp2.per_actor >= 40, "budget-matched, not trivially small");
        assert!(comp2.critic <= 50);

        let comp3 = parameter_report(FrameworkKind::Comp3, &cfg).unwrap();
        assert!(comp3.per_actor > 40_000, "comp3 actor {}", comp3.per_actor);
        assert!(comp3.critic > 40_000, "comp3 critic {}", comp3.critic);

        let rw = parameter_report(FrameworkKind::RandomWalk, &cfg).unwrap();
        assert_eq!(rw.total(), 0);
    }

    #[test]
    fn trainers_build_for_all_trainable_kinds() {
        let cfg = config();
        for kind in FrameworkKind::TRAINABLE {
            let t = build_trainer(kind, &cfg).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(t.actors().len(), 4);
        }
        assert!(build_trainer(FrameworkKind::RandomWalk, &cfg).is_err());
    }

    #[test]
    fn one_epoch_of_each_framework_runs() {
        let cfg = config();
        for kind in FrameworkKind::TRAINABLE {
            let mut t = build_trainer(kind, &cfg).unwrap();
            let rec = t.run_epoch().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(rec.metrics.total_reward <= 0.0, "{kind}");
            assert!(rec.critic_loss.is_finite(), "{kind}");
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(FrameworkKind::Proposed.to_string(), "Proposed");
        assert_eq!(FrameworkKind::Comp1.name(), "Comp1");
        assert_eq!(FrameworkKind::TRAINABLE.len(), 4);
    }

    #[test]
    fn random_walk_builders_rejected() {
        let cfg = config();
        assert!(build_actors(FrameworkKind::RandomWalk, &cfg.env, &cfg.train).is_err());
        assert!(build_critic(FrameworkKind::RandomWalk, &cfg.env, &cfg.train).is_err());
    }
}
