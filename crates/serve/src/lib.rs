//! # qmarl-serve — micro-batched policy inference with atomic hot-swap
//!
//! The deployment half of the
//! [QMARL reproduction](https://arxiv.org/abs/2203.10443): once a
//! framework is trained and snapshotted, this crate serves its
//! action-selection over localhost TCP. Std-only — sockets, threads and
//! `mpsc` channels; no async runtime, no serialization dependency.
//!
//! ```text
//!  clients ──TCP──▶ handler threads ──mpsc──▶ batcher ──▶ ServablePolicy
//!                     │   ▲                   (1 thread)    └ one prebound
//!                     │   └─ per-job reply        │           lane-slab call
//!                     ▼                           ▼           per tick
//!                  protocol.rs                PolicySlot ◀── watcher thread
//!                  (framed codec)             (Arc swap)     (polls *.ckpt)
//! ```
//!
//! * [`protocol`] — length-prefixed binary frames and a blocking
//!   [`protocol::ServeClient`].
//! * [`batcher`] — the coalescing core: requests arriving within a
//!   configurable window execute as **one**
//!   [`qmarl_core::serving::ServablePolicy::act_batch`] lane-slab call,
//!   bit-identical to serving them one at a time (`window = 0` *is* the
//!   one-at-a-time baseline). [`batcher::PolicySlot`] holds the policy
//!   behind an `Arc` so hot-swaps are pointer exchanges.
//! * [`server`] — accept loop, per-connection handlers, graceful
//!   drain-on-shutdown ([`server::ServerHandle::shutdown`] answers every
//!   request that reached the server before returning).
//! * [`watch`] — polls a checkpoint directory, loads new
//!   [`qmarl_core::checkpoint::FrameworkSnapshot`]s off the serving path
//!   and swaps them in; truncated or torn files are counted and skipped.
//! * [`stream`] — seeded scenario-distributed observation streams for
//!   load generation.
//! * [`hist`] — a dependency-free geometric latency histogram with a
//!   property-tested quantile error bound.
//!
//! The `loadgen` binary replays scenario observations against a server
//! at configurable offered load and writes `BENCH_serve.json` (p50/p99
//! latency and actions/s per offered-load × batch-window × backend
//! cell). See the README's *Serving* section for the wire format and
//! benchmark schema.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batcher;
pub mod error;
pub mod hist;
pub mod protocol;
pub mod server;
pub mod stream;
mod sync;
pub mod watch;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::batcher::{BatchConfig, JobError, PolicySlot, ServeStats};
    pub use crate::error::ServeError;
    pub use crate::hist::LatencyHistogram;
    pub use crate::protocol::{Request, Response, RetryStats, ServeClient, ServerInfo};
    pub use crate::server::{serve, DrainReport, ServerConfig, ServerHandle};
    pub use crate::stream::ObsStream;
    pub use crate::watch::{spawn_watcher, WatchConfig, WatcherHandle};
    pub use qmarl_chaos::{FaultPlan, RetryPolicy};
}
