//! Error type for the inference-serving layer.

use std::error::Error;
use std::fmt;

use qmarl_core::error::CoreError;

/// Errors surfaced by the policy server, protocol codec and client.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// A wire frame violated the protocol (bad opcode, length, payload).
    Protocol(String),
    /// The policy layer rejected a request or failed to build.
    Core(CoreError),
    /// The server is shutting down and no longer accepts work.
    Shutdown,
    /// A serving configuration value was rejected.
    InvalidConfig(String),
    /// The server shed the request: its queue or connection budget is
    /// full. Transient by construction — retry after backoff.
    Busy {
        /// Queue depth the server reported when it shed the request.
        queue_depth: u64,
    },
    /// The server answered with a typed ERROR frame. Not retryable:
    /// the request itself was rejected (bad shape, no policy, …), so
    /// resending the same bytes yields the same refusal.
    Server(String),
    /// A retrying client gave up: every attempt failed with a
    /// transient error.
    RetriesExhausted {
        /// Total attempts made (initial try + retries).
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<ServeError>,
    },
}

impl ServeError {
    /// Whether a retry with backoff can plausibly succeed: transport
    /// faults ([`ServeError::Io`]), torn/garbled frames
    /// ([`ServeError::Protocol`] — the connection is re-established on
    /// retry) and explicit shedding ([`ServeError::Busy`]). Typed
    /// server refusals, shutdown and config errors are final.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Io(_) | ServeError::Protocol(_) | ServeError::Busy { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Core(e) => write!(f, "policy error: {e}"),
            ServeError::Shutdown => write!(f, "server is shutting down"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Busy { queue_depth } => {
                write!(f, "server busy (queue depth {queue_depth})")
            }
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ServeError::from(std::io::Error::other("x"));
        assert!(e.to_string().contains("i/o"));
        assert!(e.source().is_some());
        let e = ServeError::from(CoreError::InvalidConfig("y".into()));
        assert!(e.source().is_some());
        assert!(ServeError::Protocol("bad".into()).source().is_none());
        assert!(!ServeError::Shutdown.to_string().is_empty());
        assert!(!ServeError::InvalidConfig("z".into()).to_string().is_empty());
        let gave_up = ServeError::RetriesExhausted {
            attempts: 7,
            last: Box::new(ServeError::Busy { queue_depth: 12 }),
        };
        assert!(gave_up.to_string().contains("7 attempts"));
        assert!(gave_up.source().is_some());
    }

    #[test]
    fn retryability_separates_transient_from_final() {
        assert!(ServeError::from(std::io::Error::other("reset")).is_retryable());
        assert!(ServeError::Protocol("torn frame".into()).is_retryable());
        assert!(ServeError::Busy { queue_depth: 3 }.is_retryable());
        assert!(!ServeError::Server("bad shape".into()).is_retryable());
        assert!(!ServeError::Shutdown.is_retryable());
        assert!(!ServeError::InvalidConfig("x".into()).is_retryable());
        let gave_up = ServeError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ServeError::Shutdown),
        };
        assert!(!gave_up.is_retryable());
    }
}
