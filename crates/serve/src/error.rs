//! Error type for the inference-serving layer.

use std::error::Error;
use std::fmt;

use qmarl_core::error::CoreError;

/// Errors surfaced by the policy server, protocol codec and client.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// A wire frame violated the protocol (bad opcode, length, payload).
    Protocol(String),
    /// The policy layer rejected a request or failed to build.
    Core(CoreError),
    /// The server is shutting down and no longer accepts work.
    Shutdown,
    /// A serving configuration value was rejected.
    InvalidConfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Core(e) => write!(f, "policy error: {e}"),
            ServeError::Shutdown => write!(f, "server is shutting down"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ServeError::from(std::io::Error::other("x"));
        assert!(e.to_string().contains("i/o"));
        assert!(e.source().is_some());
        let e = ServeError::from(CoreError::InvalidConfig("y".into()));
        assert!(e.source().is_some());
        assert!(ServeError::Protocol("bad".into()).source().is_none());
        assert!(!ServeError::Shutdown.to_string().is_empty());
        assert!(!ServeError::InvalidConfig("z".into()).to_string().is_empty());
    }
}
