//! Wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every message is one frame: a `u32` little-endian payload length
//! followed by the payload. The first payload byte is an opcode:
//!
//! | opcode | direction | layout after the opcode |
//! |--------|-----------|-------------------------|
//! | `0x01` ACT   | client → server | `req_id:u64` `n_obs:u32` `n_obs × f64` |
//! | `0x02` INFO  | client → server | `req_id:u64` |
//! | `0x81` ACT-OK| server → client | `req_id:u64` `n_agents:u32` `n_agents × u16` actions |
//! | `0x82` INFO-OK| server → client | `req_id:u64` `n_agents:u32` `obs_dim:u32` `n_actions:u32` `policy_version:u64` `requests_served:u64` `batches_executed:u64` `policy_swaps:u64` `requests_shed:u64` `deadline_expired:u64` `corrupt_skips:u64` `queue_depth:u64` |
//! | `0x83` BUSY  | server → client | `req_id:u64` `queue_depth:u64` |
//! | `0xEE` ERROR | server → client | `req_id:u64` utf-8 message |
//!
//! BUSY is the overload-shedding reply: the request was **not** queued
//! (queue or connection budget full) and the client should back off and
//! retry. ERROR means the request itself was rejected — retrying the
//! same bytes is pointless.
//!
//! All integers and floats are little-endian. Observations are the
//! concatenated per-agent features (`n_agents × obs_dim` values), the
//! same flat layout [`qmarl_core::serving::ServablePolicy::act`] takes.
//! Frames larger than [`MAX_FRAME_LEN`] are rejected before allocation
//! so a corrupt length prefix cannot balloon memory.

use std::io::{Read, Write};
use std::net::TcpStream;

use rand::{Rng, SeedableRng};

use crate::error::ServeError;

/// Hard cap on a frame payload (1 MiB) — far above any real request.
pub const MAX_FRAME_LEN: usize = 1 << 20;

const OP_ACT: u8 = 0x01;
const OP_INFO: u8 = 0x02;
const OP_ACT_OK: u8 = 0x81;
const OP_INFO_OK: u8 = 0x82;
const OP_BUSY: u8 = 0x83;
const OP_ERROR: u8 = 0xEE;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Select actions for one flat observation vector.
    Act {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Flat `n_agents × obs_dim` features.
        observation: Vec<f64>,
    },
    /// Ask for the server's dimensions and counters.
    Info {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
}

/// Server dimensions and lifetime counters, returned by INFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Number of agents the loaded policy controls.
    pub n_agents: u32,
    /// Per-agent observation length.
    pub obs_dim: u32,
    /// Per-agent action-space size.
    pub n_actions: u32,
    /// Monotonic policy version; bumps on every hot-swap.
    pub policy_version: u64,
    /// ACT requests answered successfully since startup.
    pub requests_served: u64,
    /// Micro-batches executed since startup.
    pub batches_executed: u64,
    /// Hot-swaps applied since startup.
    pub policy_swaps: u64,
    /// ACT requests shed with BUSY (queue/connection budget full).
    pub requests_shed: u64,
    /// ACT requests that expired in the queue past their deadline.
    pub deadline_expired: u64,
    /// Torn/corrupt checkpoint files the watcher skipped.
    pub corrupt_skips: u64,
    /// Jobs sitting in the batcher queue right now.
    pub queue_depth: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Actions for an [`Request::Act`], one per agent.
    Act {
        /// Echo of the request id.
        id: u64,
        /// Selected action index per agent.
        actions: Vec<u16>,
    },
    /// Answer to an [`Request::Info`].
    Info {
        /// Echo of the request id.
        id: u64,
        /// Dimensions and counters.
        info: ServerInfo,
    },
    /// The request was shed before queueing: back off and retry.
    Busy {
        /// Echo of the request id (0 when shed at the connection level).
        id: u64,
        /// Batcher queue depth at shed time.
        queue_depth: u64,
    },
    /// The request was understood but could not be served.
    Error {
        /// Echo of the request id (0 when the id itself was unreadable).
        id: u64,
        /// Human-readable reason.
        message: String,
    },
}

/// Sequential byte reader over a frame payload.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if self.pos + n > self.buf.len() {
            return Err(ServeError::Protocol(format!(
                "frame truncated: wanted {n} bytes at offset {}, payload is {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// `take` with a compile-time length, returning an owned array so
    /// the `from_le_bytes` decoders below stay panic-free: `take`
    /// already guarantees exactly `N` bytes, and the copy makes that
    /// guarantee a type-level fact instead of a runtime `expect`.
    fn take_n<const N: usize>(&mut self) -> Result<[u8; N], ServeError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(self.take_n()?))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take_n()?))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take_n()?))
    }

    fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_le_bytes(self.take_n()?))
    }

    fn finish(&self) -> Result<(), ServeError> {
        if self.pos != self.buf.len() {
            return Err(ServeError::Protocol(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Request {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Act { id, observation } => {
                let mut b = Vec::with_capacity(13 + 8 * observation.len());
                b.push(OP_ACT);
                b.extend_from_slice(&id.to_le_bytes());
                b.extend_from_slice(&(observation.len() as u32).to_le_bytes());
                for v in observation {
                    b.extend_from_slice(&v.to_le_bytes());
                }
                b
            }
            Request::Info { id } => {
                let mut b = Vec::with_capacity(9);
                b.push(OP_INFO);
                b.extend_from_slice(&id.to_le_bytes());
                b
            }
        }
    }

    /// Parse a frame payload; rejects unknown opcodes, short payloads
    /// and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, ServeError> {
        let mut rd = Rd::new(payload);
        let req = match rd.u8()? {
            OP_ACT => {
                let id = rd.u64()?;
                let n = rd.u32()? as usize;
                if n > MAX_FRAME_LEN / 8 {
                    return Err(ServeError::Protocol(format!(
                        "observation length {n} exceeds the frame cap"
                    )));
                }
                let mut observation = Vec::with_capacity(n);
                for _ in 0..n {
                    observation.push(rd.f64()?);
                }
                Request::Act { id, observation }
            }
            OP_INFO => Request::Info { id: rd.u64()? },
            op => {
                return Err(ServeError::Protocol(format!(
                    "unknown request opcode 0x{op:02x}"
                )))
            }
        };
        rd.finish()?;
        Ok(req)
    }

    /// The correlation id, for error replies.
    pub fn id(&self) -> u64 {
        match self {
            Request::Act { id, .. } | Request::Info { id } => *id,
        }
    }
}

impl Response {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Act { id, actions } => {
                let mut b = Vec::with_capacity(13 + 2 * actions.len());
                b.push(OP_ACT_OK);
                b.extend_from_slice(&id.to_le_bytes());
                b.extend_from_slice(&(actions.len() as u32).to_le_bytes());
                for a in actions {
                    b.extend_from_slice(&a.to_le_bytes());
                }
                b
            }
            Response::Info { id, info } => {
                let mut b = Vec::with_capacity(9 + 12 + 64);
                b.push(OP_INFO_OK);
                b.extend_from_slice(&id.to_le_bytes());
                b.extend_from_slice(&info.n_agents.to_le_bytes());
                b.extend_from_slice(&info.obs_dim.to_le_bytes());
                b.extend_from_slice(&info.n_actions.to_le_bytes());
                b.extend_from_slice(&info.policy_version.to_le_bytes());
                b.extend_from_slice(&info.requests_served.to_le_bytes());
                b.extend_from_slice(&info.batches_executed.to_le_bytes());
                b.extend_from_slice(&info.policy_swaps.to_le_bytes());
                b.extend_from_slice(&info.requests_shed.to_le_bytes());
                b.extend_from_slice(&info.deadline_expired.to_le_bytes());
                b.extend_from_slice(&info.corrupt_skips.to_le_bytes());
                b.extend_from_slice(&info.queue_depth.to_le_bytes());
                b
            }
            Response::Busy { id, queue_depth } => {
                let mut b = Vec::with_capacity(17);
                b.push(OP_BUSY);
                b.extend_from_slice(&id.to_le_bytes());
                b.extend_from_slice(&queue_depth.to_le_bytes());
                b
            }
            Response::Error { id, message } => {
                let mut b = Vec::with_capacity(9 + message.len());
                b.push(OP_ERROR);
                b.extend_from_slice(&id.to_le_bytes());
                b.extend_from_slice(message.as_bytes());
                b
            }
        }
    }

    /// Parse a frame payload; rejects unknown opcodes, short payloads
    /// and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, ServeError> {
        let mut rd = Rd::new(payload);
        let resp = match rd.u8()? {
            OP_ACT_OK => {
                let id = rd.u64()?;
                let n = rd.u32()? as usize;
                if n > MAX_FRAME_LEN / 2 {
                    return Err(ServeError::Protocol(format!(
                        "action count {n} exceeds the frame cap"
                    )));
                }
                let mut actions = Vec::with_capacity(n);
                for _ in 0..n {
                    actions.push(rd.u16()?);
                }
                Response::Act { id, actions }
            }
            OP_INFO_OK => {
                let id = rd.u64()?;
                let info = ServerInfo {
                    n_agents: rd.u32()?,
                    obs_dim: rd.u32()?,
                    n_actions: rd.u32()?,
                    policy_version: rd.u64()?,
                    requests_served: rd.u64()?,
                    batches_executed: rd.u64()?,
                    policy_swaps: rd.u64()?,
                    requests_shed: rd.u64()?,
                    deadline_expired: rd.u64()?,
                    corrupt_skips: rd.u64()?,
                    queue_depth: rd.u64()?,
                };
                Response::Info { id, info }
            }
            OP_BUSY => Response::Busy {
                id: rd.u64()?,
                queue_depth: rd.u64()?,
            },
            OP_ERROR => {
                let id = rd.u64()?;
                let rest = rd.take(rd.buf.len() - rd.pos)?;
                let message = String::from_utf8(rest.to_vec())
                    .map_err(|_| ServeError::Protocol("error message is not utf-8".into()))?;
                Response::Error { id, message }
            }
            op => {
                return Err(ServeError::Protocol(format!(
                    "unknown response opcode 0x{op:02x}"
                )))
            }
        };
        rd.finish()?;
        Ok(resp)
    }
}

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection between messages).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ServeError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ServeError::Protocol(
                    "connection closed mid-length-prefix".into(),
                ))
            }
            Ok(n) => got += n,
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| ServeError::Protocol(format!("connection closed mid-frame: {e}")))?;
    Ok(Some(payload))
}

/// Counters a retrying client accumulates across its lifetime, for
/// benchmark reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retries performed (attempts beyond the first, across all calls).
    pub retries: u64,
    /// BUSY sheds received.
    pub sheds: u64,
    /// Reconnects after a dropped/torn connection.
    pub reconnects: u64,
    /// Calls that exhausted their retry budget.
    pub gave_up: u64,
}

/// Retry configuration + jitter source for a [`ServeClient`].
#[derive(Debug)]
struct RetryState {
    policy: qmarl_chaos::RetryPolicy,
    rng: rand::rngs::StdRng,
    stats: RetryStats,
}

/// A blocking client for the serve protocol.
///
/// One request in flight at a time: `act`/`info` write a frame and block
/// for the matching response. Dropping the client closes the connection
/// cleanly (the server sees EOF at a frame boundary).
///
/// With [`ServeClient::with_retry`], transient failures — dropped
/// connections, torn frames, BUSY sheds — are retried with capped
/// exponential backoff and jitter. ACT retries are safe because action
/// selection is deterministic: resending the same observation to the
/// same policy version yields the same actions, so a retry can never
/// produce a *different* answer, only a late one. Typed server ERRORs
/// are final and returned immediately as [`ServeError::Server`].
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    addr: std::net::SocketAddr,
    next_id: u64,
    retry: Option<RetryState>,
}

impl ServeClient {
    /// Connect to a running policy server.
    pub fn connect(addr: std::net::SocketAddr) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            stream,
            addr,
            next_id: 1,
            retry: None,
        })
    }

    /// Enable retries: transient failures back off per `policy` with
    /// jitter drawn from a client-local RNG seeded with `jitter_seed`.
    pub fn with_retry(mut self, policy: qmarl_chaos::RetryPolicy, jitter_seed: u64) -> Self {
        self.retry = Some(RetryState {
            policy,
            rng: rand::rngs::StdRng::seed_from_u64(jitter_seed),
            stats: RetryStats::default(),
        });
        self
    }

    /// Lifetime retry counters (zero when retries are not enabled).
    pub fn retry_stats(&self) -> RetryStats {
        self.retry
            .as_ref()
            .map_or(RetryStats::default(), |r| r.stats)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Protocol("server closed the connection".into()))?;
        let resp = Response::decode(&payload)?;
        let resp_id = match &resp {
            Response::Act { id, .. }
            | Response::Info { id, .. }
            | Response::Busy { id, .. }
            | Response::Error { id, .. } => *id,
        };
        if resp_id != req.id() && resp_id != 0 {
            return Err(ServeError::Protocol(format!(
                "response id {resp_id} does not match request id {}",
                req.id()
            )));
        }
        Ok(resp)
    }

    /// One ACT attempt, every outcome mapped to a typed error.
    fn act_once(&mut self, req: &Request) -> Result<Vec<u16>, ServeError> {
        match self.roundtrip(req)? {
            Response::Act { actions, .. } => Ok(actions),
            Response::Busy { queue_depth, .. } => Err(ServeError::Busy { queue_depth }),
            Response::Error { message, .. } => Err(ServeError::Server(message)),
            Response::Info { .. } => Err(ServeError::Protocol(
                "INFO response to an ACT request".into(),
            )),
        }
    }

    /// Select actions for one flat `n_agents × obs_dim` observation.
    ///
    /// # Errors
    ///
    /// Without retries: the first failure. With retries: final errors
    /// immediately, or [`ServeError::RetriesExhausted`] once every
    /// allowed attempt failed transiently.
    pub fn act(&mut self, observation: &[f64]) -> Result<Vec<u16>, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request::Act {
            id,
            observation: observation.to_vec(),
        };
        let mut attempt: u32 = 0;
        loop {
            let err = match self.act_once(&req) {
                Ok(actions) => return Ok(actions),
                Err(e) => e,
            };
            let Some(retry) = self.retry.as_mut() else {
                return Err(err);
            };
            if !err.is_retryable() {
                return Err(err);
            }
            if matches!(err, ServeError::Busy { .. }) {
                retry.stats.sheds += 1;
            }
            if attempt >= retry.policy.max_retries {
                retry.stats.gave_up += 1;
                return Err(ServeError::RetriesExhausted {
                    attempts: attempt + 1,
                    last: Box::new(err),
                });
            }
            retry.stats.retries += 1;
            let jitter = retry.rng.gen::<f64>();
            std::thread::sleep(retry.policy.delay(attempt, jitter));
            attempt += 1;
            // A dropped or garbled connection is unusable; start fresh.
            // A failed reconnect consumes the next attempt as an Io
            // error via act_once on the stale stream — no special case.
            if let Ok(fresh) = TcpStream::connect(self.addr) {
                let _ = fresh.set_nodelay(true);
                self.stream = fresh;
                if let Some(retry) = self.retry.as_mut() {
                    retry.stats.reconnects += 1;
                }
            }
        }
    }

    /// Fetch the server's dimensions and counters.
    pub fn info(&mut self) -> Result<ServerInfo, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.roundtrip(&Request::Info { id })? {
            Response::Info { info, .. } => Ok(info),
            Response::Busy { queue_depth, .. } => Err(ServeError::Busy { queue_depth }),
            Response::Error { message, .. } => Err(ServeError::Server(message)),
            Response::Act { .. } => Err(ServeError::Protocol(
                "ACT response to an INFO request".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Act {
                id: 7,
                observation: vec![0.25, -1.5, 3.0e-9, 0.0],
            },
            Request::Act {
                id: u64::MAX,
                observation: vec![],
            },
            Request::Info { id: 42 },
        ] {
            assert_eq!(Request::decode(&req.encode()).expect("round trip"), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let info = ServerInfo {
            n_agents: 4,
            obs_dim: 4,
            n_actions: 4,
            policy_version: 3,
            requests_served: 1_000_000,
            batches_executed: 31_250,
            policy_swaps: 2,
            requests_shed: 17,
            deadline_expired: 4,
            corrupt_skips: 1,
            queue_depth: 12,
        };
        for resp in [
            Response::Act {
                id: 9,
                actions: vec![0, 3, 1, 2],
            },
            Response::Info { id: 10, info },
            Response::Busy {
                id: 11,
                queue_depth: 4096,
            },
            Response::Error {
                id: 0,
                message: "no policy loaded".into(),
            },
        ] {
            assert_eq!(Response::decode(&resp.encode()).expect("round trip"), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_protocol_errors() {
        // Unknown opcodes.
        assert!(matches!(
            Request::decode(&[0x77]),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            Response::decode(&[0x13]),
            Err(ServeError::Protocol(_))
        ));
        // Every truncation of a valid ACT request fails loudly.
        let full = Request::Act {
            id: 3,
            observation: vec![1.0, 2.0],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(
                matches!(Request::decode(&full[..cut]), Err(ServeError::Protocol(_))),
                "truncation at {cut} must not parse"
            );
        }
        // Trailing garbage fails loudly.
        let mut padded = full.clone();
        padded.push(0);
        assert!(matches!(
            Request::decode(&padded),
            Err(ServeError::Protocol(_))
        ));
        // A length claim past the cap is rejected before allocation.
        let mut huge = vec![OP_ACT];
        huge.extend_from_slice(&1u64.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&huge),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn frame_io_round_trips_and_guards_length() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        write_frame(&mut wire, b"").expect("write empty");
        let mut rd = &wire[..];
        assert_eq!(read_frame(&mut rd).expect("frame"), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut rd).expect("frame"), Some(Vec::new()));
        assert_eq!(read_frame(&mut rd).expect("eof"), None);

        // A corrupt length prefix is rejected without allocating.
        let bad = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(ServeError::Protocol(_))
        ));
        // EOF mid-prefix and mid-payload are loud.
        assert!(matches!(
            read_frame(&mut &wire[..2]),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            read_frame(&mut &wire[..6]),
            Err(ServeError::Protocol(_))
        ));
    }

    /// The frame guard is exact: a payload of exactly [`MAX_FRAME_LEN`]
    /// bytes passes both directions; one byte more is rejected by both.
    #[test]
    fn frame_guard_boundary_is_exact() {
        let at_limit = vec![0xABu8; MAX_FRAME_LEN];
        let mut wire = Vec::new();
        write_frame(&mut wire, &at_limit).expect("at-limit write");
        let back = read_frame(&mut &wire[..]).expect("at-limit read");
        assert_eq!(back.as_deref(), Some(&at_limit[..]));

        let over = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            write_frame(&mut Vec::new(), &over),
            Err(ServeError::Protocol(_))
        ));
        let mut bad_wire = Vec::new();
        bad_wire.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        bad_wire.extend_from_slice(&over);
        assert!(matches!(
            read_frame(&mut &bad_wire[..]),
            Err(ServeError::Protocol(_))
        ));
    }

    /// The ACT observation-count guard is exact too: a claim of exactly
    /// `MAX_FRAME_LEN / 8` values decodes (given the bytes), one more is
    /// rejected before any allocation.
    #[test]
    fn observation_count_guard_boundary_is_exact() {
        let n = MAX_FRAME_LEN / 8;
        let mut at_limit = vec![OP_ACT];
        at_limit.extend_from_slice(&1u64.to_le_bytes());
        at_limit.extend_from_slice(&(n as u32).to_le_bytes());
        at_limit.extend_from_slice(&vec![0u8; 8 * n]);
        match Request::decode(&at_limit).expect("at-limit decode") {
            Request::Act { observation, .. } => assert_eq!(observation.len(), n),
            other => panic!("unexpected decode: {other:?}"),
        }

        let mut over = vec![OP_ACT];
        over.extend_from_slice(&1u64.to_le_bytes());
        over.extend_from_slice(&((n as u32) + 1).to_le_bytes());
        assert!(matches!(
            Request::decode(&over),
            Err(ServeError::Protocol(_))
        ));
    }
}
