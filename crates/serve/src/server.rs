//! The TCP policy server: accept loop, per-connection handlers, and
//! graceful drain.
//!
//! Topology: one non-blocking accept thread, one handler thread per
//! connection, one batcher thread ([`crate::batcher::run_batcher`]).
//! Handlers decode frames, enqueue ACT jobs on the batcher's channel and
//! block on the per-job reply channel; INFO requests are answered
//! directly from the [`PolicySlot`] and [`ServeStats`] without touching
//! the batch path.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is a drain, not an abort:
//!
//! 1. the accept thread stops (no new connections) and drops its job
//!    sender;
//! 2. every open connection's **read** side is shut down, so handlers
//!    finish the request they are on — the batcher still answers it and
//!    the response still goes out the intact write side — then see EOF
//!    and exit, dropping their senders;
//! 3. with every sender gone the batcher drains the queue and exits.
//!
//! No request that reached the server is dropped; the returned
//! [`DrainReport`] carries the final counters and the service-time
//! histogram.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qmarl_core::serving::ServablePolicy;

use crate::batcher::{run_batcher, BatchConfig, Job, PolicySlot, ServeStats};
use crate::error::ServeError;
use crate::hist::LatencyHistogram;
use crate::protocol::{read_frame, write_frame, Request, Response, ServerInfo};

/// How often the accept loop polls for the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: SocketAddr,
    /// Micro-batching knobs for the single batcher thread.
    pub batch: BatchConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            batch: BatchConfig::default(),
        }
    }
}

/// Final counters returned by a graceful shutdown.
#[derive(Debug)]
pub struct DrainReport {
    /// ACT requests answered successfully over the server's lifetime.
    pub requests_served: u64,
    /// Micro-batches executed.
    pub batches_executed: u64,
    /// Requests rejected with an error reply.
    pub requests_rejected: u64,
    /// Hot-swaps applied.
    pub policy_swaps: u64,
    /// Per-batch service time (execution only, not queueing).
    pub batch_hist: LatencyHistogram,
}

/// A running policy server.
///
/// Dropping the handle without calling [`ServerHandle::shutdown`] leaks
/// the serving threads for the rest of the process — always shut down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    slot: Arc<PolicySlot>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hot-swap slot; share it with a
    /// [`crate::watch::spawn_watcher`] or swap programmatically.
    pub fn slot(&self) -> &Arc<PolicySlot> {
        &self.slot
    }

    /// Atomically replace the serving policy (bumps the version).
    pub fn swap_policy(&self, next: ServablePolicy) {
        self.slot.swap(next);
    }

    /// Live counters.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Stop accepting, drain every queued and in-flight request, join
    /// all threads and return the final counters.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Close only the *read* side: handlers finish the request they
        // are serving (the response still goes out), then see EOF.
        for conn in self.conns.lock().expect("conn registry").iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler registry"));
        for t in handlers {
            let _ = t.join();
        }
        // Every job sender is gone now; the batcher drains and exits.
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
        DrainReport {
            requests_served: self.stats.requests_served.load(Ordering::SeqCst),
            batches_executed: self.stats.batches_executed.load(Ordering::SeqCst),
            requests_rejected: self.stats.requests_rejected.load(Ordering::SeqCst),
            policy_swaps: self.slot.swaps(),
            batch_hist: self.stats.batch_hist.lock().expect("hist lock").clone(),
        }
    }
}

/// Start serving `policy` on `config.addr`.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] for bad batch knobs and
/// [`ServeError::Io`] when the bind fails.
pub fn serve(policy: ServablePolicy, config: ServerConfig) -> Result<ServerHandle, ServeError> {
    config.batch.validate()?;
    let listener = TcpListener::bind(config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let slot = Arc::new(PolicySlot::new(policy));
    let stats = Arc::new(ServeStats::new());
    let stop = Arc::new(AtomicBool::new(false));
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let batcher_thread = {
        let (slot, stats, batch) = (slot.clone(), stats.clone(), config.batch);
        std::thread::spawn(move || run_batcher(job_rx, slot, stats, batch))
    };

    let accept_thread = {
        let (slot, stats, stop) = (slot.clone(), stats.clone(), stop.clone());
        let (handlers, conns) = (handlers.clone(), conns.clone());
        std::thread::spawn(move || {
            // `job_tx` lives here and is cloned per connection; when this
            // thread and every handler exit, the batcher sees disconnect.
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        if let Ok(clone) = stream.try_clone() {
                            conns.lock().expect("conn registry").push(clone);
                        }
                        let (slot, stats, tx) = (slot.clone(), stats.clone(), job_tx.clone());
                        let t = std::thread::spawn(move || handle_conn(stream, tx, slot, stats));
                        handlers.lock().expect("handler registry").push(t);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
        })
    };

    Ok(ServerHandle {
        addr,
        slot,
        stats,
        stop,
        accept_thread: Some(accept_thread),
        batcher_thread: Some(batcher_thread),
        handlers,
        conns,
    })
}

/// Serve one connection until EOF or a fatal socket error.
fn handle_conn(
    mut stream: TcpStream,
    job_tx: Sender<Job>,
    slot: Arc<PolicySlot>,
    stats: Arc<ServeStats>,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean close, torn frame or reset
        };
        let response = match Request::decode(&payload) {
            Ok(Request::Act { id, observation }) => {
                act_via_batcher(id, observation, &job_tx, &stats)
            }
            Ok(Request::Info { id }) => {
                let policy = slot.current();
                Response::Info {
                    id,
                    info: ServerInfo {
                        n_agents: policy.n_agents() as u32,
                        obs_dim: policy.obs_dim() as u32,
                        n_actions: policy.n_actions() as u32,
                        policy_version: slot.version(),
                        requests_served: stats.requests_served.load(Ordering::Relaxed),
                        batches_executed: stats.batches_executed.load(Ordering::Relaxed),
                        policy_swaps: slot.swaps(),
                    },
                }
            }
            Err(e) => Response::Error {
                id: 0,
                message: e.to_string(),
            },
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Enqueue one ACT job and block for its reply.
fn act_via_batcher(
    id: u64,
    observation: Vec<f64>,
    job_tx: &Sender<Job>,
    stats: &ServeStats,
) -> Response {
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        observation,
        reply: reply_tx,
    };
    if job_tx.send(job).is_err() {
        return Response::Error {
            id,
            message: "server is shutting down".into(),
        };
    }
    stats.requests_enqueued.fetch_add(1, Ordering::SeqCst);
    match reply_rx.recv() {
        Ok(Ok(actions)) => Response::Act { id, actions },
        Ok(Err(message)) => Response::Error { id, message },
        Err(_) => Response::Error {
            id,
            message: "server is shutting down".into(),
        },
    }
}
