//! The TCP policy server: accept loop, per-connection handlers, and
//! graceful drain.
//!
//! Topology: one non-blocking accept thread, one handler thread per
//! connection, one batcher thread ([`crate::batcher::run_batcher`]).
//! Handlers decode frames, enqueue ACT jobs on the batcher's channel and
//! block on the per-job reply channel; INFO requests are answered
//! directly from the [`PolicySlot`] and [`ServeStats`] without touching
//! the batch path.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is a drain, not an abort:
//!
//! 1. the accept thread stops (no new connections) and drops its job
//!    sender;
//! 2. every open connection's **read** side is shut down, so handlers
//!    finish the request they are on — the batcher still answers it and
//!    the response still goes out the intact write side — then see EOF
//!    and exit, dropping their senders;
//! 3. with every sender gone the batcher drains the queue and exits.
//!
//! No request that reached the server is dropped; the returned
//! [`DrainReport`] carries the final counters and the service-time
//! histogram.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qmarl_chaos::{site, FaultPlan};
use qmarl_core::serving::ServablePolicy;

use crate::batcher::{run_batcher, BatchConfig, Job, JobError, PolicySlot, ServeStats};
use crate::error::ServeError;
use crate::hist::LatencyHistogram;
use crate::protocol::{read_frame, write_frame, Request, Response, ServerInfo};

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: SocketAddr,
    /// Micro-batching knobs for the single batcher thread.
    pub batch: BatchConfig,
    /// Concurrent-connection bound; connections past it are answered
    /// BUSY and closed at accept. Zero means unlimited.
    pub max_conns: usize,
    /// How often the accept loop polls for the stop flag. Tests widen
    /// this to force the shutdown race deterministically.
    pub accept_poll: Duration,
    /// Seeded fault injection. `None` (the default) is fully inert:
    /// every seam is a single `Option` test on the fault-free path.
    pub faults: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: std::net::SocketAddr::from(([127, 0, 0, 1], 0)),
            batch: BatchConfig::default(),
            max_conns: 0,
            accept_poll: Duration::from_millis(5),
            faults: None,
        }
    }
}

/// Final counters returned by a graceful shutdown.
#[derive(Debug)]
pub struct DrainReport {
    /// ACT requests answered successfully over the server's lifetime.
    pub requests_served: u64,
    /// Micro-batches executed.
    pub batches_executed: u64,
    /// Requests rejected with an error reply.
    pub requests_rejected: u64,
    /// Requests shed with BUSY (queue or connection budget full).
    pub requests_shed: u64,
    /// Requests answered BUSY after expiring in the queue.
    pub deadline_expired: u64,
    /// Torn/corrupt checkpoints the watcher skipped.
    pub corrupt_skips: u64,
    /// Faults injected by the configured plan (zero without one).
    pub faults_injected: u64,
    /// Hot-swaps applied.
    pub policy_swaps: u64,
    /// Per-batch service time (execution only, not queueing).
    pub batch_hist: LatencyHistogram,
}

/// A running policy server.
///
/// Dropping the handle without calling [`ServerHandle::shutdown`] leaks
/// the serving threads for the rest of the process — always shut down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    slot: Arc<PolicySlot>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hot-swap slot; share it with a
    /// [`crate::watch::spawn_watcher`] or swap programmatically.
    pub fn slot(&self) -> &Arc<PolicySlot> {
        &self.slot
    }

    /// Atomically replace the serving policy (bumps the version).
    pub fn swap_policy(&self, next: ServablePolicy) {
        self.slot.swap(next);
    }

    /// Live counters.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Stop accepting, drain every queued and in-flight request, join
    /// all threads and return the final counters.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Close only the *read* side: handlers finish the request they
        // are serving (the response still goes out), then see EOF.
        for conn in crate::sync::lock(&self.conns).iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let handlers = std::mem::take(&mut *crate::sync::lock(&self.handlers));
        for t in handlers {
            let _ = t.join();
        }
        // Every job sender is gone now; the batcher drains and exits.
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
        DrainReport {
            requests_served: self.stats.requests_served.load(Ordering::SeqCst),
            batches_executed: self.stats.batches_executed.load(Ordering::SeqCst),
            requests_rejected: self.stats.requests_rejected.load(Ordering::SeqCst),
            requests_shed: self.stats.requests_shed.load(Ordering::SeqCst),
            deadline_expired: self.stats.deadline_expired.load(Ordering::SeqCst),
            corrupt_skips: self.stats.corrupt_skips.load(Ordering::SeqCst),
            faults_injected: self.stats.faults_injected.load(Ordering::SeqCst),
            policy_swaps: self.slot.swaps(),
            batch_hist: crate::sync::lock(&self.stats.batch_hist).clone(),
        }
    }
}

/// Start serving `policy` on `config.addr`.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] for bad batch knobs and
/// [`ServeError::Io`] when the bind fails.
pub fn serve(policy: ServablePolicy, config: ServerConfig) -> Result<ServerHandle, ServeError> {
    config.batch.validate()?;
    if let Some(plan) = &config.faults {
        plan.validate()
            .map_err(|e| ServeError::InvalidConfig(e.to_string()))?;
    }
    if config.accept_poll.is_zero() {
        return Err(ServeError::InvalidConfig(
            "accept_poll must be non-zero".into(),
        ));
    }
    let listener = TcpListener::bind(config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let slot = Arc::new(PolicySlot::new(policy));
    let stats = Arc::new(ServeStats::new());
    let stop = Arc::new(AtomicBool::new(false));
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let batcher_thread = {
        let (slot, stats, batch) = (slot.clone(), stats.clone(), config.batch);
        let faults = config.faults;
        std::thread::spawn(move || run_batcher(job_rx, slot, stats, batch, faults))
    };

    let accept_thread = {
        let (slot, stats, stop) = (slot.clone(), stats.clone(), stop.clone());
        let (handlers, conns) = (handlers.clone(), conns.clone());
        let cfg = ConnConfig {
            batch: config.batch,
            faults: config.faults,
        };
        let max_conns = config.max_conns;
        let accept_poll = config.accept_poll;
        std::thread::spawn(move || {
            // `job_tx` lives here and is cloned per connection; when this
            // thread and every handler exit, the batcher sees disconnect.
            let active = Arc::new(AtomicUsize::new(0));
            let mut next_conn_id: u64 = 0;
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        if max_conns > 0 && active.load(Ordering::SeqCst) >= max_conns {
                            // Over the connection budget: shed with a
                            // typed BUSY frame instead of queueing work
                            // we cannot serve promptly.
                            stats.requests_shed.fetch_add(1, Ordering::SeqCst);
                            let busy = Response::Busy {
                                id: 0,
                                queue_depth: stats.queue_depth.load(Ordering::SeqCst),
                            };
                            let _ = write_frame(&mut stream, &busy.encode());
                            continue;
                        }
                        if let Ok(clone) = stream.try_clone() {
                            crate::sync::lock(&conns).push(clone);
                        }
                        let conn_id = next_conn_id;
                        next_conn_id += 1;
                        active.fetch_add(1, Ordering::SeqCst);
                        let (slot, stats, tx) = (slot.clone(), stats.clone(), job_tx.clone());
                        let (cfg, active) = (cfg, active.clone());
                        let t = std::thread::spawn(move || {
                            handle_conn(stream, conn_id, tx, slot, stats, cfg);
                            active.fetch_sub(1, Ordering::SeqCst);
                        });
                        crate::sync::lock(&handlers).push(t);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(accept_poll);
                    }
                    Err(_) => break,
                }
            }
            // Shutdown race: connections that reached the listen backlog
            // before the stop flag was checked would otherwise be reset
            // silently when the listener drops. Drain them with a typed
            // ERROR frame so those clients see a refusal, not a hang-up.
            while let Ok((mut stream, _peer)) = listener.accept() {
                let refusal = Response::Error {
                    id: 0,
                    message: "server is draining and no longer accepts connections".into(),
                };
                let _ = write_frame(&mut stream, &refusal.encode());
            }
        })
    };

    Ok(ServerHandle {
        addr,
        slot,
        stats,
        stop,
        accept_thread: Some(accept_thread),
        batcher_thread: Some(batcher_thread),
        handlers,
        conns,
    })
}

/// Per-connection slice of the server configuration.
#[derive(Debug, Clone, Copy)]
struct ConnConfig {
    batch: BatchConfig,
    faults: Option<FaultPlan>,
}

/// Serve one connection until EOF or a fatal socket error.
fn handle_conn(
    mut stream: TcpStream,
    conn_id: u64,
    job_tx: Sender<Job>,
    slot: Arc<PolicySlot>,
    stats: Arc<ServeStats>,
    cfg: ConnConfig,
) {
    let mut frame_idx: u64 = 0;
    loop {
        let key = FaultPlan::key2(conn_id, frame_idx);
        frame_idx += 1;
        // Injected stall: the server goes quiet before its next read, as
        // a wedged peer or a saturated NIC would.
        if let Some(plan) = &cfg.faults {
            if plan.fires(plan.stall, site::CONN_STALL, key) {
                stats.faults_injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(plan.stall_duration());
            }
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean close, torn frame or reset
        };
        // Injected drop: the connection dies right after the request was
        // read — the worst spot, because the client cannot tell whether
        // the work happened. Retried ACTs stay safe because action
        // selection is deterministic for a policy version.
        if let Some(plan) = &cfg.faults {
            if plan.fires(plan.drop, site::CONN_DROP, key) {
                stats.faults_injected.fetch_add(1, Ordering::Relaxed);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
        let response = match Request::decode(&payload) {
            Ok(Request::Act { id, observation }) => {
                act_via_batcher(id, observation, &job_tx, &stats, &cfg.batch)
            }
            Ok(Request::Info { id }) => {
                let policy = slot.current();
                Response::Info {
                    id,
                    info: ServerInfo {
                        n_agents: policy.n_agents() as u32,
                        obs_dim: policy.obs_dim() as u32,
                        n_actions: policy.n_actions() as u32,
                        policy_version: slot.version(),
                        requests_served: stats.requests_served.load(Ordering::Relaxed),
                        batches_executed: stats.batches_executed.load(Ordering::Relaxed),
                        policy_swaps: slot.swaps(),
                        requests_shed: stats.requests_shed.load(Ordering::Relaxed),
                        deadline_expired: stats.deadline_expired.load(Ordering::Relaxed),
                        corrupt_skips: stats.corrupt_skips.load(Ordering::Relaxed),
                        queue_depth: stats.queue_depth.load(Ordering::Relaxed),
                    },
                }
            }
            Err(e) => Response::Error {
                id: 0,
                message: e.to_string(),
            },
        };
        // Injected torn write: the length prefix promises a full frame
        // but only half the payload arrives before the connection dies.
        if let Some(plan) = &cfg.faults {
            if plan.fires(plan.torn, site::CONN_TORN, key) {
                stats.faults_injected.fetch_add(1, Ordering::Relaxed);
                let payload = response.encode();
                let mut torn = Vec::with_capacity(4 + payload.len() / 2);
                torn.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                torn.extend_from_slice(&payload[..payload.len() / 2]);
                let _ = stream.write_all(&torn);
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Enqueue one ACT job and block for its reply, shedding at admission
/// when the queue is at its configured bound.
fn act_via_batcher(
    id: u64,
    observation: Vec<f64>,
    job_tx: &Sender<Job>,
    stats: &ServeStats,
    batch: &BatchConfig,
) -> Response {
    let depth = stats.queue_depth.load(Ordering::SeqCst);
    if batch.max_queue > 0 && depth >= batch.max_queue as u64 {
        stats.requests_shed.fetch_add(1, Ordering::SeqCst);
        return Response::Busy {
            id,
            queue_depth: depth,
        };
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        observation,
        enqueued_at: Instant::now(),
        reply: reply_tx,
    };
    // Gauge up *before* the send so the batcher's pickup decrement can
    // never observe the job without its increment.
    stats.queue_depth.fetch_add(1, Ordering::SeqCst);
    if job_tx.send(job).is_err() {
        let _ = stats
            .queue_depth
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(1))
            });
        return Response::Error {
            id,
            message: "server is shutting down".into(),
        };
    }
    stats.requests_enqueued.fetch_add(1, Ordering::SeqCst);
    match reply_rx.recv() {
        Ok(Ok(actions)) => Response::Act { id, actions },
        Ok(Err(JobError::Expired)) => Response::Busy {
            id,
            queue_depth: stats.queue_depth.load(Ordering::SeqCst),
        },
        Ok(Err(JobError::Failed(message))) => Response::Error { id, message },
        Err(_) => Response::Error {
            id,
            message: "server is shutting down".into(),
        },
    }
}
