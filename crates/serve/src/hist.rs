//! Fixed-bucket latency histogram — no dependencies, bounded error.
//!
//! Both the server (per-batch service time) and the load generator
//! (end-to-end request latency) need quantiles over millions of samples
//! without keeping the samples. [`LatencyHistogram`] uses geometric
//! buckets with ratio 2^(1/8) (~9% per bucket) spanning 1µs–120s, so a
//! reported quantile `q̂` of a true sample `v` satisfies
//! `v ≤ q̂ ≤ v · 2^(1/8)` for any `v` inside the tracked range. That
//! bound is property-tested against a sorted-sample oracle.
//!
//! The struct is plain data: `record` is O(log buckets), `merge` is a
//! vector add, and there is no interior mutability — callers that share
//! one histogram across threads wrap it in a mutex or merge per-thread
//! copies at the end.

/// Per-bucket growth ratio exponent: bounds grow by `2^(1/RESOLUTION)`.
const RESOLUTION: i32 = 8;

/// Lowest tracked upper bound, in nanoseconds (1µs).
const LOW_NS: u64 = 1_000;

/// Everything above this lands in the overflow bucket (120s).
const HIGH_NS: u64 = 120_000_000_000;

/// A latency histogram with geometric buckets and bounded relative error.
///
/// Bucket `i` covers `(bound[i-1], bound[i]]` nanoseconds; bucket 0
/// covers `[0, 1µs]` and the final bucket is an open-ended overflow.
/// Quantiles return the upper bound of the containing bucket, clipped to
/// the largest value actually recorded, which yields the two-sided
/// guarantee documented at module level.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram covering 1µs–120s at ~9% resolution.
    pub fn new() -> Self {
        let ratio = Self::bucket_ratio();
        let mut bounds = vec![LOW_NS];
        let mut prev = LOW_NS;
        while prev < HIGH_NS {
            let next = (((prev as f64) * ratio).round() as u64).max(prev + 1);
            bounds.push(next);
            prev = next;
        }
        bounds.push(u64::MAX); // overflow bucket
        let counts = vec![0; bounds.len()];
        LatencyHistogram {
            bounds,
            counts,
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// The per-bucket growth factor (`2^(1/8)`): the worst-case
    /// multiplicative error of a reported quantile.
    pub fn bucket_ratio() -> f64 {
        2f64.powf(1.0 / RESOLUTION as f64)
    }

    /// Record one latency sample in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        let idx = self.bounds.partition_point(|&b| b < ns);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// The largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in nanoseconds, or `None` when
    /// empty. Returns the upper bound of the bucket containing the
    /// rank-`⌈q·n⌉` sample, clipped to the recorded maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(self.bounds[i].min(self.max_ns));
            }
        }
        Some(self.max_ns) // unreachable: cum reaches total
    }

    /// The median, in microseconds (0.0 when empty).
    pub fn p50_us(&self) -> f64 {
        self.quantile(0.50).unwrap_or(0) as f64 / 1_000.0
    }

    /// The 99th percentile, in microseconds (0.0 when empty).
    pub fn p99_us(&self) -> f64 {
        self.quantile(0.99).unwrap_or(0) as f64 / 1_000.0
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histograms share one fixed bucket layout"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The oracle: exact rank-⌈q·n⌉ order statistic of the raw samples.
    fn oracle(samples: &[u64], q: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_and_single_sample() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        h.record(5_000);
        // A single sample is its own quantile at every q: the bucket
        // upper bound is clipped to max_ns.
        assert_eq!(h.quantile(0.01), Some(5_000));
        assert_eq!(h.quantile(1.0), Some(5_000));
        assert_eq!(h.max_ns(), 5_000);
        assert_eq!(h.mean_ns(), 5_000.0);
    }

    #[test]
    fn sub_microsecond_and_overflow_samples_stay_bounded() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(3); // sub-µs: bucket 0, absolute error ≤ 1µs
        assert!(h.quantile(1.0).expect("non-empty") <= LOW_NS);
        let mut h = LatencyHistogram::new();
        h.record(HIGH_NS * 10); // overflow: clipped to max_ns exactly
        assert_eq!(h.quantile(0.5), Some(HIGH_NS * 10));
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let (mut a, mut b, mut all) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 0..500u64 {
            let v = 1_000 + i * 7_919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
        assert_eq!(a.max_ns(), all.max_ns());
        assert_eq!(a.mean_ns(), all.mean_ns());
    }

    proptest! {
        /// Merge is exactly "record everything into one histogram", for
        /// ANY split of the samples across any number of shards — the
        /// property the loadgen and drain-report merging rely on.
        #[test]
        fn merge_of_any_split_equals_recording_into_one(
            samples in prop::collection::vec(1u64..100_000_000_000, 0..300),
            shards in 1usize..6,
            assignment_seed in 0u64..1_000,
        ) {
            let mut parts = vec![LatencyHistogram::new(); shards];
            let mut all = LatencyHistogram::new();
            for (i, &s) in samples.iter().enumerate() {
                // Deterministic pseudo-random shard assignment.
                let shard = (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(assignment_seed) as usize % shards;
                parts[shard].record(s);
                all.record(s);
            }
            let mut merged = LatencyHistogram::new();
            for p in &parts {
                merged.merge(p);
            }
            prop_assert_eq!(merged.count(), all.count());
            prop_assert_eq!(merged.max_ns(), all.max_ns());
            prop_assert_eq!(merged.mean_ns(), all.mean_ns());
            for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile(q), all.quantile(q));
            }
        }

        /// Merging an empty histogram is an identity, both ways.
        #[test]
        fn merge_with_empty_is_identity(
            samples in prop::collection::vec(1u64..100_000_000_000, 1..100),
        ) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let before = h.clone();
            h.merge(&LatencyHistogram::new());
            prop_assert_eq!(h.count(), before.count());
            prop_assert_eq!(h.quantile(0.5), before.quantile(0.5));
            let mut empty = LatencyHistogram::new();
            empty.merge(&before);
            prop_assert_eq!(empty.count(), before.count());
            prop_assert_eq!(empty.max_ns(), before.max_ns());
            prop_assert_eq!(empty.quantile(0.99), before.quantile(0.99));
        }

        /// The documented accuracy contract: for samples inside the
        /// tracked range, every reported quantile lies in
        /// `[oracle, oracle · ratio]`.
        #[test]
        fn quantiles_bracket_the_sorted_sample_oracle(
            samples in prop::collection::vec(1_000u64..60_000_000_000, 1..400),
            q in 0.01f64..1.0,
        ) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let exact = oracle(&samples, q);
            let approx = h.quantile(q).expect("non-empty");
            prop_assert!(approx >= exact, "quantile {approx} below oracle {exact}");
            let ceiling = (exact as f64 * LatencyHistogram::bucket_ratio()).ceil() as u64 + 1;
            prop_assert!(
                approx <= ceiling,
                "quantile {approx} above oracle*ratio {ceiling} (oracle {exact})"
            );
        }
    }
}
