//! Scenario-distributed observation streams for the load generator.
//!
//! A realistic serving benchmark must replay observations with the same
//! distribution the policy will see in deployment — not uniform noise.
//! [`ObsStream`] walks a registered scenario environment with uniform
//! random actions (the distribution is a property of the *environment*
//! dynamics, not the acting policy), yielding one flat
//! `n_agents × obs_dim` request slab per tick and resetting on episode
//! end. Streams are seeded, so a load run is reproducible.

use qmarl_env::multi_agent::MultiAgentEnv;
use qmarl_env::scenario::{build_scenario_with, ScenarioEnv, ScenarioParams};
use rand::{Rng, SeedableRng};

use crate::error::ServeError;

/// A seeded, endless stream of flat observation slabs from one scenario.
pub struct ObsStream {
    env: Box<dyn ScenarioEnv>,
    rng: rand::rngs::StdRng,
    current: Vec<f64>,
}

impl std::fmt::Debug for ObsStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsStream")
            .field("n_agents", &self.env.n_agents())
            .field("obs_dim", &self.env.obs_dim())
            .finish_non_exhaustive()
    }
}

fn flatten(per_agent: &[Vec<f64>]) -> Vec<f64> {
    per_agent.iter().flatten().copied().collect()
}

impl ObsStream {
    /// Build a stream over a registered scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an unknown scenario.
    pub fn new(scenario: &str, seed: u64) -> Result<Self, ServeError> {
        let mut env = build_scenario_with(scenario, &ScenarioParams::seeded(seed))
            .map_err(|e| ServeError::InvalidConfig(e.to_string()))?;
        let (obs, _state) = env.reset();
        Ok(ObsStream {
            env,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            current: flatten(&obs),
        })
    }

    /// Length of each yielded slab (`n_agents × obs_dim`).
    pub fn request_len(&self) -> usize {
        self.env.n_agents() * self.env.obs_dim()
    }

    /// The next flat observation slab. Advances the environment with
    /// uniform random actions; episode ends reset transparently.
    pub fn next_observation(&mut self) -> Vec<f64> {
        let out = self.current.clone();
        let actions: Vec<usize> = (0..self.env.n_agents())
            .map(|_| self.rng.gen_range(0..self.env.n_actions()))
            .collect();
        match self.env.step(&actions) {
            Ok(outcome) if !outcome.done => {
                self.current = flatten(&outcome.observations);
            }
            _ => {
                // Episode finished (or the env rejected the step after a
                // terminal state): start a fresh one.
                let (obs, _state) = self.env.reset();
                self.current = flatten(&obs);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_reproducible_and_shaped() {
        let mut a = ObsStream::new("single-hop", 7).expect("stream");
        let mut b = ObsStream::new("single-hop", 7).expect("stream");
        let mut c = ObsStream::new("single-hop", 8).expect("stream");
        let len = a.request_len();
        assert!(len > 0);
        let mut diverged = false;
        // Run past several episode boundaries: the episode limit is
        // small, so 200 ticks crosses resets.
        for _ in 0..200 {
            let (oa, ob, oc) = (
                a.next_observation(),
                b.next_observation(),
                c.next_observation(),
            );
            assert_eq!(oa.len(), len);
            assert_eq!(oa, ob, "same seed must replay the same stream");
            diverged |= oa != oc;
        }
        assert!(diverged, "different seeds should explore different paths");
    }

    #[test]
    fn unknown_scenarios_are_rejected() {
        assert!(matches!(
            ObsStream::new("no-such-scenario", 1),
            Err(ServeError::InvalidConfig(_))
        ));
    }
}
