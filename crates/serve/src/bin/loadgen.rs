//! Load generator for the policy server: replay scenario-distributed
//! observation streams at a configured offered load, sweep batch
//! windows and backends, and emit `BENCH_serve.json`.
//!
//! ```text
//! loadgen [--scenario single-hop] [--framework proposed]
//!         [--backends ideal[,sampled:shots=64:seed=3]]
//!         [--loads 1000,32000]        offered requests/s per cell
//!         [--windows-us 0,1000]       batch windows to sweep (0 = no coalescing)
//!         [--clients 8] [--duration-ms 2000] [--max-batch 64]
//!         [--faults faults:drop=0.01:torn=0.005:seed=9]  inject server faults
//!         [--seed 7] [--out BENCH_serve.json]
//! ```
//!
//! With `--faults`, the server runs under the given seeded fault plan
//! and every client retries transient failures (capped exponential
//! backoff); the per-cell retry/shed/give-up counts land in the output
//! alongside the server's shed/deadline/fault counters.
//!
//! Each cell starts a fresh in-process server, drives it with `clients`
//! paced connections (per-client pacing at `load / clients`; when the
//! server cannot keep up the clients degrade to closed-loop, measuring
//! max throughput), merges per-client latency histograms and records the
//! server's drain report. `QMARL_BENCH_QUICK=1` shrinks the defaults for
//! CI smoke runs.

use std::time::{Duration, Instant};

use qmarl_core::prelude::*;
use qmarl_serve::prelude::*;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    let flag = format!("--{key}");
    let prefix = format!("--{key}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if *a == flag {
            return it.next().cloned();
        }
    }
    None
}

fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse::<T>()
                .map_err(|_| format!("bad {what} entry {p:?}"))
        })
        .collect()
}

struct Cell {
    backend: String,
    window_us: u64,
    offered_rps: u64,
    completed: u64,
    errors: u64,
    achieved_rps: f64,
    actions_per_s: f64,
    latency_p50_us: f64,
    latency_p99_us: f64,
    latency_mean_us: f64,
    batches: u64,
    mean_batch: f64,
    batch_p50_us: f64,
    batch_p99_us: f64,
    retries: u64,
    client_sheds: u64,
    gave_up: u64,
    server_shed: u64,
    deadline_expired: u64,
    corrupt_skips: u64,
    faults_injected: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    kind: FrameworkKind,
    scenario: &str,
    backend_str: &str,
    window_us: u64,
    offered_rps: u64,
    clients: usize,
    duration: Duration,
    max_batch: usize,
    seed: u64,
    faults: Option<FaultPlan>,
) -> Result<Cell, String> {
    let backend: ExecutionBackend = backend_str
        .parse()
        .map_err(|e| format!("backend {backend_str:?}: {e}"))?;
    let train = TrainConfig::paper_default();
    let actors = build_scenario_actors(kind, scenario, &backend, &train)
        .map_err(|e| format!("actor build: {e}"))?;
    let policy = ServablePolicy::from_actors(&format!("{kind}@{scenario}"), actors)
        .map_err(|e| format!("policy: {e}"))?;
    let n_agents = policy.n_agents() as u64;

    let handle = serve(
        policy,
        ServerConfig {
            batch: BatchConfig {
                window: Duration::from_micros(window_us),
                max_batch,
                ..BatchConfig::default()
            },
            faults,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("serve: {e}"))?;
    let addr = handle.addr();

    let per_client_rps = (offered_rps as f64 / clients as f64).max(1.0);
    let interval = Duration::from_nanos((1.0e9 / per_client_rps) as u64);
    let start = Instant::now();
    let end = start + duration;

    let retry_clients = faults.is_some();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let scenario = scenario.to_string();
            std::thread::spawn(
                move || -> Result<(LatencyHistogram, u64, u64, RetryStats), String> {
                    let mut stream = ObsStream::new(&scenario, seed.wrapping_add(c as u64))
                        .map_err(|e| e.to_string())?;
                    let mut client = ServeClient::connect(addr).map_err(|e| e.to_string())?;
                    if retry_clients {
                        client = client
                            .with_retry(RetryPolicy::default(), seed.wrapping_add(1000 + c as u64));
                    }
                    let mut hist = LatencyHistogram::new();
                    let (mut completed, mut errors) = (0u64, 0u64);
                    let mut next_due = Instant::now();
                    while Instant::now() < end {
                        let now = Instant::now();
                        if now < next_due {
                            std::thread::sleep(next_due - now);
                        }
                        next_due += interval;
                        let obs = stream.next_observation();
                        let t0 = Instant::now();
                        match client.act(&obs) {
                            Ok(_) => {
                                hist.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                                completed += 1;
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    Ok((hist, completed, errors, client.retry_stats()))
                },
            )
        })
        .collect();

    let mut hist = LatencyHistogram::new();
    let (mut completed, mut errors) = (0u64, 0u64);
    let mut retry_stats = RetryStats::default();
    for w in workers {
        let (h, c, e, r) = w
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        hist.merge(&h);
        completed += c;
        errors += e;
        retry_stats.retries += r.retries;
        retry_stats.sheds += r.sheds;
        retry_stats.gave_up += r.gave_up;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let report = handle.shutdown();

    Ok(Cell {
        backend: backend_str.to_string(),
        window_us,
        offered_rps,
        completed,
        errors,
        achieved_rps: completed as f64 / elapsed,
        actions_per_s: (completed * n_agents) as f64 / elapsed,
        latency_p50_us: hist.p50_us(),
        latency_p99_us: hist.p99_us(),
        latency_mean_us: hist.mean_ns() / 1_000.0,
        batches: report.batches_executed,
        mean_batch: if report.batches_executed == 0 {
            0.0
        } else {
            report.requests_served as f64 / report.batches_executed as f64
        },
        batch_p50_us: report.batch_hist.p50_us(),
        batch_p99_us: report.batch_hist.p99_us(),
        retries: retry_stats.retries,
        client_sheds: retry_stats.sheds,
        gave_up: retry_stats.gave_up,
        server_shed: report.requests_shed,
        deadline_expired: report.deadline_expired,
        corrupt_skips: report.corrupt_skips,
        faults_injected: report.faults_injected,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = std::env::var("QMARL_BENCH_QUICK").is_ok();

    let scenario = arg_value(&args, "scenario").unwrap_or_else(|| "single-hop".into());
    let framework = arg_value(&args, "framework").unwrap_or_else(|| "proposed".into());
    let backends = arg_value(&args, "backends").unwrap_or_else(|| "ideal".into());
    let loads = arg_value(&args, "loads").unwrap_or_else(|| {
        if quick {
            "500,4000".into()
        } else {
            "1000,32000".into()
        }
    });
    let windows = arg_value(&args, "windows-us").unwrap_or_else(|| "0,1000".into());
    let clients: usize = arg_value(&args, "clients")
        .map(|v| v.parse().expect("--clients"))
        .unwrap_or(8);
    let duration_ms: u64 = arg_value(&args, "duration-ms")
        .map(|v| v.parse().expect("--duration-ms"))
        .unwrap_or(if quick { 400 } else { 2000 });
    let max_batch: usize = arg_value(&args, "max-batch")
        .map(|v| v.parse().expect("--max-batch"))
        .unwrap_or(64);
    let seed: u64 = arg_value(&args, "seed")
        .map(|v| v.parse().expect("--seed"))
        .unwrap_or(7);
    let faults_str = arg_value(&args, "faults");
    let faults: Option<FaultPlan> = faults_str.as_deref().map(|s| {
        s.parse().unwrap_or_else(|e| {
            eprintln!("bad --faults: {e}");
            std::process::exit(2);
        })
    });
    let out = arg_value(&args, "out").unwrap_or_else(|| "BENCH_serve.json".into());

    let kind: FrameworkKind = framework.parse().unwrap_or_else(|e| {
        eprintln!("bad --framework: {e}");
        std::process::exit(2);
    });
    let backends: Vec<String> = backends
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let loads: Vec<u64> = parse_list(&loads, "load").unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let windows: Vec<u64> = parse_list(&windows, "window").unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let mut cells = Vec::new();
    for backend in &backends {
        for &window_us in &windows {
            for &load in &loads {
                eprintln!(
                    "cell: backend={backend} window={window_us}us load={load}rps \
                     clients={clients} duration={duration_ms}ms"
                );
                match run_cell(
                    kind,
                    &scenario,
                    backend,
                    window_us,
                    load,
                    clients,
                    Duration::from_millis(duration_ms),
                    max_batch,
                    seed,
                    faults,
                ) {
                    Ok(cell) => {
                        eprintln!(
                            "  -> {:.0} req/s, {:.0} actions/s, p50 {:.0}us p99 {:.0}us, \
                             mean batch {:.2}, errors {}, retries {}, shed {}, \
                             deadline-expired {}, corrupt-skips {}, faults {}",
                            cell.achieved_rps,
                            cell.actions_per_s,
                            cell.latency_p50_us,
                            cell.latency_p99_us,
                            cell.mean_batch,
                            cell.errors,
                            cell.retries,
                            cell.server_shed,
                            cell.deadline_expired,
                            cell.corrupt_skips,
                            cell.faults_injected
                        );
                        cells.push(cell);
                    }
                    Err(e) => {
                        eprintln!("cell failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve\",\n");
    json.push_str("  \"schema\": 2,\n");
    json.push_str(&format!(
        "  \"faults\": {},\n",
        match &faults_str {
            Some(f) => format!("\"{f}\""),
            None => "null".to_string(),
        }
    ));
    json.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
    json.push_str(&format!("  \"framework\": \"{framework}\",\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"duration_ms\": {duration_ms},\n"));
    json.push_str(&format!("  \"max_batch\": {max_batch},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"backend\": \"{}\",\n", c.backend));
        json.push_str(&format!("      \"window_us\": {},\n", c.window_us));
        json.push_str(&format!("      \"offered_rps\": {},\n", c.offered_rps));
        json.push_str(&format!("      \"completed\": {},\n", c.completed));
        json.push_str(&format!("      \"errors\": {},\n", c.errors));
        json.push_str(&format!("      \"achieved_rps\": {:.3},\n", c.achieved_rps));
        json.push_str(&format!(
            "      \"actions_per_s\": {:.3},\n",
            c.actions_per_s
        ));
        json.push_str(&format!(
            "      \"latency_p50_us\": {:.3},\n",
            c.latency_p50_us
        ));
        json.push_str(&format!(
            "      \"latency_p99_us\": {:.3},\n",
            c.latency_p99_us
        ));
        json.push_str(&format!(
            "      \"latency_mean_us\": {:.3},\n",
            c.latency_mean_us
        ));
        json.push_str(&format!("      \"batches\": {},\n", c.batches));
        json.push_str(&format!("      \"mean_batch\": {:.3},\n", c.mean_batch));
        json.push_str(&format!("      \"batch_p50_us\": {:.3},\n", c.batch_p50_us));
        json.push_str(&format!("      \"batch_p99_us\": {:.3},\n", c.batch_p99_us));
        json.push_str(&format!("      \"retries\": {},\n", c.retries));
        json.push_str(&format!("      \"client_sheds\": {},\n", c.client_sheds));
        json.push_str(&format!("      \"gave_up\": {},\n", c.gave_up));
        json.push_str(&format!("      \"server_shed\": {},\n", c.server_shed));
        json.push_str(&format!(
            "      \"deadline_expired\": {},\n",
            c.deadline_expired
        ));
        json.push_str(&format!("      \"corrupt_skips\": {},\n", c.corrupt_skips));
        json.push_str(&format!(
            "      \"faults_injected\": {}\n",
            c.faults_injected
        ));
        json.push_str(if i + 1 == cells.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("writing {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out} ({} cells)", cells.len());
}
