//! The micro-batching core: coalesce concurrent requests into one
//! lane-slab policy execution.
//!
//! Connection handlers enqueue [`Job`]s on an `mpsc` channel; a single
//! batcher thread drains it in ticks. Each tick takes the first job
//! (blocking), then — when a batch window is configured — keeps draining
//! until the window deadline passes or [`BatchConfig::max_batch`] jobs
//! are in hand, and runs them all as **one**
//! [`ServablePolicy::act_batch`] call. With `window = 0` every job runs
//! alone, which is the per-request baseline the load generator compares
//! against.
//!
//! The policy lives in a [`PolicySlot`]: an `Arc` the batcher clones at
//! the *start* of each tick, so a hot-swap never tears a batch — every
//! request in a tick is answered by exactly one policy version, and the
//! swap itself is a pointer exchange off the serving path.
//!
//! Shutdown is drain-by-disconnect: when every producer drops its
//! sender, `recv` returns `Err` and the batcher exits after answering
//! everything already queued. No request is dropped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qmarl_chaos::{site, FaultPlan};
use qmarl_core::serving::ServablePolicy;

use crate::error::ServeError;
use crate::hist::LatencyHistogram;

/// Micro-batching and overload-control knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// How long the batcher waits after the first request of a tick for
    /// more requests to coalesce. Zero disables coalescing entirely
    /// (batch size is always 1 — the per-request baseline).
    pub window: Duration,
    /// Hard cap on requests per tick; the tick fires early when reached.
    pub max_batch: usize,
    /// Per-request queueing deadline: a job still waiting when the
    /// batcher picks it up past this age is answered BUSY instead of
    /// executed (it would be stale anyway). Zero disables deadlines.
    pub deadline: Duration,
    /// Queue-depth bound: requests arriving while this many jobs are
    /// already queued are shed with BUSY at admission, before queueing.
    /// Zero means unbounded (no shedding).
    pub max_queue: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            window: Duration::from_micros(1_000),
            max_batch: 64,
            deadline: Duration::ZERO,
            max_queue: 4096,
        }
    }
}

impl BatchConfig {
    /// Validate the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `max_batch` is zero.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The hot-swappable policy holder.
///
/// Readers take a cheap lock only long enough to clone the inner `Arc`;
/// [`PolicySlot::swap`] exchanges the pointer and bumps the version
/// counter. Validation and loading of a replacement policy happen
/// entirely *before* `swap`, off the serving path.
#[derive(Debug)]
pub struct PolicySlot {
    policy: Mutex<Arc<ServablePolicy>>,
    version: AtomicU64,
    swaps: AtomicU64,
}

impl PolicySlot {
    /// Wrap the initial policy as version 1.
    pub fn new(policy: ServablePolicy) -> Self {
        PolicySlot {
            policy: Mutex::new(Arc::new(policy)),
            version: AtomicU64::new(1),
            swaps: AtomicU64::new(0),
        }
    }

    /// The policy serving right now.
    pub fn current(&self) -> Arc<ServablePolicy> {
        crate::sync::lock(&self.policy).clone()
    }

    /// Atomically replace the serving policy and bump the version.
    pub fn swap(&self, next: ServablePolicy) {
        let mut guard = crate::sync::lock(&self.policy);
        *guard = Arc::new(next);
        self.version.fetch_add(1, Ordering::SeqCst);
        self.swaps.fetch_add(1, Ordering::SeqCst);
    }

    /// Monotonic policy version (starts at 1, bumps on every swap).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Number of swaps applied.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::SeqCst)
    }
}

/// Lifetime counters and the server-side service-time histogram.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// ACT requests handed to the batcher queue (whether or not they
    /// have been answered yet).
    pub requests_enqueued: AtomicU64,
    /// ACT requests answered successfully.
    pub requests_served: AtomicU64,
    /// Micro-batch executions (ticks).
    pub batches_executed: AtomicU64,
    /// Requests rejected with an error reply.
    pub requests_rejected: AtomicU64,
    /// Requests shed with BUSY at admission (queue/connection budget).
    pub requests_shed: AtomicU64,
    /// Requests answered BUSY because they aged past their deadline in
    /// the queue.
    pub deadline_expired: AtomicU64,
    /// Jobs in the batcher queue right now (gauge, not a counter).
    pub queue_depth: AtomicU64,
    /// Torn/corrupt checkpoints skipped by the watcher (mirrored here
    /// so INFO can report them without a handle on the watcher).
    pub corrupt_skips: AtomicU64,
    /// Faults injected by a configured [`FaultPlan`] (all sites).
    pub faults_injected: AtomicU64,
    /// Per-tick service time (batch execution only, not queueing).
    pub batch_hist: Mutex<LatencyHistogram>,
}

impl ServeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Why a queued job was not answered with actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job aged past [`BatchConfig::deadline`] in the queue. The
    /// server answers BUSY — the failure is the server's load, not the
    /// request, so the client should back off and retry.
    Expired,
    /// The request itself was rejected (bad shape, policy failure).
    Failed(String),
}

/// One queued ACT request: the flat observation and a reply channel.
#[derive(Debug)]
pub struct Job {
    /// Flat `n_agents × obs_dim` features.
    pub observation: Vec<f64>,
    /// When the job entered the queue, for deadline enforcement.
    pub enqueued_at: Instant,
    /// Where the actions (or a typed failure) go.
    pub reply: Sender<Result<Vec<u16>, JobError>>,
}

/// Drain the job queue until every sender is gone.
///
/// This is the batcher thread's body: tick = block for one job, coalesce
/// up to the window/cap, validate shapes, execute once, reply. A reply
/// send can fail only when the requesting connection already vanished;
/// that is not the batcher's problem, so those errors are ignored.
pub fn run_batcher(
    rx: Receiver<Job>,
    slot: Arc<PolicySlot>,
    stats: Arc<ServeStats>,
    cfg: BatchConfig,
    faults: Option<FaultPlan>,
) {
    let mut jobs: Vec<Job> = Vec::with_capacity(cfg.max_batch);
    let mut tick: u64 = 0;
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // all producers gone: queue drained, exit
        };
        jobs.push(first);
        if !cfg.window.is_zero() {
            let deadline = Instant::now() + cfg.window;
            while jobs.len() < cfg.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => jobs.push(job),
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        // Gauge down for every job picked up. Saturating: producers that
        // bypass the admission path (unit tests) never increment it.
        let picked = jobs.len() as u64;
        let _ = stats
            .queue_depth
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(picked))
            });
        // Injected slow tick: the policy "takes long" this tick, letting
        // chaos tests exercise the deadline path under real queueing.
        if let Some(plan) = &faults {
            if plan.fires(plan.slow, site::TICK_SLOW, tick) {
                stats.faults_injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(plan.stall_duration());
            }
        }
        tick += 1;
        execute_tick(&mut jobs, &slot, &stats, cfg.deadline);
    }
}

/// Run one coalesced tick and answer every job in it.
fn execute_tick(jobs: &mut Vec<Job>, slot: &PolicySlot, stats: &ServeStats, deadline: Duration) {
    // One policy version answers the whole tick, even if a swap lands
    // while the batch is executing.
    let policy = slot.current();
    let want = policy.request_len();

    // Deadline- and shape-check first: stale or bad requests get
    // individual typed replies and never poison the batch.
    let now = Instant::now();
    let mut batch: Vec<Job> = Vec::with_capacity(jobs.len());
    for job in jobs.drain(..) {
        if !deadline.is_zero() && now.duration_since(job.enqueued_at) > deadline {
            stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Err(JobError::Expired));
        } else if job.observation.len() == want {
            batch.push(job);
        } else {
            stats.requests_rejected.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Err(JobError::Failed(format!(
                "observation length {} does not match the policy request length {want}",
                job.observation.len()
            ))));
        }
    }
    if batch.is_empty() {
        return;
    }

    let mut flat = Vec::with_capacity(batch.len() * want);
    for job in &batch {
        flat.extend_from_slice(&job.observation);
    }

    let start = Instant::now();
    let result = policy.act_batch(&flat, batch.len());
    let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

    stats.batches_executed.fetch_add(1, Ordering::Relaxed);
    crate::sync::lock(&stats.batch_hist).record(elapsed);

    match result {
        Ok(actions) => {
            let n_agents = policy.n_agents();
            for (row, job) in batch.iter().enumerate() {
                let slice = &actions[row * n_agents..(row + 1) * n_agents];
                let out: Vec<u16> = slice.iter().map(|&a| a as u16).collect();
                stats.requests_served.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Ok(out));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for job in &batch {
                stats.requests_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Err(JobError::Failed(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmarl_core::prelude::*;
    use std::sync::mpsc;

    fn paper_policy() -> ServablePolicy {
        let train = TrainConfig::paper_default();
        let actors = build_scenario_actors(
            FrameworkKind::Proposed,
            "single-hop",
            &ExecutionBackend::Ideal,
            &train,
        )
        .expect("actor build");
        ServablePolicy::from_actors("test", actors).expect("policy")
    }

    fn obs_for(policy: &ServablePolicy, salt: usize) -> Vec<f64> {
        (0..policy.request_len())
            .map(|i| ((i + salt) % 13) as f64 / 13.0)
            .collect()
    }

    /// Preloaded jobs coalesce into one tick and every reply matches the
    /// single-request reference path bit for bit.
    #[test]
    fn queued_jobs_coalesce_into_one_batch_with_reference_answers() {
        // The seed derivation is deterministic, so building twice yields
        // two bit-identical policies: one reference, one in the slot.
        let policy = paper_policy();
        let slot = Arc::new(PolicySlot::new(paper_policy()));
        let stats = Arc::new(ServeStats::new());
        let (tx, rx) = mpsc::channel::<Job>();

        let n = 6;
        let mut replies = Vec::new();
        let mut expected = Vec::new();
        for salt in 0..n {
            let obs = obs_for(&policy, salt);
            expected.push(policy.act(&obs).expect("reference"));
            let (rtx, rrx) = mpsc::channel();
            tx.send(Job {
                observation: obs,
                enqueued_at: Instant::now(),
                reply: rtx,
            })
            .expect("enqueue");
            replies.push(rrx);
        }
        drop(tx); // queue is complete; batcher drains and exits

        run_batcher(
            rx,
            slot,
            stats.clone(),
            BatchConfig {
                window: Duration::from_millis(50),
                max_batch: 64,
                ..BatchConfig::default()
            },
            None,
        );

        for (rrx, exp) in replies.iter().zip(&expected) {
            let got = rrx.recv().expect("reply").expect("ok");
            let exp_u16: Vec<u16> = exp.iter().map(|&a| a as u16).collect();
            assert_eq!(got, exp_u16);
        }
        // Everything was already queued when the tick started, so one
        // lane-slab execution answered all six requests.
        assert_eq!(stats.batches_executed.load(Ordering::Relaxed), 1);
        assert_eq!(stats.requests_served.load(Ordering::Relaxed), n as u64);
    }

    /// `window = 0` is the per-request baseline: one tick per job.
    #[test]
    fn zero_window_executes_every_job_alone() {
        let policy = paper_policy();
        let slot = Arc::new(PolicySlot::new(policy));
        let stats = Arc::new(ServeStats::new());
        let (tx, rx) = mpsc::channel::<Job>();

        let current = slot.current();
        let mut replies = Vec::new();
        for salt in 0..4 {
            let (rtx, rrx) = mpsc::channel();
            tx.send(Job {
                observation: obs_for(&current, salt),
                enqueued_at: Instant::now(),
                reply: rtx,
            })
            .expect("enqueue");
            replies.push(rrx);
        }
        drop(tx);

        run_batcher(
            rx,
            slot,
            stats.clone(),
            BatchConfig {
                window: Duration::ZERO,
                max_batch: 64,
                ..BatchConfig::default()
            },
            None,
        );

        for rrx in &replies {
            rrx.recv().expect("reply").expect("ok");
        }
        assert_eq!(stats.batches_executed.load(Ordering::Relaxed), 4);
    }

    /// A malformed job gets its own error reply; the rest of the tick
    /// is served normally.
    #[test]
    fn bad_shapes_fail_individually_without_poisoning_the_batch() {
        let policy = paper_policy();
        let slot = Arc::new(PolicySlot::new(policy));
        let stats = Arc::new(ServeStats::new());
        let (tx, rx) = mpsc::channel::<Job>();

        let current = slot.current();
        let (good_tx, good_rx) = mpsc::channel();
        let (bad_tx, bad_rx) = mpsc::channel();
        tx.send(Job {
            observation: obs_for(&current, 0),
            enqueued_at: Instant::now(),
            reply: good_tx,
        })
        .expect("enqueue");
        tx.send(Job {
            observation: vec![0.5; 3],
            enqueued_at: Instant::now(),
            reply: bad_tx,
        })
        .expect("enqueue");
        drop(tx);

        run_batcher(
            rx,
            slot,
            stats.clone(),
            BatchConfig {
                window: Duration::from_millis(50),
                max_batch: 64,
                ..BatchConfig::default()
            },
            None,
        );

        assert!(good_rx.recv().expect("reply").is_ok());
        match bad_rx.recv().expect("reply").expect_err("shape error") {
            JobError::Failed(err) => assert!(err.contains("does not match"), "got: {err}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(stats.requests_rejected.load(Ordering::Relaxed), 1);
        assert_eq!(stats.requests_served.load(Ordering::Relaxed), 1);
    }

    /// A job that aged past the deadline in the queue is answered
    /// [`JobError::Expired`] without executing; fresh jobs still run.
    #[test]
    fn stale_jobs_expire_instead_of_executing() {
        let policy = paper_policy();
        let slot = Arc::new(PolicySlot::new(policy));
        let stats = Arc::new(ServeStats::new());
        let (tx, rx) = mpsc::channel::<Job>();

        let current = slot.current();
        let (stale_tx, stale_rx) = mpsc::channel();
        let (fresh_tx, fresh_rx) = mpsc::channel();
        tx.send(Job {
            observation: obs_for(&current, 0),
            enqueued_at: Instant::now() - Duration::from_millis(100),
            reply: stale_tx,
        })
        .expect("enqueue");
        tx.send(Job {
            observation: obs_for(&current, 1),
            enqueued_at: Instant::now(),
            reply: fresh_tx,
        })
        .expect("enqueue");
        drop(tx);

        run_batcher(
            rx,
            slot,
            stats.clone(),
            BatchConfig {
                window: Duration::from_millis(20),
                max_batch: 64,
                deadline: Duration::from_millis(50),
                ..BatchConfig::default()
            },
            None,
        );

        assert_eq!(
            stale_rx.recv().expect("reply").expect_err("expired"),
            JobError::Expired
        );
        assert!(fresh_rx.recv().expect("reply").is_ok());
        assert_eq!(stats.deadline_expired.load(Ordering::Relaxed), 1);
        assert_eq!(stats.requests_served.load(Ordering::Relaxed), 1);
    }
}
