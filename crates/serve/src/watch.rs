//! Hot-swap watcher: poll a checkpoint directory, load new snapshots off
//! the serving path, swap atomically.
//!
//! A trainer (or operator) drops `*.ckpt` [`FrameworkSnapshot`] files
//! into a directory; the watcher polls it and, whenever the newest
//! snapshot's fingerprint (path, mtime, length) changes, loads it,
//! rebuilds the actor set for the configured framework cell and calls
//! [`PolicySlot::swap`]. All parsing and circuit binding happen on the
//! watcher thread — the serving path only ever sees a pointer exchange,
//! so zero requests are dropped or delayed by a swap.
//!
//! **Torn files are skipped, not served.** [`FrameworkSnapshot::load`]
//! returns [`CoreError::CorruptCheckpoint`] for truncated or
//! half-written files; the watcher counts the skip and re-tries only
//! when the file's fingerprint changes again (i.e. the writer made
//! progress). Writers that use [`FrameworkSnapshot::save`] are atomic
//! (tmp + rename) and never expose a torn file in the first place; the
//! skip path defends against everything else.
//!
//! The watcher reacts to changes *after* it starts: whatever is already
//! in the directory at spawn time is treated as applied.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

use qmarl_core::checkpoint::FrameworkSnapshot;
use qmarl_core::config::TrainConfig;
use qmarl_core::error::CoreError;
use qmarl_core::framework::FrameworkKind;
use qmarl_core::serving::ServablePolicy;
use qmarl_runtime::backend::ExecutionBackend;

use crate::batcher::{PolicySlot, ServeStats};
use crate::error::ServeError;

/// Snapshot files must carry this extension to be picked up.
pub const SNAPSHOT_EXT: &str = "ckpt";

/// What to watch and how to rebuild a policy from what lands there.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Directory to poll for `*.ckpt` snapshot files.
    pub dir: PathBuf,
    /// Poll cadence.
    pub poll_interval: Duration,
    /// Framework cell the snapshots belong to.
    pub kind: FrameworkKind,
    /// Scenario name (fixes agent/observation/action shapes).
    pub scenario: String,
    /// Execution backend for the rebuilt actors.
    pub backend: ExecutionBackend,
    /// Training configuration the snapshots were produced under.
    pub train: TrainConfig,
    /// Server stats to mirror skip counts into, so the INFO opcode can
    /// report `corrupt_skips` without a handle on the watcher.
    pub stats: Option<Arc<ServeStats>>,
    /// Seeded fault injection: `torn` here makes the watcher treat a
    /// good snapshot as corrupt (as a torn read would), exercising the
    /// skip path. `None` is fully inert.
    pub faults: Option<qmarl_chaos::FaultPlan>,
}

/// identity of one on-disk snapshot attempt: path + mtime + length.
type Fingerprint = (PathBuf, SystemTime, u64);

/// A running watcher thread.
#[derive(Debug)]
pub struct WatcherHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    /// Swaps applied by this watcher.
    pub swaps_applied: Arc<AtomicU64>,
    /// Files skipped because they were truncated or corrupt.
    pub corrupt_skips: Arc<AtomicU64>,
    /// Valid snapshots rejected for not matching the configured cell.
    pub mismatch_rejects: Arc<AtomicU64>,
}

impl WatcherHandle {
    /// Stop polling and join the thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The newest `*.ckpt` file in `dir`, by mtime (path breaks ties).
/// A missing or unreadable directory reads as empty.
fn newest_snapshot(dir: &Path) -> Option<Fingerprint> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<Fingerprint> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXT) {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        let candidate = (path, mtime, meta.len());
        let newer = match &best {
            None => true,
            Some((bpath, btime, _)) => {
                candidate.1 > *btime || (candidate.1 == *btime && candidate.0 > *bpath)
            }
        };
        if newer {
            best = Some(candidate);
        }
    }
    best
}

/// Attempt one load-and-swap; returns which counter to bump.
fn try_apply(config: &WatchConfig, slot: &PolicySlot, path: &Path) -> Result<(), CoreError> {
    if let Some(plan) = &config.faults {
        let key = qmarl_chaos::fnv1a(path.to_string_lossy().as_bytes());
        if plan.fires(plan.torn, qmarl_chaos::site::CKPT_TORN, key) {
            if let Some(stats) = &config.stats {
                stats
                    .faults_injected
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            return Err(CoreError::CorruptCheckpoint(format!(
                "injected torn read of {}",
                path.display()
            )));
        }
    }
    let snapshot = FrameworkSnapshot::load(path)?;
    let policy = ServablePolicy::from_snapshot(
        &snapshot,
        config.kind,
        &config.scenario,
        &config.backend,
        &config.train,
    )?;
    slot.swap(policy);
    Ok(())
}

/// Start a watcher thread feeding `slot`.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] when the poll interval is zero.
pub fn spawn_watcher(
    config: WatchConfig,
    slot: Arc<PolicySlot>,
) -> Result<WatcherHandle, ServeError> {
    if config.poll_interval.is_zero() {
        return Err(ServeError::InvalidConfig(
            "watcher poll interval must be non-zero".into(),
        ));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let swaps_applied = Arc::new(AtomicU64::new(0));
    let corrupt_skips = Arc::new(AtomicU64::new(0));
    let mismatch_rejects = Arc::new(AtomicU64::new(0));

    // Baseline on the caller's thread, before spawning: "already there
    // at spawn time" must mean when spawn_watcher was called, not when
    // the OS first scheduled the thread — a file written in between
    // would otherwise be silently treated as applied.
    let baseline: Option<Fingerprint> = newest_snapshot(&config.dir);

    let thread = {
        let stop = stop.clone();
        let swaps = swaps_applied.clone();
        let corrupt = corrupt_skips.clone();
        let mismatch = mismatch_rejects.clone();
        std::thread::spawn(move || {
            let mut last_attempted = baseline;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(config.poll_interval);
                let Some(candidate) = newest_snapshot(&config.dir) else {
                    continue;
                };
                if last_attempted.as_ref() == Some(&candidate) {
                    continue;
                }
                match try_apply(&config, &slot, &candidate.0) {
                    Ok(()) => {
                        swaps.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(CoreError::CorruptCheckpoint(_)) => {
                        // Torn or half-written: skip now, re-try when the
                        // fingerprint moves again.
                        corrupt.fetch_add(1, Ordering::SeqCst);
                        if let Some(stats) = &config.stats {
                            stats.corrupt_skips.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    Err(_) => {
                        mismatch.fetch_add(1, Ordering::SeqCst);
                    }
                }
                last_attempted = Some(candidate);
            }
        })
    };

    Ok(WatcherHandle {
        stop,
        thread: Some(thread),
        swaps_applied,
        corrupt_skips,
        mismatch_rejects,
    })
}
