//! The one place serve acquires mutexes.
//!
//! Every shared-state lock in the crate goes through [`lock`], so the
//! no-panic-serve invariant has exactly one audited exception instead
//! of an `expect` at each call site.

use std::sync::{Mutex, MutexGuard};

/// Locks `m`, propagating the panic of a thread that died holding it.
///
/// Lock poisoning is the only failure `Mutex::lock` has, and it means
/// another serving thread already panicked mid-update. Continuing with
/// possibly torn state (a half-swapped policy, a half-pushed registry)
/// could emit wrong actions, which is strictly worse than surfacing
/// the original failure — so this is the single place the serve crate
/// is allowed to panic.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        // xcheck: allow(no-panic-serve) — a poisoned lock means a serving
        // thread already panicked while holding this state; serving on top
        // of a torn policy slot or connection registry could return wrong
        // actions, so re-raising that original failure is the contract.
        Err(_) => panic!("serve: lock poisoned by a panicked holder"),
    }
}
