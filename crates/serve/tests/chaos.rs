//! Chaos suite: real TCP serving under continuously injected faults.
//!
//! The contract under fault injection is *zero wrong answers*: a fault
//! may cost latency (retries, reconnects, BUSY backoff) but every ACT
//! answer that reaches a client must be bit-identical to the fault-free
//! reference policy. Wrong-but-plausible answers — the failure mode
//! torn frames and dropped connections can cause in sloppier protocols
//! — are what these tests exist to rule out.

use std::time::Duration;

use qmarl_core::prelude::*;
use qmarl_serve::prelude::*;

const KIND: FrameworkKind = FrameworkKind::Proposed;
const SCENARIO: &str = "single-hop";

fn paper_policy() -> ServablePolicy {
    let train = TrainConfig::paper_default();
    let actors = build_scenario_actors(KIND, SCENARIO, &ExecutionBackend::Ideal, &train)
        .expect("actor build");
    ServablePolicy::from_actors("chaos", actors).expect("policy")
}

fn obs_slab(salt: usize, len: usize) -> Vec<f64> {
    (0..len).map(|i| ((i + salt) % 19) as f64 / 19.0).collect()
}

/// A retry policy generous enough that a seeded fault storm cannot
/// plausibly exhaust it, but still fast (capped at 20 ms per wait).
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 16,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
    }
}

/// Dropped connections, torn response frames and stalled reads, all at
/// once, under concurrent retrying clients: every answer that comes
/// back is bit-identical to the fault-free reference, and the injected
/// faults demonstrably fired.
#[test]
fn serving_under_drop_torn_stall_returns_zero_wrong_answers() {
    let reference = paper_policy();
    let plan: FaultPlan = "faults:drop=0.08:torn=0.08:stall=0.02:stall_ms=5:seed=9"
        .parse()
        .expect("plan");
    let handle = serve(
        paper_policy(),
        ServerConfig {
            faults: Some(plan),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();
    let request_len = reference.request_len();

    let n_clients = 6;
    let per_client = 40;
    let workers: Vec<_> = (0..n_clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr)
                    .expect("connect")
                    .with_retry(chaos_retry(), 100 + c as u64);
                let mut out = Vec::new();
                for r in 0..per_client {
                    let obs = obs_slab(c * 1000 + r, request_len);
                    let actions = client
                        .act(&obs)
                        .expect("every request must succeed within the retry budget");
                    out.push((obs, actions));
                }
                (out, client.retry_stats())
            })
        })
        .collect();

    let mut total_retries = 0u64;
    for w in workers {
        let (answers, stats) = w.join().expect("client thread");
        total_retries += stats.retries;
        for (obs, actions) in answers {
            let expected: Vec<u16> = reference
                .act(&obs)
                .expect("reference")
                .iter()
                .map(|&a| a as u16)
                .collect();
            assert_eq!(actions, expected, "a faulted path produced a WRONG answer");
        }
    }

    let report = handle.shutdown();
    assert!(
        report.faults_injected > 0,
        "the plan must actually inject faults for this test to mean anything"
    );
    assert!(
        total_retries > 0,
        "injected faults must have forced client retries"
    );
}

/// Queue-bound overload control: with a tiny queue and a long batch
/// window, a burst of concurrent requests is partially shed with BUSY —
/// and every shed client recovers through retries, again with
/// bit-identical answers.
#[test]
fn busy_shedding_recovers_through_retries_with_correct_answers() {
    let reference = paper_policy();
    let handle = serve(
        paper_policy(),
        ServerConfig {
            batch: BatchConfig {
                window: Duration::from_millis(200),
                max_batch: 64,
                max_queue: 2,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();
    let request_len = reference.request_len();

    let n_clients = 10;
    let workers: Vec<_> = (0..n_clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect").with_retry(
                    RetryPolicy {
                        max_retries: 20,
                        base: Duration::from_millis(50),
                        cap: Duration::from_millis(400),
                    },
                    200 + c as u64,
                );
                let obs = obs_slab(c * 37, request_len);
                let actions = client.act(&obs).expect("must recover through retries");
                (obs, actions, client.retry_stats())
            })
        })
        .collect();

    let mut total_sheds = 0u64;
    for w in workers {
        let (obs, actions, stats) = w.join().expect("client thread");
        total_sheds += stats.sheds;
        let expected: Vec<u16> = reference
            .act(&obs)
            .expect("reference")
            .iter()
            .map(|&a| a as u16)
            .collect();
        assert_eq!(actions, expected);
    }

    let report = handle.shutdown();
    assert_eq!(
        report.requests_shed, total_sheds,
        "server sheds and client BUSY receipts must agree"
    );
    assert!(
        report.requests_shed > 0,
        "a 10-way burst into a 2-deep queue must shed"
    );
    assert_eq!(report.requests_served, n_clients as u64);
}

/// Per-request deadlines: when every tick is injected slow, queued jobs
/// age past the deadline and come back as typed BUSY (retryable), never
/// as a wrong or hung answer.
#[test]
fn deadline_expiry_is_typed_and_counted() {
    let plan: FaultPlan = "faults:slow=1:stall_ms=60:seed=4".parse().expect("plan");
    let handle = serve(
        paper_policy(),
        ServerConfig {
            batch: BatchConfig {
                window: Duration::ZERO,
                max_batch: 64,
                deadline: Duration::from_millis(10),
                ..BatchConfig::default()
            },
            faults: Some(plan),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let request_len = handle.slot().current().request_len();

    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    let err = client
        .act(&obs_slab(0, request_len))
        .expect_err("a 60ms slow tick must expire a 10ms deadline");
    assert!(
        matches!(err, ServeError::Busy { .. }),
        "expiry must surface as typed BUSY, got: {err}"
    );
    assert!(err.is_retryable());
    drop(client);

    let report = handle.shutdown();
    assert!(report.deadline_expired >= 1);
    assert!(report.faults_injected >= 1);
    assert_eq!(report.requests_served, 0);
}

/// Connection-budget shedding: a connection over `max_conns` gets a
/// typed BUSY frame at accept, and the slot freed by a departing client
/// is immediately reusable.
#[test]
fn connection_cap_sheds_with_busy_and_frees_on_disconnect() {
    let handle = serve(
        paper_policy(),
        ServerConfig {
            max_conns: 1,
            accept_poll: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();
    let request_len = handle.slot().current().request_len();

    // Occupy the single slot with a served request (proves the slot is
    // counted only once per connection, not per request).
    let mut occupant = ServeClient::connect(addr).expect("occupant connect");
    occupant
        .act(&obs_slab(0, request_len))
        .expect("occupant act");

    // The second connection is shed with typed BUSY.
    let mut shed = ServeClient::connect(addr).expect("tcp connect succeeds");
    let err = shed
        .act(&obs_slab(1, request_len))
        .expect_err("over-budget connection must be shed");
    assert!(
        matches!(err, ServeError::Busy { .. }),
        "expected typed BUSY, got: {err}"
    );

    // Freeing the slot lets a fresh connection through.
    drop(occupant);
    drop(shed);
    let ok = std::panic::catch_unwind(|| {
        // Handler teardown is asynchronous; poll briefly for the slot.
        for attempt in 0..100 {
            let mut fresh = match ServeClient::connect(addr) {
                Ok(c) => c,
                Err(_) => continue,
            };
            match fresh.act(&obs_slab(2, request_len)) {
                Ok(actions) => return actions,
                Err(_) if attempt < 99 => std::thread::sleep(Duration::from_millis(5)),
                Err(e) => panic!("slot never freed: {e}"),
            }
        }
        unreachable!()
    })
    .expect("freed slot must serve again");
    assert!(!ok.is_empty());

    let report = handle.shutdown();
    assert!(report.requests_shed >= 1);
}

/// Inertness: a configured-but-all-zero plan injects nothing, and a
/// server with no plan at all reports zero faults — the fault-free path
/// is bit-for-bit the PR 7 behavior.
#[test]
fn absent_and_zero_rate_plans_are_inert() {
    for faults in [
        None,
        Some("faults:seed=77".parse::<FaultPlan>().expect("plan")),
    ] {
        let reference = paper_policy();
        let handle = serve(
            paper_policy(),
            ServerConfig {
                faults,
                ..ServerConfig::default()
            },
        )
        .expect("serve");
        let request_len = reference.request_len();
        let mut client = ServeClient::connect(handle.addr()).expect("connect");
        for salt in 0..20 {
            let obs = obs_slab(salt, request_len);
            let expected: Vec<u16> = reference
                .act(&obs)
                .expect("reference")
                .iter()
                .map(|&a| a as u16)
                .collect();
            assert_eq!(client.act(&obs).expect("act"), expected);
        }
        drop(client);
        let report = handle.shutdown();
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.requests_shed, 0);
        assert_eq!(report.requests_served, 20);
    }
}
