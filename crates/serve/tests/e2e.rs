//! End-to-end serving tests over real localhost TCP: wire parity with
//! the in-process reference path, graceful drain, hot-swap under load
//! with zero dropped requests, and torn-snapshot skipping.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qmarl_core::prelude::*;
use qmarl_serve::prelude::*;

const KIND: FrameworkKind = FrameworkKind::Proposed;
const SCENARIO: &str = "single-hop";

fn paper_actors(train: &TrainConfig) -> Vec<Box<dyn Actor>> {
    build_scenario_actors(KIND, SCENARIO, &ExecutionBackend::Ideal, train).expect("actor build")
}

fn paper_policy() -> ServablePolicy {
    let train = TrainConfig::paper_default();
    ServablePolicy::from_actors("e2e", paper_actors(&train)).expect("policy")
}

fn obs_slab(salt: usize, len: usize) -> Vec<f64> {
    (0..len).map(|i| ((i + salt) % 19) as f64 / 19.0).collect()
}

/// A unique scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static NTH: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qmarl-serve-{tag}-{}-{}",
        std::process::id(),
        NTH.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

/// Wait (bounded) until `cond` holds.
fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Every answer that crosses the wire — from many concurrent clients,
/// coalesced into micro-batches — is bit-identical to the in-process
/// single-request reference path, and the drain report accounts for
/// every request.
#[test]
fn tcp_serving_matches_the_reference_path_under_concurrency() {
    let reference = paper_policy();
    let handle = serve(paper_policy(), ServerConfig::default()).expect("serve");
    let addr = handle.addr();
    let request_len = reference.request_len();

    let n_clients = 6;
    let per_client = 25;
    let workers: Vec<_> = (0..n_clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut out = Vec::new();
                for r in 0..per_client {
                    let obs = obs_slab(c * 1000 + r, request_len);
                    let actions = client.act(&obs).expect("act");
                    out.push((obs, actions));
                }
                out
            })
        })
        .collect();

    for w in workers {
        for (obs, actions) in w.join().expect("client thread") {
            let expected: Vec<u16> = reference
                .act(&obs)
                .expect("reference")
                .iter()
                .map(|&a| a as u16)
                .collect();
            assert_eq!(actions, expected, "wire answer diverged from reference");
        }
    }

    let mut client = ServeClient::connect(addr).expect("connect");
    let info = client.info().expect("info");
    assert_eq!(info.n_agents as usize, reference.n_agents());
    assert_eq!(info.obs_dim as usize, reference.obs_dim());
    assert_eq!(info.n_actions as usize, reference.n_actions());
    assert_eq!(info.policy_version, 1);
    assert_eq!(info.requests_served, (n_clients * per_client) as u64);
    drop(client);

    let report = handle.shutdown();
    assert_eq!(report.requests_served, (n_clients * per_client) as u64);
    assert_eq!(report.requests_rejected, 0);
    assert!(report.batches_executed > 0);
    assert!(report.batches_executed <= report.requests_served);
    assert_eq!(report.batch_hist.count(), report.batches_executed);
}

/// A malformed request gets an error reply; the connection and the
/// server survive and keep serving.
#[test]
fn shape_errors_come_back_as_error_frames_not_disconnects() {
    let handle = serve(paper_policy(), ServerConfig::default()).expect("serve");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let err = client.act(&[0.5; 3]).expect_err("wrong length must fail");
    assert!(err.to_string().contains("does not match"), "got: {err}");

    // Same connection still serves a valid request afterwards.
    let request_len = handle.slot().current().request_len();
    client.act(&obs_slab(0, request_len)).expect("valid act");
    drop(client);

    let report = handle.shutdown();
    assert_eq!(report.requests_served, 1);
    assert_eq!(report.requests_rejected, 1);
}

/// Shutdown drains: a request parked inside an open batch window is
/// answered, not dropped, when shutdown lands mid-window.
#[test]
fn shutdown_answers_requests_parked_in_the_batch_window() {
    let handle = serve(
        paper_policy(),
        ServerConfig {
            batch: BatchConfig {
                window: Duration::from_millis(300),
                max_batch: 64,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();
    let request_len = handle.slot().current().request_len();

    let client = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).expect("connect");
        client.act(&obs_slab(1, request_len)).expect("drained act")
    });
    // Wait until the request has actually reached the batcher queue
    // (typically parking it in the open 300ms window), then shut down.
    wait_until(
        "the request to be enqueued",
        Duration::from_secs(10),
        || handle.stats().requests_enqueued.load(Ordering::SeqCst) >= 1,
    );
    let report = handle.shutdown();
    let actions = client.join().expect("client thread");
    assert!(!actions.is_empty());
    assert_eq!(report.requests_served, 1);
    assert_eq!(report.requests_rejected, 0);
}

/// The hot-swap acceptance test: under continuous load, drop a new
/// snapshot into the watched directory; zero requests fail across the
/// swap, and post-swap answers are bit-identical to a *fresh* server
/// started from that snapshot.
#[test]
fn hot_swap_under_load_drops_nothing_and_matches_a_fresh_server() {
    let train = TrainConfig::paper_default();
    let dir = scratch_dir("swap");

    let handle = serve(paper_policy(), ServerConfig::default()).expect("serve");
    let watcher = spawn_watcher(
        WatchConfig {
            dir: dir.clone(),
            poll_interval: Duration::from_millis(10),
            kind: KIND,
            scenario: SCENARIO.into(),
            backend: ExecutionBackend::Ideal,
            train: train.clone(),
            stats: None,
            faults: None,
        },
        handle.slot().clone(),
    )
    .expect("watcher");
    let addr = handle.addr();
    let request_len = handle.slot().current().request_len();

    // Continuous load throughout the swap; every single act() must
    // succeed.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let load: Vec<_> = (0..4)
        .map(|c| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut served = 0u64;
                let mut salt = c * 10_000;
                while !stop.load(Ordering::SeqCst) {
                    client
                        .act(&obs_slab(salt, request_len))
                        .expect("no request may fail across a hot-swap");
                    salt += 1;
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Build a visibly different policy and publish it atomically.
    let snapshot = {
        let mut actors = paper_actors(&train);
        for actor in &mut actors {
            let perturbed: Vec<f64> = actor.params().iter().map(|p| p + 0.35).collect();
            actor.set_params(&perturbed).expect("params fit");
        }
        FrameworkSnapshot {
            label: "swapped".into(),
            actor_params: actors.iter().map(|a| a.params()).collect(),
            critic_params: Vec::new(),
        }
    };
    std::thread::sleep(Duration::from_millis(50)); // load is flowing pre-swap
    snapshot.save(dir.join("step-000123.ckpt")).expect("save");

    wait_until("the watcher to swap", Duration::from_secs(10), || {
        handle.slot().version() >= 2
    });
    std::thread::sleep(Duration::from_millis(50)); // load keeps flowing post-swap
    stop.store(true, Ordering::SeqCst);
    let total_load: u64 = load
        .into_iter()
        .map(|w| w.join().expect("load thread"))
        .sum();
    assert!(total_load > 0, "load ran");

    // Post-swap answers match a fresh server started from the snapshot.
    let fresh_policy =
        ServablePolicy::from_snapshot(&snapshot, KIND, SCENARIO, &ExecutionBackend::Ideal, &train)
            .expect("fresh policy");
    let fresh = serve(fresh_policy, ServerConfig::default()).expect("fresh serve");
    let mut swapped_client = ServeClient::connect(addr).expect("connect swapped");
    let mut fresh_client = ServeClient::connect(fresh.addr()).expect("connect fresh");
    let mut diverged_from_v1 = false;
    let reference_v1 = paper_policy();
    for salt in 0..40 {
        let obs = obs_slab(salt, request_len);
        let a = swapped_client.act(&obs).expect("swapped act");
        let b = fresh_client.act(&obs).expect("fresh act");
        assert_eq!(a, b, "post-swap server diverged from a fresh load");
        let v1: Vec<u16> = reference_v1
            .act(&obs)
            .expect("v1 reference")
            .iter()
            .map(|&x| x as u16)
            .collect();
        diverged_from_v1 |= a != v1;
    }
    assert!(
        diverged_from_v1,
        "the perturbed snapshot should change at least one decision"
    );

    let info = swapped_client.info().expect("info");
    assert_eq!(info.policy_version, 2);
    assert_eq!(info.policy_swaps, 1);
    drop(swapped_client);
    drop(fresh_client);

    watcher.stop();
    let report = handle.shutdown();
    assert_eq!(report.requests_rejected, 0, "zero failures across the swap");
    assert_eq!(report.policy_swaps, 1);
    fresh.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn and corrupt snapshot files are skipped — the serving policy
/// stays on its current version — and a later valid file still swaps.
#[test]
fn watcher_skips_torn_snapshots_and_recovers_on_the_next_valid_one() {
    let train = TrainConfig::paper_default();
    let dir = scratch_dir("torn");
    let slot = Arc::new(PolicySlot::new(paper_policy()));
    let watcher = spawn_watcher(
        WatchConfig {
            dir: dir.clone(),
            poll_interval: Duration::from_millis(10),
            kind: KIND,
            scenario: SCENARIO.into(),
            backend: ExecutionBackend::Ideal,
            train: train.clone(),
            stats: None,
            faults: None,
        },
        slot.clone(),
    )
    .expect("watcher");

    // A torn file: a valid snapshot truncated mid-write (raw write, not
    // the atomic save path).
    let valid = {
        let actors = paper_actors(&train);
        FrameworkSnapshot {
            label: "next".into(),
            actor_params: actors.iter().map(|a| a.params()).collect(),
            critic_params: Vec::new(),
        }
    };
    let text = valid.to_text();
    std::fs::write(dir.join("torn.ckpt"), &text[..text.len() / 2]).expect("write torn");

    wait_until(
        "the torn file to be skipped",
        Duration::from_secs(10),
        || watcher.corrupt_skips.load(Ordering::SeqCst) >= 1,
    );
    assert_eq!(slot.version(), 1, "a torn file must never swap in");
    assert_eq!(watcher.swaps_applied.load(Ordering::SeqCst), 0);

    // Garbage with the right extension is also skipped.
    std::fs::write(dir.join("zz-garbage.ckpt"), b"not a snapshot at all").expect("write garbage");
    wait_until(
        "the garbage file to be skipped",
        Duration::from_secs(10),
        || watcher.corrupt_skips.load(Ordering::SeqCst) >= 2,
    );
    assert_eq!(slot.version(), 1);

    // The writer finishes properly: atomic save, picked up and applied.
    valid.save(dir.join("zz-ok.ckpt")).expect("save");
    wait_until("the valid file to swap", Duration::from_secs(10), || {
        slot.version() >= 2
    });
    assert_eq!(watcher.swaps_applied.load(Ordering::SeqCst), 1);
    assert_eq!(slot.current().label(), "next");

    watcher.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a connection that lands in the listen backlog after the
/// drain flag is set gets a typed ERROR frame back, not a silent reset.
///
/// The race is forced deterministically: a 500 ms accept poll guarantees
/// the accept thread is asleep when we connect, and shutdown() runs —
/// setting the stop flag — before the thread wakes to check it.
#[test]
fn connections_racing_shutdown_get_a_typed_error_frame() {
    let handle = serve(
        paper_policy(),
        ServerConfig {
            accept_poll: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();

    // Park one real connection so the accept thread has entered its
    // sleep-poll cycle (it accepted this one, then went back to sleep).
    let mut warm = ServeClient::connect(addr).expect("warm connect");
    let request_len = handle.slot().current().request_len();
    warm.act(&obs_slab(0, request_len)).expect("warm act");

    // This connection completes at the TCP level (backlog) while the
    // accept thread sleeps; the stop flag is set before it wakes.
    let racer = std::net::TcpStream::connect(addr).expect("racing connect");
    let shutdown = std::thread::spawn(move || {
        drop(warm);
        handle.shutdown()
    });

    // The drain loop must answer the backlogged connection with a typed
    // refusal before the listener closes.
    let mut racer = racer;
    racer
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let payload = qmarl_serve::protocol::read_frame(&mut racer)
        .expect("refusal frame, not a reset")
        .expect("refusal frame, not silent EOF");
    match Response::decode(&payload).expect("decodable refusal") {
        Response::Error { message, .. } => {
            assert!(message.contains("draining"), "got: {message}")
        }
        other => panic!("expected a typed ERROR frame, got {other:?}"),
    }
    shutdown.join().expect("shutdown thread");
}

/// Satellite: corrupt-checkpoint skips are visible to clients through
/// the INFO opcode when the watcher mirrors into the server stats.
#[test]
fn corrupt_skips_surface_through_the_info_opcode() {
    let train = TrainConfig::paper_default();
    let dir = scratch_dir("info-skips");
    let handle = serve(paper_policy(), ServerConfig::default()).expect("serve");
    let watcher = spawn_watcher(
        WatchConfig {
            dir: dir.clone(),
            poll_interval: Duration::from_millis(10),
            kind: KIND,
            scenario: SCENARIO.into(),
            backend: ExecutionBackend::Ideal,
            train: train.clone(),
            stats: Some(handle.stats().clone()),
            faults: None,
        },
        handle.slot().clone(),
    )
    .expect("watcher");

    // Atomic tmp+rename so the poller cannot fingerprint a half-written
    // file and double-count the skip.
    let tmp = dir.join("torn.ckpt.tmp");
    std::fs::write(&tmp, b"definitely not a snapshot").expect("write torn");
    std::fs::rename(&tmp, dir.join("torn.ckpt")).expect("rename torn");
    wait_until("the skip to surface", Duration::from_secs(10), || {
        watcher.corrupt_skips.load(Ordering::SeqCst) >= 1
    });

    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    let info = client.info().expect("info");
    assert_eq!(info.corrupt_skips, 1);
    assert_eq!(info.policy_version, 1, "the torn file must not swap in");
    drop(client);

    watcher.stop();
    let report = handle.shutdown();
    assert_eq!(report.corrupt_skips, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
