//! The analysis engine: per-file structural facts and the rule driver.
//!
//! On top of the raw token stream ([`crate::lexer`]) the engine derives
//! the structure rules need: `#[cfg(test)]` regions (so production-only
//! rules skip test code), function spans with their attributes and
//! enclosing module path (so the target-feature rule can resolve which
//! declaration a call names), per-line code presence (so suppression
//! pragmas know what they anchor to), and the parsed suppression
//! pragmas themselves.
//!
//! Analysis is two-pass: pass one collects workspace-wide facts (the
//! `#[target_feature]` declaration table), pass two runs every rule on
//! every file and applies suppressions. Pragmas that fail to parse,
//! lack a justification, or never match a finding produce their own
//! meta-findings (`bad-pragma`, `unused-suppression`), which are not
//! themselves suppressible — the suppression layer must stay honest.

use std::collections::BTreeMap;

use crate::lexer::{self, Comment, Token, TokenKind};
use crate::rules::{self, Finding};

/// Minimum number of non-whitespace characters for a pragma
/// justification to count as written.
const MIN_JUSTIFICATION: usize = 10;

/// How many comment-only/blank lines a pragma may sit above its
/// anchored code line.
const PRAGMA_REACH: u32 = 20;

/// One function item: name, location, attributes, and body span.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Innermost named module containing the declaration, or the file
    /// stem for top-level items (`rows`, `wide`, `avx`, ...).
    pub mod_name: String,
    pub is_target_feature: bool,
    pub is_unsafe: bool,
    /// Token index of the `fn` keyword.
    pub fn_index: usize,
    /// Token index range `(open_brace, close_brace)` of the body;
    /// `None` for bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// A parsed suppression pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule names listed in `allow(...)`.
    pub rules: Vec<String>,
    /// `allow-file(...)`: applies to the whole file.
    pub file_level: bool,
    /// Line of the pragma comment itself.
    pub line: u32,
    pub col: u32,
    /// Code line the pragma suppresses (the same line for trailing
    /// pragmas, the next code line below otherwise). 0 for file-level.
    pub anchor: u32,
    pub justified: bool,
}

/// A pragma that could not be parsed, with the reason.
#[derive(Debug, Clone)]
pub struct BadPragma {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// One source file with the structural facts rules consume.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Token-index ranges (inclusive) covered by `#[cfg(test)]` items.
    pub cfg_test_regions: Vec<(usize, usize)>,
    pub fns: Vec<FnSpan>,
    /// `(mod_name, open_brace_index, close_brace_index)` for every
    /// inline `mod name { ... }`.
    pub mods: Vec<(String, usize, usize)>,
    pub pragmas: Vec<Pragma>,
    pub bad_pragmas: Vec<BadPragma>,
    /// Lines (1-based) containing at least one code token.
    code_lines: Vec<bool>,
    /// For each code line, the first token's text (attribute detection
    /// while walking upward past `#[...]` lines).
    first_token_on_line: BTreeMap<u32, String>,
}

impl SourceFile {
    /// Parses `source` into tokens plus the derived structure. `known`
    /// is the rule-name list used to validate pragmas.
    pub fn parse(rel_path: &str, source: &str, known_rules: &[&str]) -> SourceFile {
        let lexer::LexOutput { tokens, comments } = lexer::lex(source);

        let max_line = source.lines().count() as u32 + 1;
        let mut code_lines = vec![false; (max_line + 2) as usize];
        let mut first_token_on_line = BTreeMap::new();
        for t in &tokens {
            code_lines[t.line as usize] = true;
            first_token_on_line
                .entry(t.line)
                .or_insert_with(|| t.text.clone());
        }

        let cfg_test_regions = find_cfg_test_regions(&tokens);
        let (fns, mods) = find_fns_and_mods(&tokens, rel_path);

        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            tokens,
            comments,
            cfg_test_regions,
            fns,
            mods,
            pragmas: Vec::new(),
            bad_pragmas: Vec::new(),
            code_lines,
            first_token_on_line,
        };
        file.parse_pragmas(known_rules);
        file
    }

    /// True when the 1-based `line` holds at least one code token.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.code_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// True when token index `i` lies inside a `#[cfg(test)]` item.
    pub fn in_cfg_test(&self, i: usize) -> bool {
        self.cfg_test_regions.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| i > s && i < e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }

    /// The innermost named module containing token index `i`, or the
    /// file stem when `i` is at the top level.
    pub fn mod_at(&self, i: usize) -> &str {
        self.mods
            .iter()
            .filter(|&&(_, s, e)| i > s && i < e)
            .min_by_key(|&&(_, s, e)| e - s)
            .map_or_else(|| file_stem(&self.rel_path), |(name, _, _)| name.as_str())
    }

    /// True when a comment overlapping or directly above `line`
    /// contains a SAFETY marker, walking upward over comment-only,
    /// blank, and attribute lines.
    pub fn has_safety_comment(&self, line: u32) -> bool {
        let marker = |c: &Comment| c.text.contains("SAFETY") || c.text.contains("# Safety");
        // Trailing or overlapping comment on the same line.
        if self
            .comments
            .iter()
            .any(|c| c.line <= line && line <= c.end_line && marker(c))
        {
            return true;
        }
        // Walk upward over non-code and attribute-only lines.
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.line_has_code(l) {
                // Attribute lines (`#[...]`) may sit between the
                // comment and the item; anything else ends the walk.
                match self.first_token_on_line.get(&l) {
                    Some(t) if t == "#" => continue,
                    _ => return false,
                }
            }
            if self
                .comments
                .iter()
                .any(|c| c.line <= l && l <= c.end_line && marker(c))
            {
                return true;
            }
            // A blank or comment line without the marker: keep walking
            // only while we stay within a contiguous comment block.
            let is_comment_line = self.comments.iter().any(|c| c.line <= l && l <= c.end_line);
            if !is_comment_line {
                return false;
            }
        }
        false
    }

    fn parse_pragmas(&mut self, known_rules: &[&str]) {
        let mut pragmas = Vec::new();
        let mut bad = Vec::new();
        for c in &self.comments {
            // A pragma's `xcheck:` must directly follow the comment
            // marker, so documentation *showing* pragma syntax inside
            // another comment (`//! // xcheck: ...`) is not a pragma.
            let mut text = c.text.as_str();
            for marker in ["//!", "///", "//", "/*!", "/**", "/*"] {
                if let Some(stripped) = text.strip_prefix(marker) {
                    text = stripped;
                    break;
                }
            }
            let Some(rest) = text.trim_start().strip_prefix("xcheck:") else {
                continue;
            };
            let rest = rest.trim_start();
            let (file_level, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
                (true, b)
            } else if let Some(b) = rest.strip_prefix("allow(") {
                (false, b)
            } else {
                bad.push(BadPragma {
                    line: c.line,
                    col: c.col,
                    message: "pragma must be `xcheck: allow(<rule>) — <justification>` or \
                              `xcheck: allow-file(...)`"
                        .to_string(),
                });
                continue;
            };
            let Some(close) = body.find(')') else {
                bad.push(BadPragma {
                    line: c.line,
                    col: c.col,
                    message: "unclosed rule list in pragma".to_string(),
                });
                continue;
            };
            let rules: Vec<String> = body[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                bad.push(BadPragma {
                    line: c.line,
                    col: c.col,
                    message: "empty rule list in pragma".to_string(),
                });
                continue;
            }
            let mut ok = true;
            for r in &rules {
                if !known_rules.contains(&r.as_str()) {
                    bad.push(BadPragma {
                        line: c.line,
                        col: c.col,
                        message: format!("unknown rule `{r}` in pragma"),
                    });
                    ok = false;
                }
            }
            if !ok {
                continue;
            }
            // Justification: everything after the rule list, minus a
            // leading separator (em dash, double or single hyphen, colon).
            let mut just = body[close + 1..].trim_start();
            for sep in ["—", "--", "-", ":"] {
                if let Some(j) = just.strip_prefix(sep) {
                    just = j.trim_start();
                    break;
                }
            }
            let justified =
                just.chars().filter(|c| !c.is_whitespace()).count() >= MIN_JUSTIFICATION;
            // Anchor: the pragma's own line when it trails code, else
            // the first code line below within reach.
            let anchor = if file_level {
                0
            } else if self.line_has_code(c.line) {
                c.line
            } else {
                let mut found = 0;
                for l in (c.end_line + 1)..=(c.end_line + PRAGMA_REACH) {
                    if self.line_has_code(l) {
                        found = l;
                        break;
                    }
                }
                found
            };
            if !file_level && anchor == 0 {
                bad.push(BadPragma {
                    line: c.line,
                    col: c.col,
                    message: "pragma does not anchor to any code line".to_string(),
                });
                continue;
            }
            pragmas.push(Pragma {
                rules,
                file_level,
                line: c.line,
                col: c.col,
                anchor,
                justified,
            });
        }
        self.pragmas = pragmas;
        self.bad_pragmas = bad;
    }
}

/// The file stem of a path (`crates/qsim/src/rows.rs` → `rows`).
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
}

/// Finds the token index of the brace matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Token-index ranges of items annotated `#[cfg(test)]` (or any `cfg`
/// attribute whose argument list mentions `test`).
fn find_cfg_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Outer attribute `#[ ... ]` (not inner `#![ ... ]`).
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0usize;
            let mut end = i + 1;
            let mut has_cfg = false;
            let mut has_test = false;
            for (k, t) in tokens.iter().enumerate().skip(i + 1) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                } else if t.kind == TokenKind::Ident {
                    has_cfg |= t.text == "cfg";
                    has_test |= t.text == "test";
                }
            }
            if has_cfg && has_test {
                // Attached item: scan past further attributes to the
                // item body `{...}` or a `;` terminator.
                let mut j = end + 1;
                while j < tokens.len() {
                    if tokens[j].is_punct('#') && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                    {
                        // Skip the nested attribute.
                        let mut d = 0usize;
                        while j < tokens.len() {
                            if tokens[j].is_punct('[') {
                                d += 1;
                            } else if tokens[j].is_punct(']') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                        j += 1;
                        continue;
                    }
                    if tokens[j].is_punct('{') {
                        let close = match_brace(tokens, j);
                        regions.push((i, close));
                        i = close;
                        break;
                    }
                    if tokens[j].is_punct(';') {
                        regions.push((i, j));
                        i = j;
                        break;
                    }
                    j += 1;
                }
            } else {
                i = end;
            }
        }
        i += 1;
    }
    regions
}

/// Scans for `fn` items (with attributes and enclosing module) and
/// inline `mod name { ... }` spans.
fn find_fns_and_mods(
    tokens: &[Token],
    rel_path: &str,
) -> (Vec<FnSpan>, Vec<(String, usize, usize)>) {
    let stem = file_stem(rel_path).to_string();
    let mut fns = Vec::new();
    let mut mods: Vec<(String, usize, usize)> = Vec::new();
    // Stack of (mod_name, close_brace_index).
    let mut mod_stack: Vec<(String, usize)> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        // Pop modules whose span has ended.
        while mod_stack.last().is_some_and(|&(_, close)| i > close) {
            mod_stack.pop();
        }

        let t = &tokens[i];
        if t.is_ident("mod")
            && tokens.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident)
            && tokens.get(i + 2).is_some_and(|b| b.is_punct('{'))
        {
            let open = i + 2;
            let close = match_brace(tokens, open);
            let name = tokens[i + 1].text.clone();
            mods.push((name.clone(), open, close));
            mod_stack.push((name, close));
            i += 3;
            continue;
        }

        if t.is_ident("fn") {
            // Name: next identifier.
            let name = match tokens.get(i + 1) {
                Some(n) if n.kind == TokenKind::Ident => n.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Backward walk over modifiers and attributes.
            let (is_tf, is_unsafe) = scan_fn_attrs(tokens, i);
            // Forward scan for the body: first `{` at bracket depth 0
            // before a terminating `;`.
            let mut body = None;
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < tokens.len() {
                let tj = &tokens[j];
                if tj.is_punct('(') || tj.is_punct('[') || tj.is_punct('<') {
                    // `<` tracking is heuristic; comparisons never occur
                    // in signatures before the body brace.
                    depth += 1;
                } else if tj.is_punct(')') || tj.is_punct(']') || tj.is_punct('>') {
                    depth -= 1;
                } else if tj.is_punct('{') && depth <= 0 {
                    body = Some((j, match_brace(tokens, j)));
                    break;
                } else if tj.is_punct(';') && depth <= 0 {
                    break;
                }
                j += 1;
            }
            let mod_name = mod_stack
                .last()
                .map_or_else(|| stem.clone(), |(n, _)| n.clone());
            fns.push(FnSpan {
                name,
                mod_name,
                is_target_feature: is_tf,
                is_unsafe,
                fn_index: i,
                body,
            });
        }
        i += 1;
    }
    (fns, mods)
}

/// Walks backward from the `fn` keyword at `at` over modifiers
/// (`pub(crate)`, `const`, `unsafe`, `extern "C"`) and attribute
/// groups, reporting whether the item carries `#[target_feature]` and
/// an `unsafe` qualifier.
fn scan_fn_attrs(tokens: &[Token], at: usize) -> (bool, bool) {
    let mut is_tf = false;
    let mut is_unsafe = false;
    let mut k = at;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        match t.kind {
            TokenKind::Ident
                if matches!(t.text.as_str(), "pub" | "const" | "unsafe" | "extern") =>
            {
                is_unsafe |= t.text == "unsafe";
            }
            TokenKind::Str => {} // the ABI string in `extern "C"`
            TokenKind::Punct if t.is_punct(')') => {
                // `pub(crate)` / `pub(super)` visibility parens.
                let mut d = 0i32;
                loop {
                    let tk = &tokens[k];
                    if tk.is_punct(')') {
                        d += 1;
                    } else if tk.is_punct('(') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
            }
            TokenKind::Punct if t.is_punct(']') => {
                // An attribute group `#[ ... ]`: collect its idents.
                let mut d = 0i32;
                let mut start = k;
                loop {
                    let tk = &tokens[start];
                    if tk.is_punct(']') {
                        d += 1;
                    } else if tk.is_punct('[') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    if start == 0 {
                        break;
                    }
                    start -= 1;
                }
                if start > 0 && tokens[start - 1].is_punct('#') {
                    for t in &tokens[start..k] {
                        if t.is_ident("target_feature") {
                            is_tf = true;
                        }
                    }
                    k = start - 1;
                } else {
                    break; // `]` that is not an attribute: stop
                }
            }
            _ => break,
        }
    }
    (is_tf, is_unsafe)
}

/// A workspace-wide analysis report.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule findings that survived suppression, sorted by position.
    pub findings: Vec<Finding>,
    /// Count of findings suppressed by pragmas (for the summary line).
    pub suppressed: usize,
    /// Number of files analyzed.
    pub files: usize,
}

/// Analyzes in-memory sources (path, contents). Paths are
/// workspace-relative with `/` separators — rule scoping keys off them.
pub fn analyze_sources(sources: &[(String, String)]) -> Report {
    let known = rules::rule_names();
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, s)| SourceFile::parse(p, s, &known))
        .collect();

    // Pass 1: workspace facts.
    let ctx = rules::Context::build(&files);

    // Pass 2: rules + suppression.
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    for (idx, file) in files.iter().enumerate() {
        let raw = rules::run_rules(file, idx, &ctx);
        let mut used = vec![false; file.pragmas.len()];
        for f in raw {
            let mut suppressed = false;
            for (pi, p) in file.pragmas.iter().enumerate() {
                let applies =
                    p.rules.iter().any(|r| r == f.rule) && (p.file_level || p.anchor == f.line);
                if applies {
                    used[pi] = true;
                    suppressed = true;
                }
            }
            if suppressed {
                report.suppressed += 1;
            } else {
                report.findings.push(f);
            }
        }
        // Meta-findings: never suppressible.
        for bp in &file.bad_pragmas {
            report.findings.push(Finding {
                rule: "bad-pragma",
                path: file.rel_path.clone(),
                line: bp.line,
                col: bp.col,
                message: bp.message.clone(),
            });
        }
        for (pi, p) in file.pragmas.iter().enumerate() {
            if !p.justified {
                report.findings.push(Finding {
                    rule: "bad-pragma",
                    path: file.rel_path.clone(),
                    line: p.line,
                    col: p.col,
                    message: format!(
                        "pragma for {} lacks a written justification (≥{} chars after the \
                         rule list)",
                        p.rules.join(", "),
                        MIN_JUSTIFICATION
                    ),
                });
            } else if !used[pi] {
                report.findings.push(Finding {
                    rule: "unused-suppression",
                    path: file.rel_path.clone(),
                    line: p.line,
                    col: p.col,
                    message: format!(
                        "pragma for {} suppresses nothing — remove it",
                        p.rules.join(", ")
                    ),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    report
}

/// Walks `root` for `.rs` files (skipping build output, VCS internals,
/// the xcheck fixture corpus, and generated results) and analyzes them.
pub fn analyze_workspace(root: &std::path::Path) -> std::io::Result<Report> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for p in paths {
        let contents = std::fs::read_to_string(root.join(&p))?;
        sources.push((p, contents));
    }
    Ok(analyze_sources(&sources))
}

const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "node_modules"];

fn collect_rs_files(
    root: &std::path::Path,
    dir: &std::path::Path,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_covers_test_mod() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { prod(); }\n}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src, &[]);
        // The `prod` call inside the test mod is in a cfg(test) region;
        // the production fn is not.
        let prod_decl = f.tokens.iter().position(|t| t.is_ident("prod")).unwrap();
        assert!(!f.in_cfg_test(prod_decl));
        let call = f.tokens.iter().rposition(|t| t.is_ident("prod")).unwrap();
        assert!(f.in_cfg_test(call));
    }

    #[test]
    fn fn_spans_record_attrs_and_mods() {
        let src = "mod avx {\n    #[target_feature(enable = \"avx2\")]\n    pub unsafe fn kern(x: &mut [f64]) { x[0] = 0.0; }\n}\npub fn safe_disp() {}\n";
        let f = SourceFile::parse("crates/x/src/rows.rs", src, &[]);
        assert_eq!(f.fns.len(), 2);
        let kern = f.fns.iter().find(|x| x.name == "kern").unwrap();
        assert!(kern.is_target_feature);
        assert!(kern.is_unsafe);
        assert_eq!(kern.mod_name, "avx");
        let disp = f.fns.iter().find(|x| x.name == "safe_disp").unwrap();
        assert!(!disp.is_target_feature);
        assert_eq!(disp.mod_name, "rows");
    }

    #[test]
    fn pragma_anchoring() {
        let src = "// xcheck: allow(no-fma) — reference implementation for parity tests\nlet y = x.mul_add(a, b);\nlet z = q.mul_add(a, b); // xcheck: allow(no-fma) — same justification here\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src, &["no-fma"]);
        assert_eq!(f.pragmas.len(), 2);
        assert_eq!(f.pragmas[0].anchor, 2);
        assert_eq!(f.pragmas[1].anchor, 3);
        assert!(f.pragmas.iter().all(|p| p.justified));
        assert!(f.bad_pragmas.is_empty());
    }

    #[test]
    fn bad_pragmas_are_reported() {
        let src = "// xcheck: allow(not-a-rule) — plausible words here\nlet a = 1;\n// xcheck: allow(no-fma)\nlet b = 2;\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src, &["no-fma"]);
        assert_eq!(f.bad_pragmas.len(), 1); // unknown rule
        assert_eq!(f.pragmas.len(), 1); // parsed but unjustified
        assert!(!f.pragmas[0].justified);
    }

    #[test]
    fn safety_comment_detection() {
        let src = "fn a() {\n    // SAFETY: len checked above.\n    unsafe { go() }\n}\nfn b() {\n    unsafe { go() }\n}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src, &[]);
        assert!(f.has_safety_comment(3));
        assert!(!f.has_safety_comment(6));
    }
}
