//! Human and JSON rendering of an analysis [`Report`].

use crate::engine::Report;

/// Renders the report for terminals: one `path:line:col rule message`
/// line per finding plus a summary.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "xcheck: {} finding{} ({} suppressed by pragma) across {} files\n",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressed,
        report.files,
    ));
    out
}

/// Renders the report as a single JSON object (hand-rolled — the crate
/// is dependency-free).
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (k, f) in report.findings.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"suppressed\": {},\n  \"files\": {}\n}}\n",
        report.suppressed, report.files
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn json_escapes_specials() {
        let mut r = Report {
            files: 1,
            ..Report::default()
        };
        r.findings.push(Finding {
            rule: "no-fma",
            path: "a/b.rs".to_string(),
            line: 3,
            col: 7,
            message: "quote \" backslash \\ newline \n".to_string(),
        });
        let j = json(&r);
        assert!(j.contains(r#""rule": "no-fma""#));
        assert!(j.contains(r#"quote \" backslash \\ newline \n"#));
    }

    #[test]
    fn human_summary_counts() {
        let r = Report {
            suppressed: 2,
            files: 5,
            ..Report::default()
        };
        assert!(human(&r).contains("0 findings (2 suppressed by pragma) across 5 files"));
    }
}
