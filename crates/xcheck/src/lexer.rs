//! A token-level lexer for Rust source.
//!
//! xcheck's rules must never fire on text inside comments or string
//! literals ("mul_add" in a doc comment is not a call), and must never
//! miss code because of surface syntax (a raw string containing `*/`,
//! a lifetime that looks like an unterminated char). A regex scan gets
//! all of those wrong, so this module implements a real lexer covering
//! the Rust token forms that matter for analysis:
//!
//! - line comments and **nested** block comments (`/* /* */ */`);
//! - string / byte-string / C-string literals with escapes;
//! - raw strings with arbitrary hash fences (`r#"..."#`, `br##"..."##`);
//! - char-vs-lifetime disambiguation (`'a'` is a char, `'a` and
//!   `'static` are lifetimes, `b'x'` is a byte literal);
//! - numeric literals including `0x` prefixes, `1e-3` exponents, and
//!   the range ambiguity (`0..dim` is Num `0`, two `.` puncts, Ident).
//!
//! Identifiers, keywords, and punctuation come out as plain tokens with
//! 1-based line/column positions; comments are collected separately so
//! rules can inspect them (SAFETY markers, suppression pragmas) without
//! them polluting the token stream.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Lifetime or loop label, e.g. `'a`, `'static` (without the quote).
    Lifetime,
    /// Char or byte-char literal, e.g. `'x'`, `b'\n'`.
    Char,
    /// String / byte-string / C-string literal (escaped form).
    Str,
    /// Raw string literal of any prefix and fence depth.
    RawStr,
    /// Numeric literal (integer or float, any base).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Identifier text, literal text (without quotes for `Str`), or the
    /// single punctuation character.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// One comment (line or block) with its source span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/* */` delimiters.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (equals `line` for
    /// line comments; block comments may span many lines).
    pub end_line: u32,
    pub col: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, buf: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if pred(c) {
                buf.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Never fails: unrecognized or
/// malformed input degrades to single-character `Punct` tokens, which
/// is the right behavior for an analyzer that must not crash on the
/// code it is checking.
pub fn lex(src: &str) -> LexOutput {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = LexOutput::default();

    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);

        // Whitespace.
        if c.is_whitespace() {
            lx.bump();
            continue;
        }

        // Comments.
        if c == '/' && lx.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = lx.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                lx.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                end_line: line,
                col,
            });
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            let mut text = String::new();
            text.push(lx.bump().unwrap_or('/'));
            text.push(lx.bump().unwrap_or('*'));
            let mut depth = 1usize;
            while depth > 0 {
                match (lx.peek(0), lx.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push(lx.bump().unwrap_or('/'));
                        text.push(lx.bump().unwrap_or('*'));
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push(lx.bump().unwrap_or('*'));
                        text.push(lx.bump().unwrap_or('/'));
                    }
                    (Some(_), _) => {
                        if let Some(ch) = lx.bump() {
                            text.push(ch);
                        }
                    }
                    (None, _) => break, // unterminated: tolerate
                }
            }
            out.comments.push(Comment {
                text,
                line,
                end_line: lx.line,
                col,
            });
            continue;
        }

        // Identifiers — including raw-string / byte-literal prefixes.
        if is_ident_start(c) {
            let mut ident = String::new();
            lx.eat_while(&mut ident, is_ident_continue);
            let next = lx.peek(0);
            match (ident.as_str(), next) {
                // Raw strings: r"..", r#".."#, br".." etc.
                ("r" | "br" | "cr", Some('"')) | ("r" | "br" | "cr", Some('#')) => {
                    if let Some(text) = lex_raw_string(&mut lx) {
                        out.tokens.push(Token {
                            kind: TokenKind::RawStr,
                            text,
                            line,
                            col,
                        });
                        continue;
                    }
                    // Not actually a raw string (e.g. `r#ident`): fall
                    // through to plain identifier below.
                }
                // Escaped byte / C strings: b"..", c"..".
                ("b" | "c", Some('"')) => {
                    let text = lex_escaped_string(&mut lx);
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
                // Byte char literal b'x'.
                ("b", Some('\'')) => {
                    let text = lex_char_literal(&mut lx);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
                _ => {}
            }
            // Raw identifier `r#ident`: merge into one Ident token.
            if ident == "r" && lx.peek(0) == Some('#') && lx.peek(1).is_some_and(is_ident_start) {
                lx.bump(); // '#'
                let mut raw = String::new();
                lx.eat_while(&mut raw, is_ident_continue);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: raw,
                    line,
                    col,
                });
                continue;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
                col,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            let hex = c == '0' && matches!(lx.peek(1), Some('x') | Some('X'));
            if hex {
                text.push(lx.bump().unwrap_or('0'));
                text.push(lx.bump().unwrap_or('x'));
                lx.eat_while(&mut text, |ch| ch.is_ascii_hexdigit() || ch == '_');
            } else {
                lx.eat_while(&mut text, |ch| ch.is_ascii_digit() || ch == '_');
                // A fractional part only if `.` is followed by a digit,
                // so `0..dim` lexes as Num, Punct, Punct, Ident.
                if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    text.push(lx.bump().unwrap_or('.'));
                    lx.eat_while(&mut text, |ch| ch.is_ascii_digit() || ch == '_');
                }
                // Exponent: 1e9, 1e-3, 2.5E+7.
                if matches!(lx.peek(0), Some('e') | Some('E')) {
                    let sign = matches!(lx.peek(1), Some('+') | Some('-'));
                    let digit_at = if sign { 2 } else { 1 };
                    if lx.peek(digit_at).is_some_and(|d| d.is_ascii_digit()) {
                        text.push(lx.bump().unwrap_or('e'));
                        if sign {
                            text.push(lx.bump().unwrap_or('+'));
                        }
                        lx.eat_while(&mut text, |ch| ch.is_ascii_digit() || ch == '_');
                    }
                }
            }
            // Type suffix (u64, f32, usize...): part of the literal.
            lx.eat_while(&mut text, is_ident_continue);
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text,
                line,
                col,
            });
            continue;
        }

        // Escaped string literal.
        if c == '"' {
            let text = lex_escaped_string(&mut lx);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line,
                col,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let p1 = lx.peek(1);
            let is_char = match p1 {
                Some('\\') => true,
                Some(ch) if is_ident_continue(ch) => lx.peek(2) == Some('\''),
                Some('\'') => false, // `''` — malformed, treat as puncts
                Some(_) => lx.peek(2) == Some('\''), // '(' , '.' etc.
                None => false,
            };
            if is_char {
                let text = lex_char_literal(&mut lx);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                    col,
                });
                continue;
            }
            if p1.is_some_and(is_ident_start) {
                lx.bump(); // quote
                let mut name = String::new();
                lx.eat_while(&mut name, is_ident_continue);
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: name,
                    line,
                    col,
                });
                continue;
            }
            // Lone quote: degrade to punct.
            lx.bump();
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: "'".to_string(),
                line,
                col,
            });
            continue;
        }

        // Everything else: single-character punctuation.
        lx.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }

    out
}

/// Consumes a raw string starting at the current position (just after
/// the `r`/`br`/`cr` prefix): zero or more `#`, a `"`, content, then a
/// `"` followed by the same number of `#`. Returns `None` (consuming
/// nothing) when the head is not actually a raw string.
fn lex_raw_string(lx: &mut Lexer) -> Option<String> {
    // Count fence hashes without consuming yet.
    let mut hashes = 0usize;
    while lx.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if lx.peek(hashes) != Some('"') {
        return None;
    }
    for _ in 0..=hashes {
        lx.bump(); // hashes + opening quote
    }
    let mut text = String::new();
    loop {
        match lx.peek(0) {
            Some('"') => {
                let mut k = 1;
                while k <= hashes && lx.peek(k) == Some('#') {
                    k += 1;
                }
                if k == hashes + 1 {
                    for _ in 0..=hashes {
                        lx.bump(); // closing quote + hashes
                    }
                    return Some(text);
                }
                text.push('"');
                lx.bump();
            }
            Some(ch) => {
                text.push(ch);
                lx.bump();
            }
            None => return Some(text), // unterminated: tolerate
        }
    }
}

/// Consumes a `"..."` literal with `\`-escapes; the opening quote is at
/// the current position. Returns the content without quotes.
fn lex_escaped_string(lx: &mut Lexer) -> String {
    lx.bump(); // opening quote
    let mut text = String::new();
    while let Some(ch) = lx.peek(0) {
        match ch {
            '"' => {
                lx.bump();
                break;
            }
            '\\' => {
                lx.bump();
                if let Some(esc) = lx.bump() {
                    text.push('\\');
                    text.push(esc);
                }
            }
            _ => {
                text.push(ch);
                lx.bump();
            }
        }
    }
    text
}

/// Consumes a `'...'` char literal (escapes included); the opening
/// quote is at the current position.
fn lex_char_literal(lx: &mut Lexer) -> String {
    lx.bump(); // opening quote
    let mut text = String::new();
    while let Some(ch) = lx.peek(0) {
        match ch {
            '\'' => {
                lx.bump();
                break;
            }
            '\\' => {
                lx.bump();
                if let Some(esc) = lx.bump() {
                    text.push('\\');
                    text.push(esc);
                }
            }
            _ => {
                text.push(ch);
                lx.bump();
            }
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("a /* one /* two */ still comment */ b");
        assert_eq!(idents("a /* one /* two */ still comment */ b"), ["a", "b"]);
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("still comment"));
    }

    #[test]
    fn raw_strings_hide_their_content() {
        let src = r####"let x = r#"mul_add */ " quote"# ; y"####;
        let out = lex(src);
        assert_eq!(idents(src), ["let", "x", "y"]);
        let raw: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::RawStr)
            .collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].text.contains("mul_add"));
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        assert_eq!(idents(r#"b"bytes" c"cstr" br"raw" x"#), ["x"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; 'outer: loop {} }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "outer"]);
        let chars = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn range_vs_float() {
        let toks = lex("0..dim 1.5 1e-3 0x1f_u64");
        let kinds: Vec<_> = toks.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            [
                TokenKind::Num,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Num,
                TokenKind::Num,
                TokenKind::Num,
            ]
        );
        assert_eq!(toks.tokens[4].text, "1.5");
        assert_eq!(toks.tokens[5].text, "1e-3");
        assert_eq!(toks.tokens[6].text, "0x1f_u64");
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("ab\n  cd");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        assert_eq!(idents(r#"a "esc \" quote" b"#), ["a", "b"]);
    }

    #[test]
    fn raw_identifier() {
        let out = lex("r#type x");
        assert_eq!(out.tokens[0].text, "type");
        assert_eq!(out.tokens[0].kind, TokenKind::Ident);
        assert_eq!(out.tokens[1].text, "x");
    }
}
