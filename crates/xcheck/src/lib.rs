//! `xcheck` — the workspace's project-invariant static analyzer.
//!
//! The repo's correctness story rests on contracts no compiler checks:
//! bit-identical SIMD dispatch (no fused multiply-add in kernels),
//! worker-count-invariant determinism, documented `unsafe`
//! preconditions, `#[target_feature]` fns reached only through CPU
//! dispatch guards, and a serve hot path that never panics. `xcheck`
//! lexes every Rust source in the workspace (a real token-level lexer,
//! so comments and string literals never trigger rules) and enforces
//! those contracts as machine-checked rules with per-site suppression
//! pragmas:
//!
//! ```text
//! // xcheck: allow(<rule>[, <rule>]) — <written justification>
//! ```
//!
//! A pragma on its own line suppresses findings on the next code line;
//! a trailing pragma suppresses its own line; `allow-file(...)`
//! suppresses the whole file. Pragmas without a justification, naming
//! unknown rules, or suppressing nothing are themselves findings.
//!
//! Run it with `cargo run -p xcheck` (report) or
//! `cargo run -p xcheck -- --deny-all` (exit nonzero on any finding,
//! the CI gate). The crate is dependency-free by design — it must run
//! in the same offline container as the rest of the workspace.

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{analyze_sources, analyze_workspace, Report, SourceFile};
pub use rules::{Context, Finding, RULES};
