//! The `xcheck` CLI.
//!
//! ```text
//! cargo run -p xcheck                   # report findings, exit 0
//! cargo run -p xcheck -- --deny-all     # exit 1 on any finding (CI gate)
//! cargo run -p xcheck -- --json         # machine-readable report
//! cargo run -p xcheck -- --list-rules   # print the rule catalog
//! cargo run -p xcheck -- --root <dir>   # analyze another tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--list-rules" => {
                for (name, what) in xcheck::RULES {
                    println!("{name}\n    {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("xcheck: --root requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "xcheck — project-invariant static analyzer\n\n\
                     USAGE: xcheck [--deny-all] [--json] [--list-rules] [--root <dir>]\n\n\
                     --deny-all    exit 1 when any finding survives suppression (CI gate)\n\
                     --json        machine-readable report on stdout\n\
                     --list-rules  print the rule catalog and exit\n\
                     --root <dir>  workspace root to analyze (default: this workspace)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xcheck: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    // Default root: the workspace this binary was built from, so
    // `cargo run -p xcheck` works from any cwd inside the tree.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map_or_else(|| PathBuf::from("."), PathBuf::from)
    });

    let report = match xcheck::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xcheck: failed to read {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if json {
        print!("{}", xcheck::report::json(&report));
    } else {
        print!("{}", xcheck::report::human(&report));
    }

    if deny_all && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
