//! The rule catalog: each rule encodes one invariant this repo's
//! correctness argument actually depends on.
//!
//! Rules operate on the lexed token stream plus the structure derived
//! by [`crate::engine`], so they are immune to comments and string
//! literals but still purely syntactic — each rule documents the
//! matching scheme it uses and the false-positive/negative tradeoffs.

use crate::engine::SourceFile;
use crate::lexer::TokenKind;

/// One rule violation (or meta-finding) at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// The rule catalog: `(name, invariant protected)`. The last two are
/// meta-rules emitted by the engine itself and cannot be suppressed.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-fma",
        "bit-identical SIMD dispatch: no fused multiply-add (`mul_add`, `_mm256_fmadd*`) in \
         qsim/runtime kernels, so scalar and AVX2 paths round identically",
    ),
    (
        "unsafe-safety-comment",
        "every `unsafe` block/fn/impl carries a `// SAFETY:` comment stating the \
         pointer/length/cpu-feature preconditions it relies on",
    ),
    (
        "target-feature-dispatch",
        "`#[target_feature]` fns are only called from other `#[target_feature]` fns or from \
         dispatch sites guarded by `simd::level()` / `wide()`",
    ),
    (
        "determinism",
        "deterministic crates (qsim, runtime, vqc, env, core, harness, chaos, neural) never \
         read wall clocks, spawn free threads, or iterate hash-ordered containers",
    ),
    (
        "no-panic-serve",
        "the serve hot path never panics: no `unwrap`/`expect`/`panic!`-family macros in \
         crates/serve non-test library code",
    ),
    (
        "bad-pragma",
        "suppression pragmas parse, name known rules, anchor to code, and carry a written \
         justification (meta-rule; not suppressible)",
    ),
    (
        "unused-suppression",
        "suppression pragmas that no longer match a finding must be removed (meta-rule; not \
         suppressible)",
    ),
];

/// All rule names, for pragma validation.
pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|(n, _)| *n).collect()
}

/// Crates whose outputs must be bit-identical across worker counts and
/// SIMD levels. `serve`, `bench`, and the harness CLI's *reporting*
/// layer may read wall clocks (timing is metadata there, never data);
/// the harness compute path is in scope and uses pragmas for its
/// metadata-only timers.
const DETERMINISTIC_CRATES: &[&str] = &[
    "qsim", "runtime", "vqc", "env", "core", "harness", "chaos", "neural",
];

/// A `#[target_feature]` function declaration, keyed for call matching.
#[derive(Debug)]
pub struct TfDecl {
    pub name: String,
    /// Innermost named module (or file stem) of the declaration.
    pub mod_name: String,
    pub file_idx: usize,
}

/// Workspace-wide facts collected in pass one.
#[derive(Debug, Default)]
pub struct Context {
    pub tf_decls: Vec<TfDecl>,
}

impl Context {
    pub fn build(files: &[SourceFile]) -> Context {
        let mut ctx = Context::default();
        for (idx, f) in files.iter().enumerate() {
            for fun in &f.fns {
                if fun.is_target_feature {
                    ctx.tf_decls.push(TfDecl {
                        name: fun.name.clone(),
                        mod_name: fun.mod_name.clone(),
                        file_idx: idx,
                    });
                }
            }
        }
        ctx
    }
}

/// The crate a workspace-relative path belongs to (`crates/qsim/src/..`
/// → `qsim`), or `None` outside `crates/`.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// True for integration-test, bench, and example paths, which every
/// production-code rule skips.
fn is_test_path(path: &str) -> bool {
    path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
}

/// True for library/binary source paths (`.../src/...`).
fn is_src_path(path: &str) -> bool {
    path.contains("/src/") || path.starts_with("src/")
}

/// Runs every rule on one file. `file_idx` is the file's index in the
/// workspace list (for declaration matching against `ctx`).
pub fn run_rules(file: &SourceFile, file_idx: usize, ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_no_fma(file, &mut out);
    rule_unsafe_safety_comment(file, &mut out);
    rule_target_feature_dispatch(file, file_idx, ctx, &mut out);
    rule_determinism(file, &mut out);
    rule_no_panic_serve(file, &mut out);
    out
}

fn push(out: &mut Vec<Finding>, rule: &'static str, file: &SourceFile, i: usize, msg: String) {
    let t = &file.tokens[i];
    out.push(Finding {
        rule,
        path: file.rel_path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
    });
}

/// **no-fma** — scope: `crates/qsim/src`, `crates/runtime/src` (tests
/// included: a fused reference inside a parity test would make the test
/// agree with a broken kernel). Flags the identifier `mul_add` and any
/// `_mm*` intrinsic whose name contains a fused-multiply form. Matching
/// is by token name, so an unfused helper must not be called `mul_add`
/// (the workspace uses `mul_acc` for the expanded complex fused-shape
/// helper for exactly this reason).
fn rule_no_fma(file: &SourceFile, out: &mut Vec<Finding>) {
    let scoped = matches!(crate_of(&file.rel_path), Some("qsim") | Some("runtime"))
        && is_src_path(&file.rel_path);
    if !scoped {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let fused_intrinsic = t.text.starts_with("_mm")
            && ["fmadd", "fmsub", "fnmadd", "fnmsub"]
                .iter()
                .any(|f| t.text.contains(f));
        if t.text == "mul_add" || fused_intrinsic {
            push(
                out,
                "no-fma",
                file,
                i,
                format!(
                    "`{}` fuses multiply-add with a single rounding; qsim/runtime kernels \
                     must round each op so scalar and AVX2 stay bit-identical",
                    t.text
                ),
            );
        }
    }
}

/// **unsafe-safety-comment** — scope: all `src/` paths, non-test code.
/// Every `unsafe` keyword introducing a block, fn, or impl must have a
/// comment containing `SAFETY` on the same line, directly above it, or
/// directly above the attributes stacked on it.
fn rule_unsafe_safety_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    if !is_src_path(&file.rel_path) || is_test_path(&file.rel_path) {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") || file.in_cfg_test(i) {
            continue;
        }
        let form = match file.tokens.get(i + 1) {
            Some(n) if n.is_punct('{') => "block",
            Some(n) if n.is_ident("fn") || n.is_ident("extern") => "fn",
            Some(n) if n.is_ident("impl") || n.is_ident("trait") => "impl",
            _ => continue, // e.g. the contextual `unsafe` in attr strings
        };
        if !file.has_safety_comment(t.line) {
            push(
                out,
                "unsafe-safety-comment",
                file,
                i,
                format!(
                    "`unsafe` {form} without a `// SAFETY:` comment stating the preconditions \
                     it relies on"
                ),
            );
        }
    }
}

/// **target-feature-dispatch** — scope: everywhere (test code too: a
/// test calling an AVX2 kernel without a guard SIGILLs on older CPUs).
///
/// A call to a name declared `#[target_feature]` somewhere in the
/// workspace is matched conservatively: a path-qualified call
/// (`avx::rot_x_rows(..)`) matches only when the qualifier's last
/// segment equals the declaration's module (so the *safe* dispatcher
/// `rows::rot_x_rows` twin never matches its `avx::` namesake); an
/// unqualified call matches only declarations in the same file *and*
/// module. A matched call is fine when the enclosing fn is itself
/// `#[target_feature]`, or when its body calls a dispatch guard
/// (`level(`, `wide(`, `wide_supported(`) before the call site.
fn rule_target_feature_dispatch(
    file: &SourceFile,
    file_idx: usize,
    ctx: &Context,
    out: &mut Vec<Finding>,
) {
    if ctx.tf_decls.is_empty() {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let decls: Vec<&TfDecl> = ctx.tf_decls.iter().filter(|d| d.name == t.text).collect();
        if decls.is_empty() {
            continue;
        }
        // Declaration sites themselves: `fn name`.
        if i > 0 && file.tokens[i - 1].is_ident("fn") {
            continue;
        }
        // Must look like a call: `name(` or turbofish `name::<..>(`.
        let direct_call = file.tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        let turbofish = file.tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && file.tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && file.tokens.get(i + 3).is_some_and(|n| n.is_punct('<'));
        if !direct_call && !turbofish {
            continue;
        }
        // Qualifier: the path segment immediately before `::name`.
        let qualifier = if i >= 3
            && file.tokens[i - 1].is_punct(':')
            && file.tokens[i - 2].is_punct(':')
            && file.tokens[i - 3].kind == TokenKind::Ident
        {
            Some(file.tokens[i - 3].text.as_str())
        } else {
            None
        };
        let matched = match qualifier {
            Some(q @ ("self" | "crate" | "super")) => {
                let _ = q;
                decls.iter().any(|d| d.file_idx == file_idx)
            }
            Some(q) => decls.iter().any(|d| d.mod_name == q),
            None => {
                let call_mod = file.mod_at(i);
                decls
                    .iter()
                    .any(|d| d.file_idx == file_idx && d.mod_name == call_mod)
            }
        };
        if !matched {
            continue;
        }
        let Some(enc) = file.enclosing_fn(i) else {
            push(
                out,
                "target-feature-dispatch",
                file,
                i,
                format!(
                    "`{}` is #[target_feature] but called outside any fn",
                    t.text
                ),
            );
            continue;
        };
        if enc.is_target_feature {
            continue;
        }
        let guarded = enc.body.is_some_and(|(start, _)| {
            file.tokens[start..i].windows(2).any(|w| {
                w[1].is_punct('(')
                    && (w[0].is_ident("level")
                        || w[0].is_ident("wide")
                        || w[0].is_ident("wide_supported"))
            })
        });
        if !guarded {
            push(
                out,
                "target-feature-dispatch",
                file,
                i,
                format!(
                    "`{}` is #[target_feature(enable = ...)] but the enclosing fn `{}` is \
                     neither #[target_feature] nor guarded by a simd::level()/wide() dispatch \
                     check before the call",
                    t.text, enc.name
                ),
            );
        }
    }
}

/// **determinism** — scope: the deterministic crates' `src/` trees,
/// non-test code. Flags `Instant::now` / `SystemTime` / `thread::spawn`
/// path sequences and every `HashMap`/`HashSet` identifier (hash
/// iteration order varies per process, so their mere presence in a
/// deterministic crate needs justification). Scoped thread spawns
/// (`scope.spawn`) are method calls, not the `thread::spawn` path, and
/// are deliberately not flagged — `qsim::par` joins all workers and
/// reorders results by index.
fn rule_determinism(file: &SourceFile, out: &mut Vec<Finding>) {
    let scoped = crate_of(&file.rel_path).is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
        && is_src_path(&file.rel_path)
        && !is_test_path(&file.rel_path);
    if !scoped {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.in_cfg_test(i) {
            continue;
        }
        let path_call = |head: &str, tail: &str| {
            t.text == head
                && file.tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && file.tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && file.tokens.get(i + 3).is_some_and(|n| n.is_ident(tail))
        };
        if path_call("Instant", "now") {
            push(
                out,
                "determinism",
                file,
                i,
                "`Instant::now()` reads the wall clock in a deterministic crate; results must \
                 be a pure function of (config, seed)"
                    .to_string(),
            );
        } else if t.text == "SystemTime" {
            push(
                out,
                "determinism",
                file,
                i,
                "`SystemTime` in a deterministic crate; results must be a pure function of \
                 (config, seed)"
                    .to_string(),
            );
        } else if path_call("thread", "spawn") {
            push(
                out,
                "determinism",
                file,
                i,
                "free `thread::spawn` in a deterministic crate; use qsim::par's scoped, \
                 order-restoring scheduler instead"
                    .to_string(),
            );
        } else if t.text == "HashMap" || t.text == "HashSet" {
            push(
                out,
                "determinism",
                file,
                i,
                format!(
                    "`{}` iterates in per-process hash order; use BTreeMap/BTreeSet in \
                     deterministic crates or justify that no iteration order escapes",
                    t.text
                ),
            );
        }
    }
}

/// **no-panic-serve** — scope: `crates/serve/src` excluding `src/bin`
/// (the loadgen binary is test tooling, not the serving hot path) and
/// test code. Flags `.unwrap()` / `.expect()` method calls and the
/// panic-family macros.
fn rule_no_panic_serve(file: &SourceFile, out: &mut Vec<Finding>) {
    let scoped = file.rel_path.starts_with("crates/serve/src/")
        && !file.rel_path.starts_with("crates/serve/src/bin/");
    if !scoped {
        return;
    }
    const METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.in_cfg_test(i) {
            continue;
        }
        let method = METHODS.contains(&t.text.as_str())
            && i > 0
            && file.tokens[i - 1].is_punct('.')
            && file.tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        let mac = MACROS.contains(&t.text.as_str())
            && file.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if method {
            push(
                out,
                "no-panic-serve",
                file,
                i,
                format!(
                    "`.{}()` can panic on the serve hot path; return a ServeError instead",
                    t.text
                ),
            );
        } else if mac {
            push(
                out,
                "no-panic-serve",
                file,
                i,
                format!(
                    "`{}!` panics on the serve hot path; return a ServeError instead",
                    t.text
                ),
            );
        }
    }
}
