//! Fixture: a clean file — mentions `mul_add`, `HashMap`, and `unsafe`
//! only in prose and string literals, which must never be flagged.

use std::collections::BTreeMap;

/// Docs may talk about `mul_add` and `HashMap` freely.
pub fn tally(xs: &[(u32, u32)]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &(k, v) in xs {
        *m.entry(k).or_insert(0) += v;
    }
    let _s = "unsafe { mul_add } in a string";
    m
}
