//! Fixture: fused multiply-add tokens — `mul_add` in this doc comment
//! is never flagged.

pub fn accum(a: f64, b: f64, c: f64) -> f64 {
    let s = "mul_add inside a string literal is not flagged";
    let _ = s;
    let x = a.mul_add(b, c);
    let y = f64::mul_add(x, b, c);
    x + y
}

pub fn intrinsic_name() {
    let _ = _mm256_fmadd_pd;
}
