//! Fixture: `#[target_feature]` call-site discipline.

mod avx {
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn kernel(x: &mut [f64]) {
        x[0] = 1.0;
    }
}

fn wide() -> bool {
    false
}

/// The safe twin: same name, file module — never matches `avx::kernel`.
pub fn kernel(x: &mut [f64]) {
    x[0] = 2.0;
}

pub fn unguarded(x: &mut [f64]) {
    // SAFETY: fixture — deliberately missing the dispatch guard.
    unsafe { avx::kernel(x) }
}

pub fn guarded(x: &mut [f64]) {
    if wide() {
        // SAFETY: `wide()` verified AVX2 on the line above.
        unsafe { avx::kernel(x) }
    }
}

pub fn calls_safe_twin(x: &mut [f64]) {
    kernel(x);
}
