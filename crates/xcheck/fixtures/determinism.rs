//! Fixture: wall clocks, free threads, and hash-ordered containers.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub fn naughty() -> u64 {
    let t = Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let st: Option<SystemTime> = None;
    let h = std::thread::spawn(|| 7u64);
    let _ = (t, st, m.len() as u64);
    h.join().unwrap_or(0)
}
