//! Fixture: panic paths in serving code.

pub fn hot(v: Option<u32>) -> u32 {
    let x = v.unwrap();
    let y = v.expect("present");
    if x + y > 3 {
        panic!("boom");
    }
    x
}

pub fn okay(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_fine_in_tests() {
        assert_eq!(Some(5u32).unwrap(), 5);
    }
}
