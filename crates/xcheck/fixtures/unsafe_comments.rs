//! Fixture: `unsafe` with and without SAFETY comments.

pub unsafe fn raw_write(p: *mut u8) {
    *p = 0;
}

/// SAFETY is discussed here, above the attribute stack.
#[inline]
pub unsafe fn with_attr(p: *mut u8) {
    *p = 1;
}

pub fn commented(p: *mut u8) {
    // SAFETY: fixture contract — `p` is valid for one byte write.
    unsafe { *p = 2 }
}

pub fn uncommented(p: *mut u8) {
    unsafe { *p = 3 }
}

#[cfg(test)]
mod tests {
    pub fn in_tests(p: *mut u8) {
        unsafe { *p = 4 }
    }
}
