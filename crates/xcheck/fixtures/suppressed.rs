//! Fixture: pragma suppression, justification, and staleness.

pub fn timed_metadata() -> std::time::Instant {
    // xcheck: allow(determinism) — fixture: metadata-only timer; the
    // value never feeds results.
    std::time::Instant::now()
}

// xcheck: allow(determinism)
pub fn unjustified() -> std::time::Instant {
    std::time::Instant::now()
}

// xcheck: allow(no-fma) — fixture: nothing fused below, so this pragma is stale.
pub fn stale() -> f64 {
    2.0_f64 * 3.0 + 1.0
}
