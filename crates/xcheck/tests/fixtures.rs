//! Fixture-corpus tests: each file under `fixtures/` pins one rule's
//! exact behavior — finding counts, (line, col) spans, scope edges, and
//! pragma suppression. The workspace walker skips `fixtures/`
//! directories, so these files never pollute the real sweep; tests feed
//! them through [`analyze_sources`] under rule-scoped fake paths.

use xcheck::{analyze_sources, Report};

fn analyze(rel_path: &str, src: &str) -> Report {
    analyze_sources(&[(rel_path.to_string(), src.to_string())])
}

/// `(line, col)` spans of every finding for `rule`, in report order.
fn spans(report: &Report, rule: &str) -> Vec<(u32, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.line, f.col))
        .collect()
}

#[test]
fn fma_fixture_exact_spans() {
    let src = include_str!("../fixtures/fma.rs");
    let r = analyze("crates/qsim/src/fma_fixture.rs", src);
    // Two `mul_add` calls plus one fused intrinsic name; the doc-comment
    // and string-literal mentions are invisible to the token rules.
    assert_eq!(spans(&r, "no-fma"), vec![(7, 15), (8, 18), (13, 13)]);
    assert_eq!(
        r.findings.len(),
        3,
        "no other rule fires: {:#?}",
        r.findings
    );
    assert_eq!(r.suppressed, 0);
}

#[test]
fn fma_fixture_out_of_scope_paths_are_clean() {
    let src = include_str!("../fixtures/fma.rs");
    // Same tokens outside qsim/runtime src: the rule does not apply.
    for path in [
        "crates/serve/src/fma_fixture.rs",
        "crates/qsim/tests/fma_fixture.rs",
        "crates/qsim/benches/fma_fixture.rs",
    ] {
        let r = analyze(path, src);
        assert!(
            spans(&r, "no-fma").is_empty(),
            "no-fma fired out of scope at {path}"
        );
    }
}

#[test]
fn unsafe_fixture_exact_spans() {
    let src = include_str!("../fixtures/unsafe_comments.rs");
    let r = analyze("crates/qsim/src/unsafe_fixture.rs", src);
    // The bare `unsafe fn` and the uncommented block fire; the
    // SAFETY-doc'd fn (comment above the attribute stack), the
    // commented block, and the cfg(test) block do not.
    assert_eq!(spans(&r, "unsafe-safety-comment"), vec![(3, 5), (19, 5)]);
    assert_eq!(r.findings.len(), 2);
}

#[test]
fn dispatch_fixture_exact_spans() {
    let src = include_str!("../fixtures/dispatch.rs");
    let r = analyze("crates/qsim/src/dispatch_fixture.rs", src);
    // Only the unguarded qualified call fires. The `wide()`-guarded
    // call, the declaration itself, and the same-named safe twin at
    // file scope (different module) are all exempt.
    assert_eq!(spans(&r, "target-feature-dispatch"), vec![(24, 19)]);
    assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
}

#[test]
fn determinism_fixture_exact_lines() {
    let src = include_str!("../fixtures/determinism.rs");
    let r = analyze("crates/runtime/src/det_fixture.rs", src);
    // One finding per offending token: `HashMap` in the use, bare
    // `SystemTime` twice, `Instant::now`, two `HashMap` mentions on the
    // declaration line, and the free `thread::spawn`. The bare
    // `Instant` import (no `::now`) is not flagged.
    let lines: Vec<u32> = spans(&r, "determinism").iter().map(|&(l, _)| l).collect();
    assert_eq!(lines, vec![3, 4, 7, 8, 8, 10, 11]);
    assert_eq!(r.findings.len(), 7);
    // The same file in a non-deterministic crate is out of scope.
    let r = analyze("crates/serve/src/det_fixture.rs", src);
    assert!(spans(&r, "determinism").is_empty());
}

#[test]
fn panic_serve_fixture_exact_spans() {
    let src = include_str!("../fixtures/panic_serve.rs");
    let r = analyze("crates/serve/src/panic_fixture.rs", src);
    // `.unwrap()`, `.expect()`, and `panic!` fire; `unwrap_or` and the
    // cfg(test) unwrap do not.
    assert_eq!(spans(&r, "no-panic-serve"), vec![(4, 15), (5, 15), (7, 9)]);
    assert_eq!(r.findings.len(), 3);
    // The loadgen binary tree and other crates are out of scope.
    for path in [
        "crates/serve/src/bin/panic_fixture.rs",
        "crates/qsim/src/panic_fixture.rs",
    ] {
        let r = analyze(path, src);
        assert!(
            spans(&r, "no-panic-serve").is_empty(),
            "no-panic-serve fired out of scope at {path}"
        );
    }
}

#[test]
fn suppression_fixture_pragma_honored_and_policed() {
    let src = include_str!("../fixtures/suppressed.rs");
    let r = analyze("crates/runtime/src/suppressed_fixture.rs", src);
    // The justified pragma suppresses exactly the `Instant::now` it
    // anchors to (first code line below the comment run).
    assert_eq!(r.suppressed, 1);
    // The pragma with no written justification is itself a finding, and
    // does NOT suppress the violation on the fn's body line (it anchors
    // to the fn signature, not the body).
    assert_eq!(spans(&r, "bad-pragma"), vec![(9, 1)]);
    assert_eq!(spans(&r, "determinism"), vec![(11, 16)]);
    // The pragma that matches nothing is reported as stale.
    assert_eq!(spans(&r, "unused-suppression"), vec![(14, 1)]);
    assert_eq!(r.findings.len(), 3);
}

#[test]
fn clean_fixture_zero_findings() {
    let src = include_str!("../fixtures/clean.rs");
    // Run it under every scope a rule keys off: still zero findings.
    for path in [
        "crates/qsim/src/clean_fixture.rs",
        "crates/runtime/src/clean_fixture.rs",
        "crates/serve/src/clean_fixture.rs",
        "crates/harness/src/clean_fixture.rs",
    ] {
        let r = analyze(path, src);
        assert!(
            r.findings.is_empty(),
            "clean fixture flagged at {path}: {:#?}",
            r.findings
        );
        assert_eq!(r.suppressed, 0);
        assert_eq!(r.files, 1);
    }
}
