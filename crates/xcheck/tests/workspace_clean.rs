//! The repository's own acceptance gate, as a test: sweeping the real
//! workspace must produce zero findings — every violation is either
//! fixed or carries a justified suppression pragma. This is the same
//! check CI runs via `cargo run -p xcheck -- --deny-all`.

#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xcheck sits two levels below the workspace root");
    let report = xcheck::analyze_workspace(root).expect("walk workspace");
    assert!(
        report.files > 50,
        "walker found only {} files — wrong root?",
        report.files
    );
    assert!(
        report.findings.is_empty(),
        "workspace must be xcheck-clean:\n{}",
        xcheck::report::human(&report)
    );
}
