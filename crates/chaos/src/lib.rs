//! # qmarl-chaos — seeded, deterministic fault injection
//!
//! NISQ-era distributed offloading treats failure as the norm, so this
//! workspace treats failure as a first-class, testable axis: a
//! [`FaultPlan`] describes *which* faults to inject at *what* rates, and
//! every injection decision is a pure function of
//! `(plan seed, fault site, site-local key)` — no shared RNG state, no
//! draw-order dependence. Two consequences fall out of that purity:
//!
//! 1. **Worker-count invariance.** A sweep that kills 5% of its cells
//!    kills *the same cells at the same epochs* whether it runs on 1
//!    worker or 16, because the decision is keyed by the cell's identity
//!    (label + attempt), not by which thread happened to draw next.
//! 2. **Inertness when absent.** Injection sites take
//!    `Option<FaultPlan>`; the `None` branch is a single pointer test,
//!    so a fault-free server or sweep pays nothing measurable.
//!
//! The crate is std-only and sits below `serve` and `harness` in the
//! dependency graph; both thread the same plan type through their
//! request/sweep paths. Plans are string-constructible like execution
//! backends: `"faults:drop=0.01:stall_ms=50:torn=0.005:seed=9"`.
//!
//! Alongside the plan live the recovery primitives the injected faults
//! exercise: [`RetryPolicy`] (capped exponential backoff with caller-
//! supplied jitter) and [`InjectedKill`] (the typed panic payload a
//! chaos-killed sweep cell unwinds with, so panic isolation can tell an
//! injected kill from a genuine bug).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Error type for malformed fault-plan strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosError(pub String);

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for ChaosError {}

/// Injection-site identifiers. Each seam that consults the plan passes
/// its own site constant, so decisions at different seams are
/// statistically independent even under identical keys.
pub mod site {
    /// Server drops the connection after reading a request frame.
    pub const CONN_DROP: u64 = 1;
    /// Server writes a truncated (torn) response frame, then closes.
    pub const CONN_TORN: u64 = 2;
    /// Server stalls before reading the next request frame.
    pub const CONN_STALL: u64 = 3;
    /// Batcher sleeps before executing a tick (slow policy tick).
    pub const TICK_SLOW: u64 = 4;
    /// A sweep cell is killed (panics) partway through training.
    pub const CELL_KILL: u64 = 5;
    /// Which epoch a killed cell dies after (second independent roll).
    pub const CELL_KILL_EPOCH: u64 = 6;
    /// A checkpoint write is torn (truncated mid-file).
    pub const CKPT_TORN: u64 = 7;
    /// Jitter stream for cell retry backoff.
    pub const RETRY_JITTER: u64 = 8;
}

/// SplitMix64 finalizer: the avalanche core of every decision hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes: stable string → key hashing for cell labels.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A seeded, deterministic fault-injection plan.
///
/// All rates are probabilities in `[0, 1]`; a rate of zero disables that
/// fault class entirely. The plan is plain `Copy` data — share it by
/// value, not behind locks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed: every decision hashes this with the site and key.
    pub seed: u64,
    /// P(server drops the connection after reading a request).
    pub drop: f64,
    /// P(server tears a response frame: partial write, then close).
    pub torn: f64,
    /// P(server stalls [`FaultPlan::stall_ms`] before a read).
    pub stall: f64,
    /// Stall / slow-tick duration in milliseconds.
    pub stall_ms: u64,
    /// P(the batcher sleeps [`FaultPlan::stall_ms`] before a tick).
    pub slow: f64,
    /// P(a sweep cell is killed — panics — during one attempt).
    pub kill: f64,
}

impl Default for FaultPlan {
    /// All rates zero, seed zero: a configured-but-inert plan.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            torn: 0.0,
            stall: 0.0,
            stall_ms: 10,
            slow: 0.0,
            kill: 0.0,
        }
    }
}

impl FaultPlan {
    /// The deterministic uniform draw in `[0, 1)` for `(site, key)`.
    ///
    /// Pure in `(self.seed, site, key)`: the same coordinates always
    /// yield the same value, on any thread, in any order.
    pub fn roll(&self, site: u64, key: u64) -> f64 {
        let h = splitmix(splitmix(splitmix(self.seed) ^ site) ^ key);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether a fault with probability `rate` fires at `(site, key)`.
    pub fn fires(&self, rate: f64, site: u64, key: u64) -> bool {
        rate > 0.0 && self.roll(site, key) < rate
    }

    /// Folds two coordinates (e.g. connection id + frame index) into one
    /// decision key without collisions across realistic ranges.
    pub fn key2(a: u64, b: u64) -> u64 {
        splitmix(a).wrapping_add(b)
    }

    /// The stall duration as a [`Duration`].
    pub fn stall_duration(&self) -> Duration {
        Duration::from_millis(self.stall_ms)
    }

    /// Validates every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError`] naming the first rate outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ChaosError> {
        for (name, rate) in [
            ("drop", self.drop),
            ("torn", self.torn),
            ("stall", self.stall),
            ("slow", self.slow),
            ("kill", self.kill),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(ChaosError(format!(
                    "rate {name}={rate} is not a probability in [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = ChaosError;

    /// Parses the compact plan syntax, mirroring execution backends:
    /// `faults:drop=0.01:stall_ms=50:torn=0.005:seed=9`. The leading
    /// `faults` tag is required; every segment after it is `key=value`
    /// with keys `drop`, `torn`, `stall`, `stall_ms`, `slow`, `kill`,
    /// `seed`. Duplicate keys are rejected (last-winning would silently
    /// discard the earlier value).
    fn from_str(spec: &str) -> Result<Self, ChaosError> {
        let bad = |msg: String| ChaosError(msg);
        let mut parts = spec.split(':');
        let tag = parts.next().unwrap_or_default();
        if tag != "faults" {
            return Err(bad(format!(
                "fault plan must start with the \"faults\" tag, got {tag:?}"
            )));
        }
        let mut plan = FaultPlan::default();
        let mut seen: Vec<&str> = Vec::new();
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad(format!("fault plan segment {part:?} is not key=value")))?;
            if seen.contains(&key) {
                return Err(bad(format!("fault plan key {key:?} given more than once")));
            }
            let rate = |value: &str| -> Result<f64, ChaosError> {
                value
                    .parse::<f64>()
                    .map_err(|_| bad(format!("fault plan {key} {value:?} is not a number")))
            };
            match key {
                "drop" => plan.drop = rate(value)?,
                "torn" => plan.torn = rate(value)?,
                "stall" => plan.stall = rate(value)?,
                "slow" => plan.slow = rate(value)?,
                "kill" => plan.kill = rate(value)?,
                "stall_ms" => {
                    plan.stall_ms = value
                        .parse()
                        .map_err(|_| bad(format!("fault plan stall_ms {value:?} is not an integer")))?;
                }
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| bad(format!("fault plan seed {value:?} is not an integer")))?;
                }
                other => {
                    return Err(bad(format!(
                        "unknown fault plan key {other:?} (expected drop/torn/stall/stall_ms/slow/kill/seed)"
                    )))
                }
            }
            seen.push(key);
        }
        plan.validate()?;
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    /// Renders the plan in the parseable syntax (non-default keys only,
    /// seed always).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "faults")?;
        for (name, rate) in [
            ("drop", self.drop),
            ("torn", self.torn),
            ("stall", self.stall),
            ("slow", self.slow),
            ("kill", self.kill),
        ] {
            if rate > 0.0 {
                write!(f, ":{name}={rate}")?;
            }
        }
        if self.stall_ms != FaultPlan::default().stall_ms {
            write!(f, ":stall_ms={}", self.stall_ms)?;
        }
        write!(f, ":seed={}", self.seed)
    }
}

/// Capped exponential backoff for retrying transient failures.
///
/// Attempt `a` waits `min(cap, base · 2^a)`, scaled by a caller-supplied
/// jitter draw in `[0, 1)` to `[½·d, d)` (decorrelated "equal jitter").
/// The jitter source stays with the caller — the serve client draws from
/// its shim RNG, the sweep engine from the fault plan — so the policy
/// itself is pure data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = this + 1).
    pub max_retries: u32,
    /// First retry's base delay.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based), with
    /// `jitter` a uniform draw in `[0, 1)`.
    pub fn delay(&self, attempt: u32, jitter: f64) -> Duration {
        let exp = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt.min(20)))
            .min(self.cap);
        let half = exp / 2;
        half + Duration::from_nanos((half.as_nanos() as f64 * jitter.clamp(0.0, 1.0)) as u64)
    }
}

/// The typed payload a chaos-killed sweep cell panics with.
///
/// Panic isolation downcasts unwind payloads to this type to tell an
/// *injected* kill (expected, retryable, silent) from a genuine panic
/// (a bug: reported loudly as `CellError::Panicked`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedKill {
    /// Label of the killed cell.
    pub cell: String,
    /// Epochs completed when the kill fired.
    pub epoch: usize,
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" report for [`InjectedKill`] payloads and delegates
/// everything else to the previous hook. Chaos sweeps call this so a
/// 5%-kill run doesn't spray hundreds of expected backtraces into logs
/// while genuine panics still report normally.
pub fn silence_injected_kills() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedKill>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_render_and_round_trip() {
        let plan: FaultPlan = "faults:drop=0.01:stall_ms=50:torn=0.005:seed=9"
            .parse()
            .expect("plan");
        assert_eq!(plan.drop, 0.01);
        assert_eq!(plan.torn, 0.005);
        assert_eq!(plan.stall_ms, 50);
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.stall, 0.0);
        let rendered: FaultPlan = plan.to_string().parse().expect("round trip");
        assert_eq!(rendered, plan);
        // A bare tag is a valid (inert) plan.
        let inert: FaultPlan = "faults".parse().expect("bare");
        assert_eq!(inert, FaultPlan::default());
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "drop=0.1",                 // missing tag
            "backend:drop=0.1",         // wrong tag
            "faults:drop",              // not key=value
            "faults:drop=x",            // not a number
            "faults:drop=1.5",          // not a probability
            "faults:drop=-0.1",         // negative
            "faults:kill=NaN",          // NaN
            "faults:drop=0.1:drop=0.2", // duplicate key
            "faults:warp=0.1",          // unknown key
            "faults:stall_ms=1.5",      // non-integer duration
            "faults:seed=abc",          // non-integer seed
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rolls_are_pure_site_independent_and_uniform() {
        let plan: FaultPlan = "faults:seed=42".parse().unwrap();
        // Pure: same coordinates, same value — call order irrelevant.
        assert_eq!(plan.roll(site::CONN_DROP, 7), plan.roll(site::CONN_DROP, 7));
        // Site and key both matter.
        assert_ne!(plan.roll(site::CONN_DROP, 7), plan.roll(site::CONN_TORN, 7));
        assert_ne!(plan.roll(site::CONN_DROP, 7), plan.roll(site::CONN_DROP, 8));
        // Different seeds give different streams.
        let other: FaultPlan = "faults:seed=43".parse().unwrap();
        assert_ne!(
            plan.roll(site::CONN_DROP, 7),
            other.roll(site::CONN_DROP, 7)
        );
        // Empirically uniform: mean of many rolls near 0.5, all in [0,1).
        let n = 10_000;
        let mut sum = 0.0;
        for k in 0..n {
            let r = plan.roll(site::CELL_KILL, k);
            assert!((0.0..1.0).contains(&r));
            sum += r;
        }
        assert!(
            (sum / n as f64 - 0.5).abs() < 0.02,
            "mean {}",
            sum / n as f64
        );
    }

    #[test]
    fn fires_respects_rates_exactly_at_the_edges() {
        let plan: FaultPlan = "faults:seed=1".parse().unwrap();
        for k in 0..100 {
            assert!(!plan.fires(0.0, site::CONN_DROP, k), "rate 0 never fires");
            assert!(plan.fires(1.0, site::CONN_DROP, k), "rate 1 always fires");
        }
        // A 10% rate fires roughly 10% of the time.
        let hits = (0..10_000)
            .filter(|&k| plan.fires(0.1, site::CONN_DROP, k))
            .count();
        assert!((800..1200).contains(&hits), "10% rate fired {hits}/10000");
    }

    #[test]
    fn backoff_grows_caps_and_jitters_within_bounds() {
        let p = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
        };
        // Uncapped growth is exponential in the zero-jitter lower half.
        assert_eq!(p.delay(0, 0.0), Duration::from_millis(1));
        assert_eq!(p.delay(1, 0.0), Duration::from_millis(2));
        assert_eq!(p.delay(2, 0.0), Duration::from_millis(4));
        // Capped: attempts past the cap all wait at most `cap`.
        assert_eq!(p.delay(10, 0.0), Duration::from_millis(25));
        assert!(p.delay(10, 0.999) < Duration::from_millis(50));
        // Jitter stays in [d/2, d).
        for a in 0..6 {
            for j in [0.0, 0.3, 0.999] {
                let d = p.delay(a, j);
                let full = p.base.saturating_mul(2u32.pow(a)).min(p.cap);
                assert!(d >= full / 2 && d < full + Duration::from_nanos(1));
            }
        }
        // Huge attempt numbers cannot overflow.
        let _ = p.delay(u32::MAX, 0.5);
    }

    #[test]
    fn fnv_is_stable_and_distinguishes_labels() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"cell/a/s0"), fnv1a(b"cell/a/s1"));
        assert_eq!(fnv1a(b"same"), fnv1a(b"same"));
    }

    #[test]
    fn injected_kills_are_typed_and_catchable() {
        silence_injected_kills();
        let payload = std::panic::catch_unwind(|| {
            std::panic::panic_any(InjectedKill {
                cell: "c".into(),
                epoch: 3,
            })
        })
        .expect_err("panicked");
        let kill = payload.downcast_ref::<InjectedKill>().expect("typed");
        assert_eq!(kill.epoch, 3);
    }
}
