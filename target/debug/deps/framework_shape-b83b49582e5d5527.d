/root/repo/target/debug/deps/framework_shape-b83b49582e5d5527.d: tests/framework_shape.rs Cargo.toml

/root/repo/target/debug/deps/libframework_shape-b83b49582e5d5527.rmeta: tests/framework_shape.rs Cargo.toml

tests/framework_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
