/root/repo/target/debug/deps/fig1_circuit-a5ebc6e6ee3976cc.d: crates/bench/src/bin/fig1_circuit.rs

/root/repo/target/debug/deps/fig1_circuit-a5ebc6e6ee3976cc: crates/bench/src/bin/fig1_circuit.rs

crates/bench/src/bin/fig1_circuit.rs:
