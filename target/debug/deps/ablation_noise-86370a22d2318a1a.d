/root/repo/target/debug/deps/ablation_noise-86370a22d2318a1a.d: crates/bench/src/bin/ablation_noise.rs Cargo.toml

/root/repo/target/debug/deps/libablation_noise-86370a22d2318a1a.rmeta: crates/bench/src/bin/ablation_noise.rs Cargo.toml

crates/bench/src/bin/ablation_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
