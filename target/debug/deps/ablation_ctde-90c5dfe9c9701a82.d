/root/repo/target/debug/deps/ablation_ctde-90c5dfe9c9701a82.d: crates/bench/src/bin/ablation_ctde.rs

/root/repo/target/debug/deps/ablation_ctde-90c5dfe9c9701a82: crates/bench/src/bin/ablation_ctde.rs

crates/bench/src/bin/ablation_ctde.rs:
