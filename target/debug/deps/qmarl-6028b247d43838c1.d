/root/repo/target/debug/deps/qmarl-6028b247d43838c1.d: src/lib.rs

/root/repo/target/debug/deps/qmarl-6028b247d43838c1: src/lib.rs

src/lib.rs:
