/root/repo/target/debug/deps/paper_tables-a9958a9ca103f65a.d: tests/paper_tables.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_tables-a9958a9ca103f65a.rmeta: tests/paper_tables.rs Cargo.toml

tests/paper_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
