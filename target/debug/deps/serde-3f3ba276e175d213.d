/root/repo/target/debug/deps/serde-3f3ba276e175d213.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-3f3ba276e175d213: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
