/root/repo/target/debug/deps/ablation_ctde-e251c3bb454a84d5.d: crates/bench/src/bin/ablation_ctde.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ctde-e251c3bb454a84d5.rmeta: crates/bench/src/bin/ablation_ctde.rs Cargo.toml

crates/bench/src/bin/ablation_ctde.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
