/root/repo/target/debug/deps/qmarl_bench-72496242b0f578d6.d: crates/bench/src/lib.rs crates/bench/src/plot.rs

/root/repo/target/debug/deps/libqmarl_bench-72496242b0f578d6.rlib: crates/bench/src/lib.rs crates/bench/src/plot.rs

/root/repo/target/debug/deps/libqmarl_bench-72496242b0f578d6.rmeta: crates/bench/src/lib.rs crates/bench/src/plot.rs

crates/bench/src/lib.rs:
crates/bench/src/plot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
