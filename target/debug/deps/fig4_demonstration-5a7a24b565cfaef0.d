/root/repo/target/debug/deps/fig4_demonstration-5a7a24b565cfaef0.d: crates/bench/src/bin/fig4_demonstration.rs

/root/repo/target/debug/deps/fig4_demonstration-5a7a24b565cfaef0: crates/bench/src/bin/fig4_demonstration.rs

crates/bench/src/bin/fig4_demonstration.rs:
