/root/repo/target/debug/deps/table1_mdp-99bb12acec7c2daf.d: crates/bench/src/bin/table1_mdp.rs

/root/repo/target/debug/deps/table1_mdp-99bb12acec7c2daf: crates/bench/src/bin/table1_mdp.rs

crates/bench/src/bin/table1_mdp.rs:
