/root/repo/target/debug/deps/qmarl_core-80017facc7b78ff8.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/independent.rs crates/core/src/policy.rs crates/core/src/replay.rs crates/core/src/trainer.rs crates/core/src/value.rs crates/core/src/viz.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl_core-80017facc7b78ff8.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/independent.rs crates/core/src/policy.rs crates/core/src/replay.rs crates/core/src/trainer.rs crates/core/src/value.rs crates/core/src/viz.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/independent.rs:
crates/core/src/policy.rs:
crates/core/src/replay.rs:
crates/core/src/trainer.rs:
crates/core/src/value.rs:
crates/core/src/viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
