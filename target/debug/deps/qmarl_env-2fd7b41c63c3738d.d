/root/repo/target/debug/deps/qmarl_env-2fd7b41c63c3738d.d: crates/env/src/lib.rs crates/env/src/action.rs crates/env/src/error.rs crates/env/src/metrics.rs crates/env/src/multi_agent.rs crates/env/src/queue.rs crates/env/src/random_walk.rs crates/env/src/single_hop.rs crates/env/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl_env-2fd7b41c63c3738d.rmeta: crates/env/src/lib.rs crates/env/src/action.rs crates/env/src/error.rs crates/env/src/metrics.rs crates/env/src/multi_agent.rs crates/env/src/queue.rs crates/env/src/random_walk.rs crates/env/src/single_hop.rs crates/env/src/traffic.rs Cargo.toml

crates/env/src/lib.rs:
crates/env/src/action.rs:
crates/env/src/error.rs:
crates/env/src/metrics.rs:
crates/env/src/multi_agent.rs:
crates/env/src/queue.rs:
crates/env/src/random_walk.rs:
crates/env/src/single_hop.rs:
crates/env/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
