/root/repo/target/debug/deps/ablation_qubit_scaling-0b0813c02ec33820.d: crates/bench/src/bin/ablation_qubit_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_qubit_scaling-0b0813c02ec33820.rmeta: crates/bench/src/bin/ablation_qubit_scaling.rs Cargo.toml

crates/bench/src/bin/ablation_qubit_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
