/root/repo/target/debug/deps/fig3_training_curves-11b0148f6d7fe199.d: crates/bench/src/bin/fig3_training_curves.rs

/root/repo/target/debug/deps/fig3_training_curves-11b0148f6d7fe199: crates/bench/src/bin/fig3_training_curves.rs

crates/bench/src/bin/fig3_training_curves.rs:
