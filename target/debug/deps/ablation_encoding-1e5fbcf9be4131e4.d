/root/repo/target/debug/deps/ablation_encoding-1e5fbcf9be4131e4.d: crates/bench/src/bin/ablation_encoding.rs

/root/repo/target/debug/deps/ablation_encoding-1e5fbcf9be4131e4: crates/bench/src/bin/ablation_encoding.rs

crates/bench/src/bin/ablation_encoding.rs:
