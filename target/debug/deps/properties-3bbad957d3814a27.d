/root/repo/target/debug/deps/properties-3bbad957d3814a27.d: crates/vqc/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3bbad957d3814a27.rmeta: crates/vqc/tests/properties.rs Cargo.toml

crates/vqc/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
