/root/repo/target/debug/deps/qmarl_env-6c201c7f4809c01e.d: crates/env/src/lib.rs crates/env/src/action.rs crates/env/src/error.rs crates/env/src/metrics.rs crates/env/src/multi_agent.rs crates/env/src/queue.rs crates/env/src/random_walk.rs crates/env/src/single_hop.rs crates/env/src/traffic.rs

/root/repo/target/debug/deps/libqmarl_env-6c201c7f4809c01e.rlib: crates/env/src/lib.rs crates/env/src/action.rs crates/env/src/error.rs crates/env/src/metrics.rs crates/env/src/multi_agent.rs crates/env/src/queue.rs crates/env/src/random_walk.rs crates/env/src/single_hop.rs crates/env/src/traffic.rs

/root/repo/target/debug/deps/libqmarl_env-6c201c7f4809c01e.rmeta: crates/env/src/lib.rs crates/env/src/action.rs crates/env/src/error.rs crates/env/src/metrics.rs crates/env/src/multi_agent.rs crates/env/src/queue.rs crates/env/src/random_walk.rs crates/env/src/single_hop.rs crates/env/src/traffic.rs

crates/env/src/lib.rs:
crates/env/src/action.rs:
crates/env/src/error.rs:
crates/env/src/metrics.rs:
crates/env/src/multi_agent.rs:
crates/env/src/queue.rs:
crates/env/src/random_walk.rs:
crates/env/src/single_hop.rs:
crates/env/src/traffic.rs:
