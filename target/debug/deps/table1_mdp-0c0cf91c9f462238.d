/root/repo/target/debug/deps/table1_mdp-0c0cf91c9f462238.d: crates/bench/src/bin/table1_mdp.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_mdp-0c0cf91c9f462238.rmeta: crates/bench/src/bin/table1_mdp.rs Cargo.toml

crates/bench/src/bin/table1_mdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
