/root/repo/target/debug/deps/qmarl_bench-43215df47c1b3ec6.d: crates/bench/src/lib.rs crates/bench/src/plot.rs

/root/repo/target/debug/deps/libqmarl_bench-43215df47c1b3ec6.rlib: crates/bench/src/lib.rs crates/bench/src/plot.rs

/root/repo/target/debug/deps/libqmarl_bench-43215df47c1b3ec6.rmeta: crates/bench/src/lib.rs crates/bench/src/plot.rs

crates/bench/src/lib.rs:
crates/bench/src/plot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
