/root/repo/target/debug/deps/properties-005e974f0e16028a.d: crates/env/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-005e974f0e16028a.rmeta: crates/env/tests/properties.rs Cargo.toml

crates/env/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
