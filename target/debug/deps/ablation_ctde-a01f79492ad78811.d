/root/repo/target/debug/deps/ablation_ctde-a01f79492ad78811.d: crates/bench/src/bin/ablation_ctde.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ctde-a01f79492ad78811.rmeta: crates/bench/src/bin/ablation_ctde.rs Cargo.toml

crates/bench/src/bin/ablation_ctde.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
