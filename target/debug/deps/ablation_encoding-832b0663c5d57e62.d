/root/repo/target/debug/deps/ablation_encoding-832b0663c5d57e62.d: crates/bench/src/bin/ablation_encoding.rs

/root/repo/target/debug/deps/ablation_encoding-832b0663c5d57e62: crates/bench/src/bin/ablation_encoding.rs

crates/bench/src/bin/ablation_encoding.rs:
