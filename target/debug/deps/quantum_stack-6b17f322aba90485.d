/root/repo/target/debug/deps/quantum_stack-6b17f322aba90485.d: tests/quantum_stack.rs

/root/repo/target/debug/deps/quantum_stack-6b17f322aba90485: tests/quantum_stack.rs

tests/quantum_stack.rs:
