/root/repo/target/debug/deps/qmarl-a14fb6a846759abf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl-a14fb6a846759abf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
