/root/repo/target/debug/deps/ablation_shots-cbe628c815bc6d08.d: crates/bench/src/bin/ablation_shots.rs

/root/repo/target/debug/deps/ablation_shots-cbe628c815bc6d08: crates/bench/src/bin/ablation_shots.rs

crates/bench/src/bin/ablation_shots.rs:
