/root/repo/target/debug/deps/checkpoints_and_shots-b4dbf6aac89316aa.d: tests/checkpoints_and_shots.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoints_and_shots-b4dbf6aac89316aa.rmeta: tests/checkpoints_and_shots.rs Cargo.toml

tests/checkpoints_and_shots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
