/root/repo/target/debug/deps/ablation_noise-f000694af4b380a7.d: crates/bench/src/bin/ablation_noise.rs

/root/repo/target/debug/deps/ablation_noise-f000694af4b380a7: crates/bench/src/bin/ablation_noise.rs

crates/bench/src/bin/ablation_noise.rs:
