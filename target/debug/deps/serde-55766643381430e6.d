/root/repo/target/debug/deps/serde-55766643381430e6.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-55766643381430e6.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-55766643381430e6.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
