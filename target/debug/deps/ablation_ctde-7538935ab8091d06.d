/root/repo/target/debug/deps/ablation_ctde-7538935ab8091d06.d: crates/bench/src/bin/ablation_ctde.rs

/root/repo/target/debug/deps/ablation_ctde-7538935ab8091d06: crates/bench/src/bin/ablation_ctde.rs

crates/bench/src/bin/ablation_ctde.rs:
