/root/repo/target/debug/deps/qmarl-c86bd5f37c8601b9.d: src/lib.rs

/root/repo/target/debug/deps/libqmarl-c86bd5f37c8601b9.rlib: src/lib.rs

/root/repo/target/debug/deps/libqmarl-c86bd5f37c8601b9.rmeta: src/lib.rs

src/lib.rs:
