/root/repo/target/debug/deps/properties-6742b412edf1ba38.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-6742b412edf1ba38: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
