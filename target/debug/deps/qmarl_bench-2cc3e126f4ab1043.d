/root/repo/target/debug/deps/qmarl_bench-2cc3e126f4ab1043.d: crates/bench/src/lib.rs crates/bench/src/plot.rs

/root/repo/target/debug/deps/qmarl_bench-2cc3e126f4ab1043: crates/bench/src/lib.rs crates/bench/src/plot.rs

crates/bench/src/lib.rs:
crates/bench/src/plot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
