/root/repo/target/debug/deps/ablation_qubit_scaling-5167fd70774bda4a.d: crates/bench/src/bin/ablation_qubit_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_qubit_scaling-5167fd70774bda4a.rmeta: crates/bench/src/bin/ablation_qubit_scaling.rs Cargo.toml

crates/bench/src/bin/ablation_qubit_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
