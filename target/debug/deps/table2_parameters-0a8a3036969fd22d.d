/root/repo/target/debug/deps/table2_parameters-0a8a3036969fd22d.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/debug/deps/table2_parameters-0a8a3036969fd22d: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
