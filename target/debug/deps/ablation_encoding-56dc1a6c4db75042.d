/root/repo/target/debug/deps/ablation_encoding-56dc1a6c4db75042.d: crates/bench/src/bin/ablation_encoding.rs Cargo.toml

/root/repo/target/debug/deps/libablation_encoding-56dc1a6c4db75042.rmeta: crates/bench/src/bin/ablation_encoding.rs Cargo.toml

crates/bench/src/bin/ablation_encoding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
