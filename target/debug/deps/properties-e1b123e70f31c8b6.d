/root/repo/target/debug/deps/properties-e1b123e70f31c8b6.d: crates/runtime/tests/properties.rs

/root/repo/target/debug/deps/properties-e1b123e70f31c8b6: crates/runtime/tests/properties.rs

crates/runtime/tests/properties.rs:
