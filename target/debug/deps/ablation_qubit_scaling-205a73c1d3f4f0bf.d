/root/repo/target/debug/deps/ablation_qubit_scaling-205a73c1d3f4f0bf.d: crates/bench/src/bin/ablation_qubit_scaling.rs

/root/repo/target/debug/deps/ablation_qubit_scaling-205a73c1d3f4f0bf: crates/bench/src/bin/ablation_qubit_scaling.rs

crates/bench/src/bin/ablation_qubit_scaling.rs:
