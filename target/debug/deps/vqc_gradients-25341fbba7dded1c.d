/root/repo/target/debug/deps/vqc_gradients-25341fbba7dded1c.d: crates/bench/benches/vqc_gradients.rs Cargo.toml

/root/repo/target/debug/deps/libvqc_gradients-25341fbba7dded1c.rmeta: crates/bench/benches/vqc_gradients.rs Cargo.toml

crates/bench/benches/vqc_gradients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
