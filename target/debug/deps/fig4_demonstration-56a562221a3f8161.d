/root/repo/target/debug/deps/fig4_demonstration-56a562221a3f8161.d: crates/bench/src/bin/fig4_demonstration.rs

/root/repo/target/debug/deps/fig4_demonstration-56a562221a3f8161: crates/bench/src/bin/fig4_demonstration.rs

crates/bench/src/bin/fig4_demonstration.rs:
