/root/repo/target/debug/deps/qmarl_neural-560d98a33f6df0fd.d: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs

/root/repo/target/debug/deps/qmarl_neural-560d98a33f6df0fd: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs

crates/neural/src/lib.rs:
crates/neural/src/layer.rs:
crates/neural/src/loss.rs:
crates/neural/src/matrix.rs:
crates/neural/src/mlp.rs:
crates/neural/src/optim.rs:
