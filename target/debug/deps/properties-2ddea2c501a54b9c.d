/root/repo/target/debug/deps/properties-2ddea2c501a54b9c.d: crates/neural/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2ddea2c501a54b9c.rmeta: crates/neural/tests/properties.rs Cargo.toml

crates/neural/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
