/root/repo/target/debug/deps/properties-3e2a25be8d6e87a1.d: crates/env/tests/properties.rs

/root/repo/target/debug/deps/properties-3e2a25be8d6e87a1: crates/env/tests/properties.rs

crates/env/tests/properties.rs:
