/root/repo/target/debug/deps/end_to_end_training-1cac557663819e8a.d: tests/end_to_end_training.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_training-1cac557663819e8a.rmeta: tests/end_to_end_training.rs Cargo.toml

tests/end_to_end_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
