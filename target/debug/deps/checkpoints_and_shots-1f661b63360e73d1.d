/root/repo/target/debug/deps/checkpoints_and_shots-1f661b63360e73d1.d: tests/checkpoints_and_shots.rs

/root/repo/target/debug/deps/checkpoints_and_shots-1f661b63360e73d1: tests/checkpoints_and_shots.rs

tests/checkpoints_and_shots.rs:
