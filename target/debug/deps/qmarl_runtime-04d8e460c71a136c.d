/root/repo/target/debug/deps/qmarl_runtime-04d8e460c71a136c.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

/root/repo/target/debug/deps/libqmarl_runtime-04d8e460c71a136c.rlib: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

/root/repo/target/debug/deps/libqmarl_runtime-04d8e460c71a136c.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/compile.rs:
crates/runtime/src/error.rs:
crates/runtime/src/exec.rs:
crates/runtime/src/qnn.rs:
crates/runtime/src/rollout.rs:
