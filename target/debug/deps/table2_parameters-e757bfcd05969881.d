/root/repo/target/debug/deps/table2_parameters-e757bfcd05969881.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/debug/deps/table2_parameters-e757bfcd05969881: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
