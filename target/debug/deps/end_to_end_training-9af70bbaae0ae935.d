/root/repo/target/debug/deps/end_to_end_training-9af70bbaae0ae935.d: tests/end_to_end_training.rs

/root/repo/target/debug/deps/end_to_end_training-9af70bbaae0ae935: tests/end_to_end_training.rs

tests/end_to_end_training.rs:
