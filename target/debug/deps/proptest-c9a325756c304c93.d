/root/repo/target/debug/deps/proptest-c9a325756c304c93.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-c9a325756c304c93: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
