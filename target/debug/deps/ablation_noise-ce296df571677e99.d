/root/repo/target/debug/deps/ablation_noise-ce296df571677e99.d: crates/bench/src/bin/ablation_noise.rs

/root/repo/target/debug/deps/ablation_noise-ce296df571677e99: crates/bench/src/bin/ablation_noise.rs

crates/bench/src/bin/ablation_noise.rs:
