/root/repo/target/debug/deps/properties-a515f5e27cb362da.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a515f5e27cb362da.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
