/root/repo/target/debug/deps/table1_mdp-2531d56f7477e135.d: crates/bench/src/bin/table1_mdp.rs

/root/repo/target/debug/deps/table1_mdp-2531d56f7477e135: crates/bench/src/bin/table1_mdp.rs

crates/bench/src/bin/table1_mdp.rs:
