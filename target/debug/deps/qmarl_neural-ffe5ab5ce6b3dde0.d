/root/repo/target/debug/deps/qmarl_neural-ffe5ab5ce6b3dde0.d: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs

/root/repo/target/debug/deps/libqmarl_neural-ffe5ab5ce6b3dde0.rlib: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs

/root/repo/target/debug/deps/libqmarl_neural-ffe5ab5ce6b3dde0.rmeta: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs

crates/neural/src/lib.rs:
crates/neural/src/layer.rs:
crates/neural/src/loss.rs:
crates/neural/src/matrix.rs:
crates/neural/src/mlp.rs:
crates/neural/src/optim.rs:
