/root/repo/target/debug/deps/fig3_training_curves-6f0dd1600ccbcc99.d: crates/bench/src/bin/fig3_training_curves.rs

/root/repo/target/debug/deps/fig3_training_curves-6f0dd1600ccbcc99: crates/bench/src/bin/fig3_training_curves.rs

crates/bench/src/bin/fig3_training_curves.rs:
