/root/repo/target/debug/deps/properties-3af9b2d1314347ce.d: crates/qsim/tests/properties.rs

/root/repo/target/debug/deps/properties-3af9b2d1314347ce: crates/qsim/tests/properties.rs

crates/qsim/tests/properties.rs:
