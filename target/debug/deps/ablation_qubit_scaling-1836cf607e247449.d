/root/repo/target/debug/deps/ablation_qubit_scaling-1836cf607e247449.d: crates/bench/src/bin/ablation_qubit_scaling.rs

/root/repo/target/debug/deps/ablation_qubit_scaling-1836cf607e247449: crates/bench/src/bin/ablation_qubit_scaling.rs

crates/bench/src/bin/ablation_qubit_scaling.rs:
