/root/repo/target/debug/deps/ablation_shots-1e4d2b713bef5052.d: crates/bench/src/bin/ablation_shots.rs

/root/repo/target/debug/deps/ablation_shots-1e4d2b713bef5052: crates/bench/src/bin/ablation_shots.rs

crates/bench/src/bin/ablation_shots.rs:
