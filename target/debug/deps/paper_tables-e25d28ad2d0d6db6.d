/root/repo/target/debug/deps/paper_tables-e25d28ad2d0d6db6.d: tests/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-e25d28ad2d0d6db6: tests/paper_tables.rs

tests/paper_tables.rs:
