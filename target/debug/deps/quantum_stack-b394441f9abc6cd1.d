/root/repo/target/debug/deps/quantum_stack-b394441f9abc6cd1.d: tests/quantum_stack.rs Cargo.toml

/root/repo/target/debug/deps/libquantum_stack-b394441f9abc6cd1.rmeta: tests/quantum_stack.rs Cargo.toml

tests/quantum_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
