/root/repo/target/debug/deps/qmarl_core-0cc5e1b53373735b.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/independent.rs crates/core/src/policy.rs crates/core/src/replay.rs crates/core/src/trainer.rs crates/core/src/value.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/libqmarl_core-0cc5e1b53373735b.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/independent.rs crates/core/src/policy.rs crates/core/src/replay.rs crates/core/src/trainer.rs crates/core/src/value.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/libqmarl_core-0cc5e1b53373735b.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/independent.rs crates/core/src/policy.rs crates/core/src/replay.rs crates/core/src/trainer.rs crates/core/src/value.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/independent.rs:
crates/core/src/policy.rs:
crates/core/src/replay.rs:
crates/core/src/trainer.rs:
crates/core/src/value.rs:
crates/core/src/viz.rs:
