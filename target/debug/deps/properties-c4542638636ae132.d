/root/repo/target/debug/deps/properties-c4542638636ae132.d: crates/neural/tests/properties.rs

/root/repo/target/debug/deps/properties-c4542638636ae132: crates/neural/tests/properties.rs

crates/neural/tests/properties.rs:
