/root/repo/target/debug/deps/fig3_training_curves-acc855f0e2bad92e.d: crates/bench/src/bin/fig3_training_curves.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_training_curves-acc855f0e2bad92e.rmeta: crates/bench/src/bin/fig3_training_curves.rs Cargo.toml

crates/bench/src/bin/fig3_training_curves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
