/root/repo/target/debug/deps/qmarl_neural-e7c30b330e99e023.d: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl_neural-e7c30b330e99e023.rmeta: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs Cargo.toml

crates/neural/src/lib.rs:
crates/neural/src/layer.rs:
crates/neural/src/loss.rs:
crates/neural/src/matrix.rs:
crates/neural/src/mlp.rs:
crates/neural/src/optim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
