/root/repo/target/debug/deps/training_epoch-d5fa7daceb38e949.d: crates/bench/benches/training_epoch.rs Cargo.toml

/root/repo/target/debug/deps/libtraining_epoch-d5fa7daceb38e949.rmeta: crates/bench/benches/training_epoch.rs Cargo.toml

crates/bench/benches/training_epoch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
