/root/repo/target/debug/deps/runtime_batch-19ac553594132a14.d: crates/bench/benches/runtime_batch.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_batch-19ac553594132a14.rmeta: crates/bench/benches/runtime_batch.rs Cargo.toml

crates/bench/benches/runtime_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
