/root/repo/target/debug/deps/properties-b5de45853c46c296.d: crates/runtime/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b5de45853c46c296.rmeta: crates/runtime/tests/properties.rs Cargo.toml

crates/runtime/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
