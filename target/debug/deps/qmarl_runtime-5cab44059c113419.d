/root/repo/target/debug/deps/qmarl_runtime-5cab44059c113419.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

/root/repo/target/debug/deps/libqmarl_runtime-5cab44059c113419.rlib: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

/root/repo/target/debug/deps/libqmarl_runtime-5cab44059c113419.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/compile.rs:
crates/runtime/src/error.rs:
crates/runtime/src/exec.rs:
crates/runtime/src/qnn.rs:
crates/runtime/src/rollout.rs:
