/root/repo/target/debug/deps/table1_mdp-d9c46f2cb97e7e0c.d: crates/bench/src/bin/table1_mdp.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_mdp-d9c46f2cb97e7e0c.rmeta: crates/bench/src/bin/table1_mdp.rs Cargo.toml

crates/bench/src/bin/table1_mdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
