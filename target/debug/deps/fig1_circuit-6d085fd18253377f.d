/root/repo/target/debug/deps/fig1_circuit-6d085fd18253377f.d: crates/bench/src/bin/fig1_circuit.rs

/root/repo/target/debug/deps/fig1_circuit-6d085fd18253377f: crates/bench/src/bin/fig1_circuit.rs

crates/bench/src/bin/fig1_circuit.rs:
