/root/repo/target/debug/deps/qmarl_bench-4777df3f350721a3.d: crates/bench/src/lib.rs crates/bench/src/plot.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl_bench-4777df3f350721a3.rmeta: crates/bench/src/lib.rs crates/bench/src/plot.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/plot.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
