/root/repo/target/debug/deps/fig4_demonstration-e5fe9e91bd99f36b.d: crates/bench/src/bin/fig4_demonstration.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_demonstration-e5fe9e91bd99f36b.rmeta: crates/bench/src/bin/fig4_demonstration.rs Cargo.toml

crates/bench/src/bin/fig4_demonstration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
