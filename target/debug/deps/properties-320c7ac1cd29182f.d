/root/repo/target/debug/deps/properties-320c7ac1cd29182f.d: crates/vqc/tests/properties.rs

/root/repo/target/debug/deps/properties-320c7ac1cd29182f: crates/vqc/tests/properties.rs

crates/vqc/tests/properties.rs:
