/root/repo/target/debug/deps/fig3_training_curves-267802507fdc1c45.d: crates/bench/src/bin/fig3_training_curves.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_training_curves-267802507fdc1c45.rmeta: crates/bench/src/bin/fig3_training_curves.rs Cargo.toml

crates/bench/src/bin/fig3_training_curves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
