/root/repo/target/debug/deps/rand-f4cdd52708683e86.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-f4cdd52708683e86: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
