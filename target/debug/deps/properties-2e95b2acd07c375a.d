/root/repo/target/debug/deps/properties-2e95b2acd07c375a.d: crates/qsim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2e95b2acd07c375a.rmeta: crates/qsim/tests/properties.rs Cargo.toml

crates/qsim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
