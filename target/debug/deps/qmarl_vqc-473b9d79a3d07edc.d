/root/repo/target/debug/deps/qmarl_vqc-473b9d79a3d07edc.d: crates/vqc/src/lib.rs crates/vqc/src/ansatz.rs crates/vqc/src/diagram.rs crates/vqc/src/encoder.rs crates/vqc/src/error.rs crates/vqc/src/exec.rs crates/vqc/src/grad.rs crates/vqc/src/ir.rs crates/vqc/src/observable.rs crates/vqc/src/qnn.rs crates/vqc/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl_vqc-473b9d79a3d07edc.rmeta: crates/vqc/src/lib.rs crates/vqc/src/ansatz.rs crates/vqc/src/diagram.rs crates/vqc/src/encoder.rs crates/vqc/src/error.rs crates/vqc/src/exec.rs crates/vqc/src/grad.rs crates/vqc/src/ir.rs crates/vqc/src/observable.rs crates/vqc/src/qnn.rs crates/vqc/src/stats.rs Cargo.toml

crates/vqc/src/lib.rs:
crates/vqc/src/ansatz.rs:
crates/vqc/src/diagram.rs:
crates/vqc/src/encoder.rs:
crates/vqc/src/error.rs:
crates/vqc/src/exec.rs:
crates/vqc/src/grad.rs:
crates/vqc/src/ir.rs:
crates/vqc/src/observable.rs:
crates/vqc/src/qnn.rs:
crates/vqc/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
