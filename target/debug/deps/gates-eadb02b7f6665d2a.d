/root/repo/target/debug/deps/gates-eadb02b7f6665d2a.d: crates/bench/benches/gates.rs Cargo.toml

/root/repo/target/debug/deps/libgates-eadb02b7f6665d2a.rmeta: crates/bench/benches/gates.rs Cargo.toml

crates/bench/benches/gates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
