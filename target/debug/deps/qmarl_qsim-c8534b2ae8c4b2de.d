/root/repo/target/debug/deps/qmarl_qsim-c8534b2ae8c4b2de.d: crates/qsim/src/lib.rs crates/qsim/src/apply.rs crates/qsim/src/bloch.rs crates/qsim/src/complex.rs crates/qsim/src/density.rs crates/qsim/src/error.rs crates/qsim/src/gate.rs crates/qsim/src/measure.rs crates/qsim/src/noise.rs crates/qsim/src/par.rs crates/qsim/src/shots.rs crates/qsim/src/state.rs

/root/repo/target/debug/deps/qmarl_qsim-c8534b2ae8c4b2de: crates/qsim/src/lib.rs crates/qsim/src/apply.rs crates/qsim/src/bloch.rs crates/qsim/src/complex.rs crates/qsim/src/density.rs crates/qsim/src/error.rs crates/qsim/src/gate.rs crates/qsim/src/measure.rs crates/qsim/src/noise.rs crates/qsim/src/par.rs crates/qsim/src/shots.rs crates/qsim/src/state.rs

crates/qsim/src/lib.rs:
crates/qsim/src/apply.rs:
crates/qsim/src/bloch.rs:
crates/qsim/src/complex.rs:
crates/qsim/src/density.rs:
crates/qsim/src/error.rs:
crates/qsim/src/gate.rs:
crates/qsim/src/measure.rs:
crates/qsim/src/noise.rs:
crates/qsim/src/par.rs:
crates/qsim/src/shots.rs:
crates/qsim/src/state.rs:
