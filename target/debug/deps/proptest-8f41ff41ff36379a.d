/root/repo/target/debug/deps/proptest-8f41ff41ff36379a.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8f41ff41ff36379a.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8f41ff41ff36379a.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
