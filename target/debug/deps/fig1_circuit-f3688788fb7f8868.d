/root/repo/target/debug/deps/fig1_circuit-f3688788fb7f8868.d: crates/bench/src/bin/fig1_circuit.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_circuit-f3688788fb7f8868.rmeta: crates/bench/src/bin/fig1_circuit.rs Cargo.toml

crates/bench/src/bin/fig1_circuit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
