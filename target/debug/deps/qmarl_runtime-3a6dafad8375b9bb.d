/root/repo/target/debug/deps/qmarl_runtime-3a6dafad8375b9bb.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl_runtime-3a6dafad8375b9bb.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/compile.rs:
crates/runtime/src/error.rs:
crates/runtime/src/exec.rs:
crates/runtime/src/qnn.rs:
crates/runtime/src/rollout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
