/root/repo/target/debug/deps/rand-6dbf6177089092c2.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6dbf6177089092c2.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6dbf6177089092c2.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
