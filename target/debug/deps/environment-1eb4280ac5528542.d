/root/repo/target/debug/deps/environment-1eb4280ac5528542.d: crates/bench/benches/environment.rs Cargo.toml

/root/repo/target/debug/deps/libenvironment-1eb4280ac5528542.rmeta: crates/bench/benches/environment.rs Cargo.toml

crates/bench/benches/environment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
