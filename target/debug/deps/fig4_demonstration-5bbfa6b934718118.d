/root/repo/target/debug/deps/fig4_demonstration-5bbfa6b934718118.d: crates/bench/src/bin/fig4_demonstration.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_demonstration-5bbfa6b934718118.rmeta: crates/bench/src/bin/fig4_demonstration.rs Cargo.toml

crates/bench/src/bin/fig4_demonstration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
