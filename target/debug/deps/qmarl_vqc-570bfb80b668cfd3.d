/root/repo/target/debug/deps/qmarl_vqc-570bfb80b668cfd3.d: crates/vqc/src/lib.rs crates/vqc/src/ansatz.rs crates/vqc/src/diagram.rs crates/vqc/src/encoder.rs crates/vqc/src/error.rs crates/vqc/src/exec.rs crates/vqc/src/grad.rs crates/vqc/src/ir.rs crates/vqc/src/observable.rs crates/vqc/src/qnn.rs crates/vqc/src/stats.rs

/root/repo/target/debug/deps/libqmarl_vqc-570bfb80b668cfd3.rlib: crates/vqc/src/lib.rs crates/vqc/src/ansatz.rs crates/vqc/src/diagram.rs crates/vqc/src/encoder.rs crates/vqc/src/error.rs crates/vqc/src/exec.rs crates/vqc/src/grad.rs crates/vqc/src/ir.rs crates/vqc/src/observable.rs crates/vqc/src/qnn.rs crates/vqc/src/stats.rs

/root/repo/target/debug/deps/libqmarl_vqc-570bfb80b668cfd3.rmeta: crates/vqc/src/lib.rs crates/vqc/src/ansatz.rs crates/vqc/src/diagram.rs crates/vqc/src/encoder.rs crates/vqc/src/error.rs crates/vqc/src/exec.rs crates/vqc/src/grad.rs crates/vqc/src/ir.rs crates/vqc/src/observable.rs crates/vqc/src/qnn.rs crates/vqc/src/stats.rs

crates/vqc/src/lib.rs:
crates/vqc/src/ansatz.rs:
crates/vqc/src/diagram.rs:
crates/vqc/src/encoder.rs:
crates/vqc/src/error.rs:
crates/vqc/src/exec.rs:
crates/vqc/src/grad.rs:
crates/vqc/src/ir.rs:
crates/vqc/src/observable.rs:
crates/vqc/src/qnn.rs:
crates/vqc/src/stats.rs:
