/root/repo/target/debug/deps/ablation_shots-158219df4ed5977a.d: crates/bench/src/bin/ablation_shots.rs Cargo.toml

/root/repo/target/debug/deps/libablation_shots-158219df4ed5977a.rmeta: crates/bench/src/bin/ablation_shots.rs Cargo.toml

crates/bench/src/bin/ablation_shots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
