/root/repo/target/debug/deps/properties-54a862c99aabd6fd.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-54a862c99aabd6fd: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
