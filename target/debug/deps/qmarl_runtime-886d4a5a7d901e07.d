/root/repo/target/debug/deps/qmarl_runtime-886d4a5a7d901e07.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

/root/repo/target/debug/deps/qmarl_runtime-886d4a5a7d901e07: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/compile.rs:
crates/runtime/src/error.rs:
crates/runtime/src/exec.rs:
crates/runtime/src/qnn.rs:
crates/runtime/src/rollout.rs:
