/root/repo/target/debug/deps/qmarl-a55ad7088e684d75.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl-a55ad7088e684d75.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
