/root/repo/target/debug/deps/framework_shape-92939875d2387a39.d: tests/framework_shape.rs

/root/repo/target/debug/deps/framework_shape-92939875d2387a39: tests/framework_shape.rs

tests/framework_shape.rs:
