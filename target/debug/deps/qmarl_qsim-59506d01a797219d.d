/root/repo/target/debug/deps/qmarl_qsim-59506d01a797219d.d: crates/qsim/src/lib.rs crates/qsim/src/apply.rs crates/qsim/src/bloch.rs crates/qsim/src/complex.rs crates/qsim/src/density.rs crates/qsim/src/error.rs crates/qsim/src/gate.rs crates/qsim/src/measure.rs crates/qsim/src/noise.rs crates/qsim/src/par.rs crates/qsim/src/shots.rs crates/qsim/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libqmarl_qsim-59506d01a797219d.rmeta: crates/qsim/src/lib.rs crates/qsim/src/apply.rs crates/qsim/src/bloch.rs crates/qsim/src/complex.rs crates/qsim/src/density.rs crates/qsim/src/error.rs crates/qsim/src/gate.rs crates/qsim/src/measure.rs crates/qsim/src/noise.rs crates/qsim/src/par.rs crates/qsim/src/shots.rs crates/qsim/src/state.rs Cargo.toml

crates/qsim/src/lib.rs:
crates/qsim/src/apply.rs:
crates/qsim/src/bloch.rs:
crates/qsim/src/complex.rs:
crates/qsim/src/density.rs:
crates/qsim/src/error.rs:
crates/qsim/src/gate.rs:
crates/qsim/src/measure.rs:
crates/qsim/src/noise.rs:
crates/qsim/src/par.rs:
crates/qsim/src/shots.rs:
crates/qsim/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
