/root/repo/target/debug/deps/qmarl-c0abdd4e755e4e48.d: src/lib.rs

/root/repo/target/debug/deps/libqmarl-c0abdd4e755e4e48.rlib: src/lib.rs

/root/repo/target/debug/deps/libqmarl-c0abdd4e755e4e48.rmeta: src/lib.rs

src/lib.rs:
