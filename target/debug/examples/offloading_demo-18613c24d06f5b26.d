/root/repo/target/debug/examples/offloading_demo-18613c24d06f5b26.d: examples/offloading_demo.rs Cargo.toml

/root/repo/target/debug/examples/liboffloading_demo-18613c24d06f5b26.rmeta: examples/offloading_demo.rs Cargo.toml

examples/offloading_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
