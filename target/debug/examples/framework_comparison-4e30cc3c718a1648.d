/root/repo/target/debug/examples/framework_comparison-4e30cc3c718a1648.d: examples/framework_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libframework_comparison-4e30cc3c718a1648.rmeta: examples/framework_comparison.rs Cargo.toml

examples/framework_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
