/root/repo/target/debug/examples/framework_comparison-9fb4f773a1339c49.d: examples/framework_comparison.rs

/root/repo/target/debug/examples/framework_comparison-9fb4f773a1339c49: examples/framework_comparison.rs

examples/framework_comparison.rs:
