/root/repo/target/debug/examples/bell_and_circuits-d6b373c2060cc8aa.d: examples/bell_and_circuits.rs Cargo.toml

/root/repo/target/debug/examples/libbell_and_circuits-d6b373c2060cc8aa.rmeta: examples/bell_and_circuits.rs Cargo.toml

examples/bell_and_circuits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
