/root/repo/target/debug/examples/quickstart-2f65d4cfe9192a7f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2f65d4cfe9192a7f: examples/quickstart.rs

examples/quickstart.rs:
