/root/repo/target/debug/examples/runtime_throughput-22bad051912aba91.d: examples/runtime_throughput.rs Cargo.toml

/root/repo/target/debug/examples/libruntime_throughput-22bad051912aba91.rmeta: examples/runtime_throughput.rs Cargo.toml

examples/runtime_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
