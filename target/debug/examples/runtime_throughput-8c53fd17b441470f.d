/root/repo/target/debug/examples/runtime_throughput-8c53fd17b441470f.d: examples/runtime_throughput.rs

/root/repo/target/debug/examples/runtime_throughput-8c53fd17b441470f: examples/runtime_throughput.rs

examples/runtime_throughput.rs:
