/root/repo/target/debug/examples/offloading_demo-22b8abadea3a3a18.d: examples/offloading_demo.rs

/root/repo/target/debug/examples/offloading_demo-22b8abadea3a3a18: examples/offloading_demo.rs

examples/offloading_demo.rs:
