/root/repo/target/debug/examples/custom_environment-ede3da664ec43f76.d: examples/custom_environment.rs

/root/repo/target/debug/examples/custom_environment-ede3da664ec43f76: examples/custom_environment.rs

examples/custom_environment.rs:
