/root/repo/target/debug/examples/bell_and_circuits-77428530e2ad0062.d: examples/bell_and_circuits.rs

/root/repo/target/debug/examples/bell_and_circuits-77428530e2ad0062: examples/bell_and_circuits.rs

examples/bell_and_circuits.rs:
