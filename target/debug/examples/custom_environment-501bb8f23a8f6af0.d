/root/repo/target/debug/examples/custom_environment-501bb8f23a8f6af0.d: examples/custom_environment.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_environment-501bb8f23a8f6af0.rmeta: examples/custom_environment.rs Cargo.toml

examples/custom_environment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
