/root/repo/target/release/examples/_verify_probe2-a32908d2880f3fbb.d: examples/_verify_probe2.rs

/root/repo/target/release/examples/_verify_probe2-a32908d2880f3fbb: examples/_verify_probe2.rs

examples/_verify_probe2.rs:
