/root/repo/target/release/examples/runtime_throughput-41cf682f42923c13.d: examples/runtime_throughput.rs

/root/repo/target/release/examples/runtime_throughput-41cf682f42923c13: examples/runtime_throughput.rs

examples/runtime_throughput.rs:
