/root/repo/target/release/examples/quickstart-b6d288e9d8be8dbf.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b6d288e9d8be8dbf: examples/quickstart.rs

examples/quickstart.rs:
