/root/repo/target/release/examples/_verify_probe-ac6935d18793ebfb.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-ac6935d18793ebfb: examples/_verify_probe.rs

examples/_verify_probe.rs:
