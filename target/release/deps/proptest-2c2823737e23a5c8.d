/root/repo/target/release/deps/proptest-2c2823737e23a5c8.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2c2823737e23a5c8.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2c2823737e23a5c8.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
