/root/repo/target/release/deps/ablation_noise-0bd0a240a38b86e3.d: crates/bench/src/bin/ablation_noise.rs

/root/repo/target/release/deps/ablation_noise-0bd0a240a38b86e3: crates/bench/src/bin/ablation_noise.rs

crates/bench/src/bin/ablation_noise.rs:
