/root/repo/target/release/deps/serde_derive-5241e12baa25b054.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-5241e12baa25b054.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
