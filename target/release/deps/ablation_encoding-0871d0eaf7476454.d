/root/repo/target/release/deps/ablation_encoding-0871d0eaf7476454.d: crates/bench/src/bin/ablation_encoding.rs

/root/repo/target/release/deps/ablation_encoding-0871d0eaf7476454: crates/bench/src/bin/ablation_encoding.rs

crates/bench/src/bin/ablation_encoding.rs:
