/root/repo/target/release/deps/runtime_batch-49d7561b9baeefde.d: crates/bench/benches/runtime_batch.rs

/root/repo/target/release/deps/runtime_batch-49d7561b9baeefde: crates/bench/benches/runtime_batch.rs

crates/bench/benches/runtime_batch.rs:
