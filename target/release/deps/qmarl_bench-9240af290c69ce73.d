/root/repo/target/release/deps/qmarl_bench-9240af290c69ce73.d: crates/bench/src/lib.rs crates/bench/src/plot.rs

/root/repo/target/release/deps/libqmarl_bench-9240af290c69ce73.rlib: crates/bench/src/lib.rs crates/bench/src/plot.rs

/root/repo/target/release/deps/libqmarl_bench-9240af290c69ce73.rmeta: crates/bench/src/lib.rs crates/bench/src/plot.rs

crates/bench/src/lib.rs:
crates/bench/src/plot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
