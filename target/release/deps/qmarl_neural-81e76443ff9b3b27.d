/root/repo/target/release/deps/qmarl_neural-81e76443ff9b3b27.d: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs

/root/repo/target/release/deps/libqmarl_neural-81e76443ff9b3b27.rlib: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs

/root/repo/target/release/deps/libqmarl_neural-81e76443ff9b3b27.rmeta: crates/neural/src/lib.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/matrix.rs crates/neural/src/mlp.rs crates/neural/src/optim.rs

crates/neural/src/lib.rs:
crates/neural/src/layer.rs:
crates/neural/src/loss.rs:
crates/neural/src/matrix.rs:
crates/neural/src/mlp.rs:
crates/neural/src/optim.rs:
