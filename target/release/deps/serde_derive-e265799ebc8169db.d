/root/repo/target/release/deps/serde_derive-e265799ebc8169db.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-e265799ebc8169db.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
