/root/repo/target/release/deps/rand-885c586657733a6d.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-885c586657733a6d.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-885c586657733a6d.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
