/root/repo/target/release/deps/fig3_training_curves-6ef6e95aacc9c89a.d: crates/bench/src/bin/fig3_training_curves.rs

/root/repo/target/release/deps/fig3_training_curves-6ef6e95aacc9c89a: crates/bench/src/bin/fig3_training_curves.rs

crates/bench/src/bin/fig3_training_curves.rs:
