/root/repo/target/release/deps/ablation_shots-26f3e7f86d03c864.d: crates/bench/src/bin/ablation_shots.rs

/root/repo/target/release/deps/ablation_shots-26f3e7f86d03c864: crates/bench/src/bin/ablation_shots.rs

crates/bench/src/bin/ablation_shots.rs:
