/root/repo/target/release/deps/serde-0f42b92699b9a6c3.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-0f42b92699b9a6c3.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-0f42b92699b9a6c3.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
