/root/repo/target/release/deps/table2_parameters-89bbedc9367dc256.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/release/deps/table2_parameters-89bbedc9367dc256: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
