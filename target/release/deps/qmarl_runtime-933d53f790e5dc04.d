/root/repo/target/release/deps/qmarl_runtime-933d53f790e5dc04.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

/root/repo/target/release/deps/libqmarl_runtime-933d53f790e5dc04.rlib: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

/root/repo/target/release/deps/libqmarl_runtime-933d53f790e5dc04.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/compile.rs crates/runtime/src/error.rs crates/runtime/src/exec.rs crates/runtime/src/qnn.rs crates/runtime/src/rollout.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/compile.rs:
crates/runtime/src/error.rs:
crates/runtime/src/exec.rs:
crates/runtime/src/qnn.rs:
crates/runtime/src/rollout.rs:
