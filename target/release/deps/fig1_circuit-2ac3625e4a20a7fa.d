/root/repo/target/release/deps/fig1_circuit-2ac3625e4a20a7fa.d: crates/bench/src/bin/fig1_circuit.rs

/root/repo/target/release/deps/fig1_circuit-2ac3625e4a20a7fa: crates/bench/src/bin/fig1_circuit.rs

crates/bench/src/bin/fig1_circuit.rs:
