/root/repo/target/release/deps/ablation_ctde-a2917a49f68e085d.d: crates/bench/src/bin/ablation_ctde.rs

/root/repo/target/release/deps/ablation_ctde-a2917a49f68e085d: crates/bench/src/bin/ablation_ctde.rs

crates/bench/src/bin/ablation_ctde.rs:
