/root/repo/target/release/deps/qmarl-bd4982e530f0b066.d: src/lib.rs

/root/repo/target/release/deps/libqmarl-bd4982e530f0b066.rlib: src/lib.rs

/root/repo/target/release/deps/libqmarl-bd4982e530f0b066.rmeta: src/lib.rs

src/lib.rs:
