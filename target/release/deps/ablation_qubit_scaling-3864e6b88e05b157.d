/root/repo/target/release/deps/ablation_qubit_scaling-3864e6b88e05b157.d: crates/bench/src/bin/ablation_qubit_scaling.rs

/root/repo/target/release/deps/ablation_qubit_scaling-3864e6b88e05b157: crates/bench/src/bin/ablation_qubit_scaling.rs

crates/bench/src/bin/ablation_qubit_scaling.rs:
