/root/repo/target/release/deps/fig4_demonstration-48dbc027af60067c.d: crates/bench/src/bin/fig4_demonstration.rs

/root/repo/target/release/deps/fig4_demonstration-48dbc027af60067c: crates/bench/src/bin/fig4_demonstration.rs

crates/bench/src/bin/fig4_demonstration.rs:
