/root/repo/target/release/deps/qmarl_env-7fd33def33880634.d: crates/env/src/lib.rs crates/env/src/action.rs crates/env/src/error.rs crates/env/src/metrics.rs crates/env/src/multi_agent.rs crates/env/src/queue.rs crates/env/src/random_walk.rs crates/env/src/single_hop.rs crates/env/src/traffic.rs

/root/repo/target/release/deps/libqmarl_env-7fd33def33880634.rlib: crates/env/src/lib.rs crates/env/src/action.rs crates/env/src/error.rs crates/env/src/metrics.rs crates/env/src/multi_agent.rs crates/env/src/queue.rs crates/env/src/random_walk.rs crates/env/src/single_hop.rs crates/env/src/traffic.rs

/root/repo/target/release/deps/libqmarl_env-7fd33def33880634.rmeta: crates/env/src/lib.rs crates/env/src/action.rs crates/env/src/error.rs crates/env/src/metrics.rs crates/env/src/multi_agent.rs crates/env/src/queue.rs crates/env/src/random_walk.rs crates/env/src/single_hop.rs crates/env/src/traffic.rs

crates/env/src/lib.rs:
crates/env/src/action.rs:
crates/env/src/error.rs:
crates/env/src/metrics.rs:
crates/env/src/multi_agent.rs:
crates/env/src/queue.rs:
crates/env/src/random_walk.rs:
crates/env/src/single_hop.rs:
crates/env/src/traffic.rs:
