/root/repo/target/release/deps/table1_mdp-fb4f86791193a002.d: crates/bench/src/bin/table1_mdp.rs

/root/repo/target/release/deps/table1_mdp-fb4f86791193a002: crates/bench/src/bin/table1_mdp.rs

crates/bench/src/bin/table1_mdp.rs:
