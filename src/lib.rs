//! Facade crate re-exporting the full QMARL stack.
pub use qmarl_core as core;
pub use qmarl_env as env;
pub use qmarl_harness as harness;
pub use qmarl_neural as neural;
pub use qmarl_qsim as qsim;
pub use qmarl_runtime as runtime;
pub use qmarl_serve as serve;
pub use qmarl_vqc as vqc;
