//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no crates.io access, and
//! nothing in the codebase actually serialises through serde's trait
//! machinery (checkpoints use a hand-rolled text format). The derives
//! therefore expand to nothing: they exist so `#[derive(serde::Serialize,
//! serde::Deserialize)]` attributes keep compiling unchanged, preserving
//! source compatibility with the real serde if it is ever vendored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
