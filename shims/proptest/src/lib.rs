//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this shim implements
//! the proptest API subset the workspace's property tests use —
//! `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`, `Just`,
//! range strategies, tuple strategies, `Strategy::prop_map` and
//! `prop::collection::vec` — as a deterministic random-case runner.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case index and seed instead of a minimised input) and a default of
//! 64 cases per property (override with `PROPTEST_CASES`; seeds derive
//! from the test name, override with `PROPTEST_SEED`). Every strategy
//! combinator keeps the same types and call syntax, so swapping the real
//! proptest back in is a manifest-only change.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A failed property-test assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Object-safe sampling for [`Union`] arms (implementation detail made
/// public only because `Union`'s constructors name it).
pub trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

/// Weighted choice between strategies (the `prop_oneof!` output).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds from weighted boxed arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted arm"
        );
        Union { arms, total }
    }

    /// Boxes one arm (used by the `prop_oneof!` macro).
    pub fn arm<S: Strategy<Value = V> + 'static>(
        weight: u32,
        strategy: S,
    ) -> (u32, Box<dyn DynStrategy<V>>) {
        (weight, Box::new(strategy))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.sample_dyn(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum covers the sampled index")
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};

        /// Lengths accepted by [`vec`]: exact or a half-open range.
        pub trait IntoSizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut StdRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }

        /// A `Vec` of values from `element`, with a length from `size`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        /// The [`vec`] strategy.
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let n = self.size.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The base RNG seed for a named test (`PROPTEST_SEED` overrides).
pub fn base_seed(test_name: &str) -> u64 {
    if let Some(s) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return s;
    }
    // FNV-1a over the test name: deterministic across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` over `cases()` sampled inputs, panicking with the case
/// index and seed on the first failure.
pub fn run_property<F>(test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let seed = base_seed(test_name);
    for case in 0..cases() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(case as u64));
        if let Err(e) = body(&mut rng) {
            panic!(
                "property '{test_name}' failed at case {case} (PROPTEST_SEED={}): {e}",
                seed.wrapping_add(case as u64)
            );
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Weighted or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Union::arm($weight, $strat) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Union::arm(1u32, $strat) ),+ ])
    };
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, Strategy, TestCaseError, Union};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 0.0f64..1.0,
            (a, b) in (0usize..4, -2i32..3),
            v in prop::collection::vec(0u64..10, 1..5),
        ) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((-2..3).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_respects_arms(pick in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&pick));
        }

        #[test]
        fn map_transforms(y in (0u32..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(y % 3, 0);
            prop_assert!(y < 30);
        }
    }

    #[test]
    fn weighted_union_skews_sampling() {
        use rand::SeedableRng;
        let u = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let hits = (0..5000).filter(|_| u.sample(&mut rng)).count();
        assert!((hits as f64 / 5000.0 - 0.9).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        crate::run_property("always_fails", |_rng| {
            Err(crate::TestCaseError("boom".into()))
        });
    }
}
