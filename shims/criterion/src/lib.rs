//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this shim implements a
//! small but *real* wall-clock benchmarking harness behind the criterion
//! API subset the workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{bench_function, bench_with_input, sample_size,
//! finish}`, `Bencher::iter`, `BenchmarkId::from_parameter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated to a per-sample batch
//! of iterations lasting roughly [`TARGET_BATCH`], then `sample_size`
//! batches are timed. The reported statistics are the minimum, median and
//! mean per-iteration time across batches (minimum is the most
//! reproducible statistic on a noisy machine). Set `QMARL_BENCH_QUICK=1`
//! to cap calibration and samples for CI smoke runs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall-clock duration of one calibrated sample batch.
pub const TARGET_BATCH: Duration = Duration::from_millis(5);

fn quick_mode() -> bool {
    std::env::var_os("QMARL_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value (e.g. a batch size).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration nanoseconds of the last `iter` call.
    last_mean_ns: f64,
    last_min_ns: f64,
    last_median_ns: f64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            last_mean_ns: 0.0,
            last_min_ns: 0.0,
            last_median_ns: 0.0,
        }
    }

    /// Times `routine`, criterion-style: calibrate a batch size, then take
    /// `sample_size` timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let quick = quick_mode();
        // Calibrate: grow the batch until it lasts ≥ TARGET_BATCH.
        let mut batch: u64 = 1;
        let target = if quick {
            Duration::from_micros(500)
        } else {
            TARGET_BATCH
        };
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 30 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (target.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            batch = batch.saturating_mul(grow.clamp(2, 16));
        }
        let samples = if quick { 3 } else { self.sample_size.max(3) };
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are comparable"));
        self.last_min_ns = per_iter[0];
        self.last_median_ns = per_iter[per_iter.len() / 2];
        self.last_mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed sample batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        println!(
            "{:<40} min {:>12}  median {:>12}  mean {:>12}",
            format!("{}/{}", self.name, id),
            format_ns(b.last_min_ns),
            format_ns(b.last_median_ns),
            format_ns(b.last_mean_ns),
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Runs one named benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        self.run(name.into(), f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is bookkeeping).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 10,
        };
        let id: String = name.into();
        group.run(id, f);
        self
    }

    /// Number of benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("QMARL_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
