//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* (as no-op derive macros
//! re-exported from the local `serde_derive` shim, plus marker traits for
//! code that writes explicit bounds). The build container has no network
//! access and nothing in this workspace drives serde's data model — the
//! checkpoint format is a hand-rolled text codec — so empty expansions are
//! sufficient and keep every `#[derive(serde::Serialize)]` in the tree
//! source-compatible with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::ser::Serialize` for explicit bounds.
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::de::Deserialize` for explicit bounds.
pub trait DeserializeMarker {}
