//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so this shim provides the
//! exact surface the workspace uses — `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64` and `rngs::StdRng` — over a xoshiro256++
//! generator seeded through SplitMix64. The generator is deterministic,
//! `Clone`, and statistically strong enough for every property test in
//! the tree (empirical distributions converge at the 1e-2 scale over 1e4+
//! samples). It is **not** the same stream as the real `StdRng`, which is
//! fine: nothing in the workspace pins exact draw values, only
//! reproducibility under a fixed seed.

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches rand's
    /// `Standard` for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types usable with `Rng::gen_range` over a half-open `Range`.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range requires low < high");
        let u = f64::sample_standard(rng);
        let v = low + u * (high - low);
        // `low + u * span` can round up to `high` for extreme spans; keep
        // the half-open contract by stepping just below it.
        if v < high {
            v
        } else {
            high.next_down().max(low)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range requires low < high");
        let v = low + f32::sample_standard(rng) * (high - low);
        if v < high {
            v
        } else {
            high.next_down().max(low)
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires low < high");
                // Subtract in the unsigned twin type so a signed span wider
                // than the type's MAX doesn't wrap negative and then
                // sign-extend to ~2^64 in the widening cast below.
                let span = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                // Debiased multiply-shift (Lemire); span ≥ 1 by the assert.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                low.wrapping_add((m >> 64) as u64 as $unsigned as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// The user-facing random-value API (rand 0.8 subset).
pub trait Rng: RngCore {
    /// A value from the standard distribution (`f64` in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when `range` is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Period 2^256 − 1, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full internal state — a workspace extension
        /// (the upstream crate keeps it opaque) so training checkpoints
        /// can freeze and resume a stream mid-sequence bit-identically.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`]; the
        /// resumed stream continues exactly where the capture stopped.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn state_roundtrip_resumes_mid_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 5e-3);
    }

    #[test]
    fn gen_range_integers_cover_support() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 50_000.0 - 0.2).abs() < 0.01);
        }
        // Negative spans work too.
        for _ in 0..1000 {
            let v = rng.gen_range(-3..3i32);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn gen_range_signed_spans_wider_than_type_max() {
        // high − low here overflows i32 (span 4e9 > i32::MAX); the
        // unsigned-twin subtraction must keep samples in range.
        let mut rng = StdRng::seed_from_u64(11);
        let (lo, hi) = (-2_000_000_000i32, 2_000_000_000i32);
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!((lo..hi).contains(&v), "out of range: {v}");
            saw_negative |= v < 0;
            saw_positive |= v > 0;
        }
        assert!(saw_negative && saw_positive, "full span must be reachable");
        // Full-width i64 span.
        for _ in 0..1000 {
            let v = rng.gen_range(i64::MIN..i64::MAX);
            assert!(v < i64::MAX);
        }
    }

    #[test]
    fn gen_range_floats_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 20_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn works_through_unsized_generic_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>() + rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((0.0..2.0).contains(&v));
    }
}
