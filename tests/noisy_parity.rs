//! Integration: the compiled superoperator executor is **exactly** the
//! noisy reference interpreter.
//!
//! The Noisy backend's hot path (`runtime::superop`) prebinds every raw
//! gate and its channel into one dense 4×4 superoperator and walks the
//! vectorized density register with the qsim slab kernels. This suite
//! pins it to the naive per-gate interpreter
//! (`runtime::exec::run_raw_density`) at 1e-12, elementwise over the full
//! density matrix:
//!
//! * on proptest-generated random circuits (every gate kind, every angle
//!   binding form) × {noiseless, depolarizing, mixed custom channels},
//!   with and without a parameter-shift angle override;
//! * on every registered scenario's actor circuit shape;
//! * and, noiseless, against the ideal **statevector** simulator:
//!   `ρ = |ψ⟩⟨ψ|` exactly.

use proptest::prelude::*;
use qmarl::core::prelude::*;
use qmarl::env::prelude::*;
use qmarl::qsim::gate::RotationAxis as Ax;
use qmarl::qsim::noise::{NoiseChannel, NoiseModel};
use qmarl::runtime::exec::run_raw_density;
use qmarl::runtime::prelude::*;
use qmarl::vqc::ir::{Angle, Circuit, FixedGate, InputId, ParamId};

/// One generated gate: `(kind, wire_a, wire_b, axis, angle_kind, value)`.
type GateSpec = (usize, usize, usize, usize, usize, f64);

fn build_circuit(n_qubits: usize, ops: &[GateSpec]) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    for &(kind, a, b, axis, angle_kind, val) in ops {
        let q = a % n_qubits;
        let mut q2 = b % n_qubits;
        if q2 == q {
            q2 = (q + 1) % n_qubits;
        }
        let axis = [Ax::X, Ax::Y, Ax::Z][axis % 3];
        let angle = match angle_kind % 3 {
            0 => Angle::Const(val),
            1 => Angle::Input(InputId(a % 3)),
            _ => Angle::Param(ParamId(b % 4)),
        };
        match kind % 5 {
            0 => c.rot(q, axis, angle).unwrap(),
            1 => c.controlled_rot(q, q2, axis, angle).unwrap(),
            2 => c.cnot(q, q2).unwrap(),
            3 => c.cz(q, q2).unwrap(),
            _ => c
                .fixed(
                    q,
                    [FixedGate::H, FixedGate::X, FixedGate::S, FixedGate::T][a % 4],
                )
                .unwrap(),
        };
    }
    c
}

fn bindings_for(compiled: &CompiledCircuit) -> (Vec<f64>, Vec<f64>) {
    let inputs = (0..compiled.n_inputs())
        .map(|i| 0.2 + 0.13 * i as f64)
        .collect();
    let params = (0..compiled.n_params())
        .map(|p| -0.9 + 0.17 * p as f64)
        .collect();
    (inputs, params)
}

/// Elementwise 1e-12 parity of the prebound superoperator walk against
/// the interpreter, under one `(noise, override)` configuration.
fn assert_superop_parity(
    compiled: &CompiledCircuit,
    inputs: &[f64],
    params: &[f64],
    noise: &NoiseModel,
    override_angle: Option<(usize, f64)>,
    label: &str,
) {
    let reference =
        run_raw_density(compiled, inputs, params, noise, override_angle).expect("interpreter runs");
    let pb = prebind_density(compiled, params, noise).expect("prebinds");
    let fast = run_density(&pb, inputs, override_angle).expect("superop runs");
    let dim = reference.dim();
    for r in 0..dim {
        for c in 0..dim {
            let a = fast.element(r, c);
            let b = reference.element(r, c);
            assert!(
                (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12,
                "{label}: ρ[{r}][{c}] = {a:?} vs interpreter {b:?}"
            );
        }
    }
}

fn noise_models() -> Vec<(&'static str, NoiseModel)> {
    vec![
        ("noiseless", NoiseModel::noiseless()),
        (
            "depolarizing",
            NoiseModel::depolarizing(0.01, 0.02).unwrap(),
        ),
        (
            "mixed-custom",
            NoiseModel {
                after_gate1: Some(NoiseChannel::AmplitudeDamping { gamma: 0.1 }),
                after_gate2: Some(NoiseChannel::BitFlip { p: 0.05 }),
            },
        ),
    ]
}

proptest! {
    /// Random circuits: the compiled superoperator path equals the
    /// interpreter on every noise model, plain and with a shifted angle.
    #[test]
    fn superop_matches_interpreter_on_random_circuits(
        n_qubits in 2usize..5,
        ops in prop::collection::vec(
            (0usize..5, 0usize..8, 0usize..8, 0usize..3, 0usize..3, -3.0f64..3.0),
            1..24,
        ),
        theta in -3.0f64..3.0,
    ) {
        let circuit = build_circuit(n_qubits, &ops);
        let compiled = compile(&circuit);
        let (inputs, params) = bindings_for(&compiled);
        for (label, noise) in noise_models() {
            assert_superop_parity(&compiled, &inputs, &params, &noise, None, label);
            // Parameter-shift primitive: override the first trainable
            // occurrence's angle, if the circuit has one.
            if let Some(occ) = compiled.occurrences().first() {
                assert_superop_parity(
                    &compiled,
                    &inputs,
                    &params,
                    &noise,
                    Some((occ.raw_idx, theta)),
                    label,
                );
            }
        }
    }
}

#[test]
fn superop_matches_interpreter_on_every_registered_scenario_shape() {
    for spec in scenarios() {
        let env = spec.build(3).expect("scenario builds");
        let actor = QuantumActor::new(
            env.n_actions().max(4),
            env.obs_dim(),
            env.n_actions(),
            50.max(2 * env.n_actions() + 8),
            3,
        )
        .expect("actor builds");
        let compiled = actor.compiled().compiled().clone();
        let (inputs, params) = bindings_for(&compiled);
        for (label, noise) in noise_models() {
            assert_superop_parity(
                &compiled,
                &inputs,
                &params,
                &noise,
                None,
                &format!("{} / {label}", spec.name()),
            );
        }
    }
}

#[test]
fn noiseless_density_equals_the_ideal_statevector_outer_product() {
    for spec in scenarios() {
        let env = spec.build(5).expect("scenario builds");
        let actor = QuantumActor::new(
            env.n_actions().max(4),
            env.obs_dim(),
            env.n_actions(),
            50.max(2 * env.n_actions() + 8),
            5,
        )
        .expect("actor builds");
        let compiled = actor.compiled().compiled().clone();
        let (inputs, params) = bindings_for(&compiled);
        let pb = prebind_density(&compiled, &params, &NoiseModel::noiseless()).unwrap();
        let rho = run_density(&pb, &inputs, None).unwrap();
        let psi = run_compiled(&compiled, &inputs, &params).unwrap();
        let amps = psi.amplitudes();
        for r in 0..rho.dim() {
            for c in 0..rho.dim() {
                let want = amps[r] * amps[c].conj();
                let got = rho.element(r, c);
                assert!(
                    (got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12,
                    "{}: ρ[{r}][{c}] = {got:?} vs |ψ⟩⟨ψ| {want:?}",
                    spec.name()
                );
            }
        }
    }
}
