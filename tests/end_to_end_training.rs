//! Integration: Algorithm 1 end-to-end — training actually improves the
//! offloading policies, reproducibly.

use qmarl::core::prelude::*;

fn config(episode_limit: usize, seed: u64) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default();
    c.env.episode_limit = episode_limit;
    c.train.seed = seed;
    c
}

#[test]
fn proposed_learning_improves_reward() {
    // 120 epochs on full-length episodes: the quantum framework must beat
    // its own untrained start by a clear margin (the probe run improved
    // from ≈ −40 to ≈ −14 in 60 epochs).
    let cfg = config(300, 7);
    let mut trainer = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
    trainer.train(120).expect("trains");
    let h = trainer.history();
    let first: f64 = h.records()[..15]
        .iter()
        .map(|r| r.metrics.total_reward)
        .sum::<f64>()
        / 15.0;
    let last = h.final_reward(15).expect("nonempty");
    assert!(
        last > first + 5.0,
        "expected clear improvement: first15 {first:.1} → last15 {last:.1}"
    );
}

#[test]
fn critic_loss_decreases() {
    let cfg = config(120, 3);
    let mut trainer = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
    trainer.train(60).expect("trains");
    let h = trainer.history();
    let early: f64 = h.records()[..10].iter().map(|r| r.critic_loss).sum::<f64>() / 10.0;
    let late: f64 = h.records()[50..].iter().map(|r| r.critic_loss).sum::<f64>() / 10.0;
    assert!(
        late < early,
        "TD error should shrink: {early:.4} → {late:.4}"
    );
}

#[test]
fn training_is_bitwise_reproducible() {
    let run = || {
        let cfg = config(40, 11);
        let mut t = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
        t.train(5).expect("trains");
        (
            t.history()
                .records()
                .iter()
                .map(|r| r.metrics.total_reward)
                .collect::<Vec<_>>(),
            t.critic().params(),
        )
    };
    let (rewards_a, critic_a) = run();
    let (rewards_b, critic_b) = run();
    assert_eq!(rewards_a, rewards_b);
    assert_eq!(critic_a, critic_b);
}

#[test]
fn different_seeds_explore_differently() {
    let run = |seed| {
        let cfg = config(40, seed);
        let mut t = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
        t.train(3).expect("trains");
        t.history()
            .records()
            .iter()
            .map(|r| r.metrics.total_reward)
            .collect::<Vec<_>>()
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn hybrid_and_classical_frameworks_also_learn() {
    // Weaker assertion than for Proposed (budget-matched classical MARL
    // is exactly what the paper shows to be slow): no divergence, finite
    // losses, and the parameters actually move.
    for kind in [FrameworkKind::Comp1, FrameworkKind::Comp2] {
        let cfg = config(60, 13);
        let mut trainer = build_trainer(kind, &cfg).expect("builds");
        let before: Vec<f64> = trainer.actors()[0].params();
        trainer.train(10).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let after = trainer.actors()[0].params();
        assert!(
            before.iter().zip(&after).any(|(a, b)| (a - b).abs() > 1e-9),
            "{kind}"
        );
        assert!(trainer
            .history()
            .records()
            .iter()
            .all(|r| r.critic_loss.is_finite() && r.metrics.total_reward.is_finite()));
    }
}

#[test]
fn evaluation_uses_argmax_policy() {
    // Deterministic evaluation of the same trainer twice gives identical
    // environment outcomes only if the policy is argmax (sampling would
    // diverge because the trainer RNG advances).
    let cfg = config(30, 21);
    let mut trainer = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
    trainer.train(2).expect("trains");
    let a = trainer.evaluate(1).expect("evaluates");
    let b = trainer.evaluate(1).expect("evaluates");
    // Note: the env RNG differs between rollouts, so only the policy is
    // deterministic, not the arrivals; compare against a re-run instead.
    let cfg2 = config(30, 21);
    let mut trainer2 = build_trainer(FrameworkKind::Proposed, &cfg2).expect("builds");
    trainer2.train(2).expect("trains");
    let a2 = trainer2.evaluate(1).expect("evaluates");
    let b2 = trainer2.evaluate(1).expect("evaluates");
    assert_eq!(a, a2);
    assert_eq!(b, b2);
}

#[test]
fn target_network_lags_then_syncs() {
    let mut cfg = config(20, 31);
    cfg.train.target_update_period = 3;
    let mut trainer = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
    trainer.train(2).expect("trains");
    // After 2 epochs with period 3 the target must differ from the critic…
    // (we can only observe this indirectly: one more epoch triggers the
    // sync and the run proceeds without error).
    trainer.train(1).expect("sync epoch");
    assert_eq!(trainer.epochs_done(), 3);
}
