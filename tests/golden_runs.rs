//! Golden-run regression suite: tier-2 protection for the whole training
//! stack.
//!
//! Every registered scenario runs a short deterministic training cell
//! under {Ideal, Sampled} × {Serial, Batched}. Under **Ideal** the
//! (reward, loss, entropy, final parameter) fingerprint is asserted
//! bit-exactly against the committed table below — any change to the
//! simulator, the gradient engines, the rollout collectors, the update
//! sweep, the environments or the seeding contract shows up here. Under
//! **Sampled** the two engines must agree bit-exactly with each other
//! and with a re-run (the content-addressed shot-stream contract).
//!
//! When an *intentional* change shifts the numbers, regenerate the table
//! with:
//!
//! ```text
//! QMARL_BLESS=1 cargo test --test golden_runs -- --nocapture
//! ```
//!
//! and paste the printed rows over `GOLDEN_IDEAL`.

use qmarl::harness::prelude::*;
use qmarl::runtime::backend::ExecutionBackend;

/// FNV-1a over the exact bit patterns of every f64 the run produced.
fn fingerprint(result: &CellResult) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bits: u64| {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (bits >> shift) & 0xFF;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for rec in result.history.records() {
        eat(rec.metrics.total_reward.to_bits());
        eat(rec.metrics.avg_queue.to_bits());
        eat(rec.critic_loss.to_bits());
        eat(rec.mean_entropy.to_bits());
    }
    eat(u64::MAX); // domain separator
    for params in &result.snapshot.actor_params {
        for p in params {
            eat(p.to_bits());
        }
    }
    for p in &result.snapshot.critic_params {
        eat(p.to_bits());
    }
    h
}

/// One short deterministic cell: 2 epochs × 5-step episodes, seed 9.
fn run(scenario: &str, backend: &str, engine: &str) -> u64 {
    let spec: ExperimentSpec = format!(
        "name=golden;scenarios={scenario};backends={backend};engines={engine};\
         seeds=9;epochs=2;limit=5"
    )
    .parse()
    .expect("valid golden spec");
    let cell = spec.expand().remove(0);
    let result = run_cell(&spec, &cell, &CellOptions::default()).expect("golden cell runs");
    assert_eq!(result.history.len(), 2);
    fingerprint(&result)
}

const SAMPLED: &str = "sampled:shots=32:seed=5";

/// The committed Ideal fingerprints, one per registered scenario. Both
/// update engines must land exactly here.
const GOLDEN_IDEAL: &[(&str, u64)] = &[
    ("single-hop", 0x2d4127626c773035),
    ("single-hop-bursty", 0xbc062285bab833f1),
    ("single-hop-wide", 0x87db07a0c9e457da),
    ("two-tier", 0xe432d12bfb45dbdf),
];

#[test]
fn golden_runs_match_committed_fingerprints_under_ideal() {
    let scenarios: Vec<&str> = qmarl::env::scenario::scenarios()
        .iter()
        .map(|s| s.name())
        .collect();
    assert_eq!(
        scenarios,
        GOLDEN_IDEAL.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        "GOLDEN_IDEAL must cover exactly the registered scenarios; \
         re-bless after registry changes"
    );
    let bless = std::env::var("QMARL_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut table = String::new();
    let mut failures = Vec::new();
    for &(scenario, expected) in GOLDEN_IDEAL {
        let batched = run(scenario, "ideal", "batched");
        let serial = run(scenario, "ideal", "serial");
        assert_eq!(
            batched, serial,
            "{scenario}: update engines must be bit-identical under ideal"
        );
        table.push_str(&format!("    (\"{scenario}\", {batched:#x}),\n"));
        if batched != expected {
            failures.push(format!(
                "{scenario}: fingerprint {batched:#x} != committed {expected:#x}"
            ));
        }
    }
    if bless {
        println!("const GOLDEN_IDEAL: &[(&str, u64)] = &[\n{table}];");
        return;
    }
    assert!(
        failures.is_empty(),
        "golden Ideal fingerprints drifted:\n{}\nnew table (QMARL_BLESS=1 to print):\n{table}",
        failures.join("\n")
    );
}

#[test]
fn golden_runs_are_engine_invariant_and_deterministic_under_sampled() {
    for spec in qmarl::env::scenario::scenarios() {
        let scenario = spec.name();
        let batched = run(scenario, SAMPLED, "batched");
        let serial = run(scenario, SAMPLED, "serial");
        assert_eq!(
            batched, serial,
            "{scenario}: engines must agree bit-exactly under the sampled backend"
        );
        let again = run(scenario, SAMPLED, "batched");
        assert_eq!(
            batched, again,
            "{scenario}: sampled training must be deterministic run to run"
        );
    }
}

#[test]
fn golden_fingerprints_distinguish_scenarios_and_backends() {
    // Sanity on the fingerprint itself: different cells hash differently
    // (a collapse here would make the suite vacuously green).
    let a = run("single-hop", "ideal", "batched");
    let b = run("single-hop-bursty", "ideal", "batched");
    let c = run("single-hop", SAMPLED, "batched");
    assert_ne!(a, b);
    assert_ne!(a, c);
    // And the Ideal backend spelled explicitly matches the default axis.
    let explicit = {
        let spec: ExperimentSpec = "name=golden;scenarios=single-hop;seeds=9;epochs=2;limit=5"
            .parse()
            .unwrap();
        assert_eq!(spec.backends, vec![ExecutionBackend::Ideal]);
        let cell = spec.expand().remove(0);
        fingerprint(&run_cell(&spec, &cell, &CellOptions::default()).unwrap())
    };
    assert_eq!(a, explicit);
}
