//! Golden-run regression suite: tier-2 protection for the whole training
//! stack.
//!
//! Every registered scenario runs a short deterministic training cell
//! under {Ideal, Sampled, Noisy, Trajectory} × {Serial, Batched}. Under
//! **Ideal**, **Noisy** and **Trajectory** the (reward, loss, entropy,
//! final parameter) fingerprint is asserted bit-exactly against the
//! committed tables below — any change to the simulators (statevector,
//! superoperator density, trajectory sampling), the gradient engines,
//! the rollout collectors, the update sweep, the environments or the
//! seeding contract shows up here. Under **Sampled** the two engines
//! must agree bit-exactly with each other and with a re-run (the
//! content-addressed shot-stream contract).
//!
//! When an *intentional* change shifts the numbers, regenerate the
//! tables with:
//!
//! ```text
//! QMARL_BLESS=1 cargo test --test golden_runs -- --nocapture
//! ```
//!
//! and paste the printed rows over the matching `GOLDEN_*` table.

use qmarl::harness::prelude::*;
use qmarl::runtime::backend::ExecutionBackend;

/// FNV-1a over the exact bit patterns of every f64 the run produced.
fn fingerprint(result: &CellResult) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bits: u64| {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (bits >> shift) & 0xFF;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for rec in result.history.records() {
        eat(rec.metrics.total_reward.to_bits());
        eat(rec.metrics.avg_queue.to_bits());
        eat(rec.critic_loss.to_bits());
        eat(rec.mean_entropy.to_bits());
    }
    eat(u64::MAX); // domain separator
    for params in &result.snapshot.actor_params {
        for p in params {
            eat(p.to_bits());
        }
    }
    for p in &result.snapshot.critic_params {
        eat(p.to_bits());
    }
    h
}

/// One deterministic cell of the given length, seed 9.
fn run_sized(scenario: &str, backend: &str, engine: &str, epochs: usize, limit: usize) -> u64 {
    let spec: ExperimentSpec = format!(
        "name=golden;scenarios={scenario};backends={backend};engines={engine};\
         seeds=9;epochs={epochs};limit={limit}"
    )
    .parse()
    .expect("valid golden spec");
    let cell = spec.expand().remove(0);
    let result = run_cell(&spec, &cell, &CellOptions::default()).expect("golden cell runs");
    assert_eq!(result.history.len(), epochs);
    fingerprint(&result)
}

/// The standard short cell: 2 epochs × 5-step episodes, seed 9.
fn run(scenario: &str, backend: &str, engine: &str) -> u64 {
    run_sized(scenario, backend, engine, 2, 5)
}

const SAMPLED: &str = "sampled:shots=32:seed=5";
const NOISY: &str = "noisy:p1=0.01:p2=0.02:shots=24:seed=7";
const TRAJECTORY: &str = "trajectory:p1=0.01:p2=0.02:samples=8:seed=7";

/// The committed Ideal fingerprints, one per registered scenario. Both
/// update engines must land exactly here.
const GOLDEN_IDEAL: &[(&str, u64)] = &[
    ("single-hop", 0x2d4127626c773035),
    ("single-hop-bursty", 0xbc062285bab833f1),
    ("single-hop-wide", 0x87db07a0c9e457da),
    ("two-tier", 0xe432d12bfb45dbdf),
];

/// Committed fingerprints for a short Noisy (superoperator density +
/// finite shots) training cell. `single-hop-wide` is skipped on purpose:
/// its 8-qubit actor makes every density evaluation a 65 536-amplitude
/// register, and the execution path it would pin is identical to the
/// other rows'.
const GOLDEN_NOISY: &[(&str, u64)] = &[
    ("single-hop", 0xd74fd9405546c9dc),
    ("single-hop-bursty", 0xba10c7b35103e70b),
    ("two-tier", 0xd671d60f3a127d0c),
];

/// Committed fingerprints for a short Trajectory (quantum-jump sampling)
/// training cell. Statevector-sized work, so every scenario — including
/// the 8-qubit wide one — gets a row.
const GOLDEN_TRAJECTORY: &[(&str, u64)] = &[
    ("single-hop", 0xa3af1ad2710e6249),
    ("single-hop-bursty", 0xfc35fff1bcb40a91),
    ("single-hop-wide", 0x630eba60712ed1fc),
    ("two-tier", 0x1968f50000944bcf),
];

/// Shared driver for a committed-fingerprint table: per scenario, both
/// engines must agree bit-exactly and land on the committed value (or,
/// under `QMARL_BLESS=1`, print a fresh table).
fn check_golden_table(
    backend: &str,
    table_name: &str,
    table: &[(&str, u64)],
    epochs: usize,
    limit: usize,
) {
    let bless = std::env::var("QMARL_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut printed = String::new();
    let mut failures = Vec::new();
    for &(scenario, expected) in table {
        let batched = run_sized(scenario, backend, "batched", epochs, limit);
        let serial = run_sized(scenario, backend, "serial", epochs, limit);
        assert_eq!(
            batched, serial,
            "{scenario}: update engines must be bit-identical under {backend}"
        );
        printed.push_str(&format!("    (\"{scenario}\", {batched:#x}),\n"));
        if batched != expected {
            failures.push(format!(
                "{scenario}: fingerprint {batched:#x} != committed {expected:#x}"
            ));
        }
    }
    if bless {
        println!("const {table_name}: &[(&str, u64)] = &[\n{printed}];");
        return;
    }
    assert!(
        failures.is_empty(),
        "golden {backend} fingerprints drifted:\n{}\nnew table (QMARL_BLESS=1 to print):\n{printed}",
        failures.join("\n")
    );
}

#[test]
fn golden_runs_match_committed_fingerprints_under_ideal() {
    let scenarios: Vec<&str> = qmarl::env::scenario::scenarios()
        .iter()
        .map(|s| s.name())
        .collect();
    assert_eq!(
        scenarios,
        GOLDEN_IDEAL.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        "GOLDEN_IDEAL must cover exactly the registered scenarios; \
         re-bless after registry changes"
    );
    let bless = std::env::var("QMARL_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut table = String::new();
    let mut failures = Vec::new();
    for &(scenario, expected) in GOLDEN_IDEAL {
        let batched = run(scenario, "ideal", "batched");
        let serial = run(scenario, "ideal", "serial");
        assert_eq!(
            batched, serial,
            "{scenario}: update engines must be bit-identical under ideal"
        );
        table.push_str(&format!("    (\"{scenario}\", {batched:#x}),\n"));
        if batched != expected {
            failures.push(format!(
                "{scenario}: fingerprint {batched:#x} != committed {expected:#x}"
            ));
        }
    }
    if bless {
        println!("const GOLDEN_IDEAL: &[(&str, u64)] = &[\n{table}];");
        return;
    }
    assert!(
        failures.is_empty(),
        "golden Ideal fingerprints drifted:\n{}\nnew table (QMARL_BLESS=1 to print):\n{table}",
        failures.join("\n")
    );
}

#[test]
fn golden_runs_match_committed_fingerprints_under_noisy() {
    // A shorter cell than the other backends' (1 epoch × 3-step
    // episodes): every parameter-shift evaluation evolves the full 4^n
    // density register, so the standard cell would dominate the suite's
    // unoptimized (debug) wall time without pinning anything extra.
    check_golden_table(NOISY, "GOLDEN_NOISY", GOLDEN_NOISY, 1, 3);
}

#[test]
fn golden_runs_match_committed_fingerprints_under_trajectory() {
    let scenarios: Vec<&str> = qmarl::env::scenario::scenarios()
        .iter()
        .map(|s| s.name())
        .collect();
    assert_eq!(
        scenarios,
        GOLDEN_TRAJECTORY
            .iter()
            .map(|(s, _)| *s)
            .collect::<Vec<_>>(),
        "GOLDEN_TRAJECTORY must cover exactly the registered scenarios; \
         re-bless after registry changes"
    );
    check_golden_table(TRAJECTORY, "GOLDEN_TRAJECTORY", GOLDEN_TRAJECTORY, 2, 5);
}

#[test]
fn golden_runs_are_engine_invariant_and_deterministic_under_sampled() {
    for spec in qmarl::env::scenario::scenarios() {
        let scenario = spec.name();
        let batched = run(scenario, SAMPLED, "batched");
        let serial = run(scenario, SAMPLED, "serial");
        assert_eq!(
            batched, serial,
            "{scenario}: engines must agree bit-exactly under the sampled backend"
        );
        let again = run(scenario, SAMPLED, "batched");
        assert_eq!(
            batched, again,
            "{scenario}: sampled training must be deterministic run to run"
        );
    }
}

#[test]
fn golden_fingerprints_distinguish_scenarios_and_backends() {
    // Sanity on the fingerprint itself: different cells hash differently
    // (a collapse here would make the suite vacuously green).
    let a = run("single-hop", "ideal", "batched");
    let b = run("single-hop-bursty", "ideal", "batched");
    let c = run("single-hop", SAMPLED, "batched");
    assert_ne!(a, b);
    assert_ne!(a, c);
    // And the Ideal backend spelled explicitly matches the default axis.
    let explicit = {
        let spec: ExperimentSpec = "name=golden;scenarios=single-hop;seeds=9;epochs=2;limit=5"
            .parse()
            .unwrap();
        assert_eq!(spec.backends, vec![ExecutionBackend::Ideal]);
        let cell = spec.expand().remove(0);
        fingerprint(&run_cell(&spec, &cell, &CellOptions::default()).unwrap())
    };
    assert_eq!(a, explicit);
}
