//! Integration: the quantum stack end-to-end — encoder → ansatz →
//! measurement → gradients — across qsim, vqc and core.

use qmarl::core::prelude::*;
use qmarl::qsim::prelude::*;
use qmarl::vqc::prelude::*;

#[test]
fn actor_state_is_normalised_and_four_qubits() {
    let actor = QuantumActor::new(4, 4, 4, 50, 2).expect("builds");
    let s = actor.quantum_state(&[0.3, 0.6, 0.9, 0.1]).expect("runs");
    assert_eq!(s.n_qubits(), 4);
    assert!((s.norm() - 1.0).abs() < 1e-10);
    // The Fig. 4 grid is exactly this register.
    let grid = amplitude_grid(&s).expect("4 qubits");
    let total: f64 = grid
        .iter()
        .flatten()
        .map(|c| c.magnitude * c.magnitude)
        .sum();
    assert!((total - 1.0).abs() < 1e-10);
}

#[test]
fn policy_reacts_to_observations() {
    // The encoder must actually inject the observation: different inputs
    // must give different policies (no barren identity mapping).
    let actor = QuantumActor::new(4, 4, 4, 50, 4).expect("builds");
    let p1 = actor.probs(&[0.0, 0.0, 0.0, 0.0]).expect("probs");
    let p2 = actor.probs(&[1.0, 0.5, 0.9, 0.1]).expect("probs");
    let tv: f64 = p1.iter().zip(&p2).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
    assert!(tv > 1e-3, "policy insensitive to observations: TV = {tv}");
}

#[test]
fn actor_gradients_agree_across_methods() {
    let adjoint = QuantumActor::new(4, 4, 4, 50, 6)
        .expect("builds")
        .with_grad_method(GradMethod::Adjoint);
    let shift = {
        let mut a = QuantumActor::new(4, 4, 4, 50, 6)
            .expect("builds")
            .with_grad_method(GradMethod::ParameterShift);
        a.set_params(&adjoint.params()).expect("same architecture");
        a
    };
    let obs = [0.25, 0.5, 0.75, 1.0];
    let ga = adjoint.policy_gradient(&obs, 1, -0.8).expect("gradient");
    let gs = shift.policy_gradient(&obs, 1, -0.8).expect("gradient");
    for (a, b) in ga.iter().zip(&gs) {
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }
}

#[test]
fn critic_encodes_sixteen_features_on_four_wires() {
    let critic = QuantumCritic::new(4, 16, 50, 8).expect("builds");
    assert_eq!(critic.model().circuit().n_qubits(), 4);
    assert_eq!(critic.model().input_len(), 16);
    // Perturbing any single state feature moves the value: the layered
    // encoding covers the whole state vector.
    let base: Vec<f64> = (0..16).map(|i| 0.4 + 0.01 * i as f64).collect();
    let v0 = critic.value(&base).expect("value");
    let mut moved = 0;
    for i in 0..16 {
        let mut s = base.clone();
        s[i] += 0.3;
        if (critic.value(&s).expect("value") - v0).abs() > 1e-9 {
            moved += 1;
        }
    }
    assert!(moved >= 14, "only {moved}/16 features reach the readout");
}

#[test]
fn noisy_execution_degrades_toward_uniform_policy() {
    let actor = QuantumActor::new(4, 4, 4, 50, 10).expect("builds");
    let obs = [0.9, 0.1, 0.7, 0.3];
    let logits = |noise: &NoiseModel| -> Vec<f64> {
        actor
            .model()
            .forward_noisy(&obs, &actor.params(), noise)
            .expect("noisy forward")
    };
    let clean = logits(&NoiseModel::noiseless());
    let heavy = logits(&NoiseModel::depolarizing(0.2, 0.4).expect("valid"));
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    assert!(
        spread(&heavy) < spread(&clean),
        "heavy noise must flatten the logits: {clean:?} vs {heavy:?}"
    );
}

#[test]
fn bell_state_through_the_full_stack() {
    // Sanity anchor: the same Bell pair via raw qsim and via the vqc IR.
    let mut raw = StateVector::zero(2);
    raw.apply_gate1(0, &Gate1::hadamard()).expect("h");
    raw.apply_cnot(0, 1).expect("cnot");

    let mut c = Circuit::new(2);
    c.fixed(0, FixedGate::H).expect("h");
    c.cnot(0, 1).expect("cnot");
    let via_ir = run(&c, &[], &[]).expect("runs");

    assert!((raw.fidelity(&via_ir).expect("same width") - 1.0).abs() < 1e-12);
}

#[test]
fn random_layer_models_are_trainable_too() {
    // The torchquantum-style random layer (Table II: 50 gates) plugs into
    // the same model type and differentiates cleanly.
    let model = VqcBuilder::new(4)
        .encoder_inputs(4)
        .random_ansatz(RandomLayerConfig {
            gate_budget: 50,
            rotation_prob: 0.75,
            seed: 3,
        })
        .readout(Readout::z_all(4))
        .build()
        .expect("builds");
    let params = model.init_params(1);
    let (out, jac) = model
        .forward_with_jacobian(&[0.2, 0.4, 0.6, 0.8], &params, GradMethod::Adjoint)
        .expect("jacobian");
    assert_eq!(out.len(), 4);
    assert_eq!(jac.n_params(), model.param_count());
    assert!(
        jac.row(0).iter().any(|g| g.abs() > 1e-12),
        "gradient must flow"
    );
}
