//! Integration: the Fig. 2 framework structure — N decentralized quantum
//! actors, one quantum centralized critic, replay, trainer — wired
//! end-to-end across all five crates.

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;

fn short_config() -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default();
    c.env.episode_limit = 12;
    c.train.epochs = 2;
    c
}

#[test]
fn proposed_framework_matches_fig2_shapes() {
    let config = short_config();
    let trainer = build_trainer(FrameworkKind::Proposed, &config).expect("builds");
    // N actors, each over the per-agent observation only.
    assert_eq!(trainer.actors().len(), 4);
    for actor in trainer.actors() {
        assert_eq!(actor.obs_dim(), 4, "actors are decentralized: obs only");
        assert_eq!(actor.n_actions(), 4);
        assert_eq!(actor.param_count(), 50);
    }
    // One centralized critic over the concatenated global state.
    assert_eq!(trainer.critic().state_dim(), 16);
    assert_eq!(trainer.critic().param_count(), 50);
}

#[test]
fn critic_state_is_concatenated_observations() {
    // Fig. 2 annotates the critic input as n(qubit)·n(agent)/4 encoder
    // layers; the state really is the concatenation of the observations.
    let config = short_config();
    let mut env = SingleHopEnv::new(config.env.clone(), 3).expect("valid env");
    let (obs, state) = env.reset();
    assert_eq!(state, obs.concat());
    let out = env.step(&[0, 1, 2, 3]).expect("step");
    assert_eq!(out.state, out.observations.concat());
}

#[test]
fn quantum_critic_encoder_depth_matches_fig2_annotation() {
    // n(qubit) * n(agent) / 4 layers for the critic: 4·4/4 = 4 layers of
    // 4 rotations = 16 encoder gates.
    let config = short_config();
    let critic = QuantumCritic::new(4, config.env.state_dim(), 50, 0).expect("builds");
    let encoder_gates = critic
        .model()
        .circuit()
        .ops()
        .iter()
        .filter(|op| matches!(op.angle(), Some(qmarl::vqc::ir::Angle::Input(_))))
        .count();
    assert_eq!(encoder_gates, 16);
    assert_eq!(
        qmarl::vqc::encoder::encoder_depth(4, config.env.state_dim()),
        config.train.n_qubits * config.env.n_edges / 4
    );
}

#[test]
fn actors_execute_decentralized() {
    // Decentralized execution: each actor's decision depends only on its
    // own observation — changing another agent's observation leaves the
    // policy untouched.
    let actor = QuantumActor::new(4, 4, 4, 50, 9).expect("builds");
    let obs_a = [0.2, 0.4, 0.6, 0.8];
    let p1 = actor.probs(&obs_a).expect("probs");
    let p2 = actor.probs(&obs_a).expect("probs");
    assert_eq!(
        p1, p2,
        "policy is a pure function of the agent's own observation"
    );
}

#[test]
fn every_framework_trains_two_epochs() {
    let config = short_config();
    for kind in FrameworkKind::TRAINABLE {
        let mut trainer = build_trainer(kind, &config).expect("builds");
        trainer.train(2).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(trainer.history().len(), 2, "{kind}");
        for rec in trainer.history().records() {
            assert!(
                rec.metrics.total_reward <= 0.0,
                "{kind}: eq. (1) is a penalty"
            );
            assert!(rec.critic_loss.is_finite(), "{kind}");
            assert!(rec.mean_entropy >= 0.0, "{kind}");
        }
    }
}

#[test]
fn hybrid_comp1_mixes_quantum_actors_with_classical_critic() {
    let config = short_config();
    let report = parameter_report(FrameworkKind::Comp1, &config).expect("builds");
    assert_eq!(report.per_actor, 50, "comp1 keeps the quantum actors");
    assert!(
        report.critic < 50,
        "comp1's classical critic respects the budget"
    );

    let report3 = parameter_report(FrameworkKind::Comp3, &config).expect("builds");
    assert!(report3.per_actor > 40_000);
    assert!(report3.critic > 40_000);
}

#[test]
fn trained_policies_roll_out_through_plain_env_api() {
    // The decentralized policies must be executable without the trainer —
    // pure CTDE: train centralized, execute decentralized.
    let config = short_config();
    let mut trainer = build_trainer(FrameworkKind::Proposed, &config).expect("builds");
    trainer.train(1).expect("trains");
    let params: Vec<Vec<f64>> = trainer.actors().iter().map(|a| a.params()).collect();

    // Rebuild standalone actors from exported weights.
    let mut actors: Vec<QuantumActor> = (0..4)
        .map(|n| {
            QuantumActor::new(4, 4, 4, 50, config.train.seed.wrapping_add(1000 + n as u64))
                .expect("builds")
        })
        .collect();
    for (a, p) in actors.iter_mut().zip(&params) {
        a.set_params(p).expect("same architecture");
    }

    let mut env = SingleHopEnv::new(config.env.clone(), 42).expect("valid env");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let metrics = rollout_episode(&mut env, |obs| {
        obs.iter()
            .enumerate()
            .map(|(n, o)| select_action(&actors[n].probs(o).expect("probs"), true, &mut rng))
            .collect()
    })
    .expect("rollout");
    assert_eq!(metrics.len, config.env.episode_limit);
}
