//! Integration: the execution-backend axis.
//!
//! * `Ideal` is the default and **bit-identical** to pre-backend
//!   behaviour (assert_eq, no tolerances).
//! * `Sampled`/`Noisy`/`Trajectory` are deterministic under the
//!   derived-seed contract: worker-count invariant, reproducible run to
//!   run, and bit-identical between the serial and batched execution
//!   paths.
//! * `Sampled { shots }` converges statistically to `Ideal`, and
//!   `Trajectory { samples }` to the exact `Noisy` density result, within
//!   `z_standard_error` bounds on every registered scenario's actor
//!   shape.
//! * The stochastic backends train end-to-end on the paper scenario via
//!   the batched parameter-shift queue.

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;
use qmarl::qsim::shots::z_standard_error;
use qmarl::runtime::prelude::*;
use qmarl::vqc::prelude::GradMethod;

fn small_train(seed: u64) -> TrainConfig {
    let mut t = TrainConfig::paper_default();
    t.seed = seed;
    t
}

/// Per-scenario actor shapes, mirroring `build_scenario_trainer`.
fn scenario_actor(spec: &ScenarioSpec, seed: u64) -> QuantumActor {
    let env = spec.build(seed).expect("scenario builds");
    QuantumActor::new(
        env.n_actions().max(4),
        env.obs_dim(),
        env.n_actions(),
        50.max(2 * env.n_actions() + 8),
        seed,
    )
    .expect("actor builds")
}

#[test]
fn ideal_backend_is_the_default_and_bit_identical() {
    // Spot-check the enum default and spec spelling.
    assert!(ExecutionBackend::default().is_ideal());
    assert_eq!(
        "ideal".parse::<ExecutionBackend>().unwrap(),
        ExecutionBackend::Ideal
    );

    // Actor/critic built with no backend vs an explicit Ideal backend:
    // identical probabilities, values and gradients, with no tolerances.
    let plain = QuantumActor::new(4, 4, 4, 50, 3).unwrap();
    let explicit = QuantumActor::new(4, 4, 4, 50, 3)
        .unwrap()
        .with_backend(ExecutionBackend::Ideal);
    assert!(explicit.backend().is_ideal());
    let obs: Vec<Vec<f64>> = (0..5)
        .map(|b| (0..4).map(|i| 0.07 * (b * 4 + i) as f64 - 0.3).collect())
        .collect();
    for o in &obs {
        assert_eq!(plain.probs(o).unwrap(), explicit.probs(o).unwrap());
        assert_eq!(
            plain.policy_gradient(o, 1, 0.8).unwrap(),
            explicit.policy_gradient(o, 1, 0.8).unwrap()
        );
    }
    let critic_plain = QuantumCritic::new(4, 16, 50, 5).unwrap();
    let critic_explicit = QuantumCritic::new(4, 16, 50, 5)
        .unwrap()
        .with_backend(ExecutionBackend::Ideal);
    let state: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
    assert_eq!(
        critic_plain.value_with_gradient(&state).unwrap(),
        critic_explicit.value_with_gradient(&state).unwrap()
    );

    // Whole-training equivalence: two epochs of the paper stack produce
    // identical histories and identical final parameters.
    let run = |backend: Option<ExecutionBackend>| {
        let mut t = build_scenario_trainer(
            "single-hop",
            &backend.unwrap_or_default(),
            &small_train(11),
            Some(10),
        )
        .unwrap();
        t.train(2).unwrap();
        (
            t.history().clone(),
            t.critic().params(),
            t.actors().iter().map(|a| a.params()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(None), run(Some(ExecutionBackend::Ideal)));
}

#[test]
fn sampled_expectations_are_worker_count_invariant() {
    let actor = scenario_actor(find_scenario("single-hop").unwrap(), 7);
    let compiled = actor.compiled().clone();
    let model = compiled.model().clone();
    let params = actor.params();
    let obs: Vec<Vec<f64>> = (0..6)
        .map(|b| (0..4).map(|i| 0.09 * (b * 4 + i) as f64).collect())
        .collect();
    let backend = ExecutionBackend::Sampled {
        shots: 512,
        seed: 21,
    };
    let run = |workers: usize| {
        let vqc = CompiledVqc::new(model.clone())
            .with_executor(BatchExecutor::new(workers))
            .with_backend(backend.clone());
        let outs = vqc.forward_batch(&obs, &params).unwrap();
        let grads = vqc.forward_with_jacobian_batch(&obs, &params).unwrap();
        (outs, grads)
    };
    let (outs1, grads1) = run(1);
    for workers in [4usize, 8] {
        let (outs, grads) = run(workers);
        assert_eq!(outs, outs1, "workers={workers}");
        assert_eq!(grads.len(), grads1.len());
        for ((o, j), (o1, j1)) in grads.iter().zip(&grads1) {
            assert_eq!(o, o1, "workers={workers}");
            assert_eq!(j.max_abs_diff(j1), 0.0, "workers={workers}");
        }
    }
}

#[test]
fn sampled_converges_to_ideal_on_every_registered_scenario() {
    let shots = 20_000;
    for spec in scenarios() {
        let sampled_actor =
            scenario_actor(spec, 13).with_backend(ExecutionBackend::Sampled { shots, seed: 5 });
        let ideal_actor = scenario_actor(spec, 13);
        let obs: Vec<f64> = (0..ideal_actor.obs_dim())
            .map(|i| 0.1 + 0.07 * i as f64)
            .collect();
        // Compare pre-softmax logits: with a fresh affine head they are
        // raw ⟨Z⟩ values, so the binomial standard error applies exactly.
        let ideal = ideal_actor
            .compiled()
            .forward(&obs, &ideal_actor.params())
            .unwrap();
        let sampled = sampled_actor
            .compiled()
            .forward(&obs, &sampled_actor.params())
            .unwrap();
        for (q, (s, e)) in sampled.iter().zip(&ideal).enumerate() {
            let bound = 6.0 * z_standard_error(*e, shots).max(1e-4);
            assert!(
                (s - e).abs() < bound,
                "{} wire {q}: sampled {s} vs ideal {e} (6σ = {bound})",
                spec.name()
            );
        }
    }
}

#[test]
fn sampled_backend_trains_end_to_end_deterministically() {
    let backend: ExecutionBackend = "sampled:shots=96:seed=2".parse().unwrap();
    let run = || {
        let mut t =
            build_scenario_trainer("single-hop", &backend, &small_train(17), Some(8)).unwrap();
        t.train(2).unwrap();
        (
            t.history().clone(),
            t.critic().params(),
            t.actors().iter().map(|a| a.params()).collect::<Vec<_>>(),
        )
    };
    let (history, critic_params, actor_params) = run();
    assert_eq!(history.len(), 2);
    for r in history.records() {
        assert!(r.critic_loss.is_finite() && r.critic_loss > 0.0);
        assert!(r.mean_entropy > 0.0);
    }
    // Parameters moved under shot-noisy parameter-shift gradients.
    let fresh = build_scenario_trainer("single-hop", &backend, &small_train(17), Some(8)).unwrap();
    assert!(fresh
        .critic()
        .params()
        .iter()
        .zip(&critic_params)
        .any(|(a, b)| (a - b).abs() > 1e-12));
    // Bit-identical replay from the same seeds: the derived-seed
    // contract covers the full training loop.
    assert_eq!(run(), (history, critic_params, actor_params));
}

#[test]
fn trajectory_expectations_are_worker_count_invariant() {
    let actor = scenario_actor(find_scenario("single-hop").unwrap(), 7);
    let compiled = actor.compiled().clone();
    let model = compiled.model().clone();
    let params = actor.params();
    let obs: Vec<Vec<f64>> = (0..6)
        .map(|b| (0..4).map(|i| 0.09 * (b * 4 + i) as f64).collect())
        .collect();
    let backend: ExecutionBackend = "trajectory:p1=0.01:p2=0.02:samples=16:seed=21"
        .parse()
        .unwrap();
    let run = |workers: usize| {
        let vqc = CompiledVqc::new(model.clone())
            .with_executor(BatchExecutor::new(workers))
            .with_backend(backend.clone());
        let outs = vqc.forward_batch(&obs, &params).unwrap();
        let grads = vqc.forward_with_jacobian_batch(&obs, &params).unwrap();
        (outs, grads)
    };
    let (outs1, grads1) = run(1);
    for workers in [4usize, 8] {
        let (outs, grads) = run(workers);
        assert_eq!(outs, outs1, "workers={workers}");
        assert_eq!(grads.len(), grads1.len());
        for ((o, j), (o1, j1)) in grads.iter().zip(&grads1) {
            assert_eq!(o, o1, "workers={workers}");
            assert_eq!(j.max_abs_diff(j1), 0.0, "workers={workers}");
        }
    }
}

#[test]
fn trajectory_converges_to_noisy_density_on_every_registered_scenario() {
    // Trajectory sampling is an unbiased estimator of the density-matrix
    // evolution for Pauli channels, so its per-wire ⟨Z⟩ error obeys the
    // same binomial standard error the sampled backend does — with the
    // exact Noisy density expectations as the reference.
    let samples = 2000;
    for spec in scenarios() {
        let traj_actor = scenario_actor(spec, 13).with_backend(
            format!("trajectory:p1=0.01:p2=0.02:samples={samples}:seed=5")
                .parse()
                .unwrap(),
        );
        let dense_actor =
            scenario_actor(spec, 13).with_backend("noisy:p1=0.01:p2=0.02".parse().unwrap());
        let obs: Vec<f64> = (0..dense_actor.obs_dim())
            .map(|i| 0.1 + 0.07 * i as f64)
            .collect();
        let exact = dense_actor
            .compiled()
            .forward(&obs, &dense_actor.params())
            .unwrap();
        let est = traj_actor
            .compiled()
            .forward(&obs, &traj_actor.params())
            .unwrap();
        for (q, (a, e)) in est.iter().zip(&exact).enumerate() {
            let bound = 6.0 * z_standard_error(*e, samples).max(1e-4);
            assert!(
                (a - e).abs() < bound,
                "{} wire {q}: trajectory {a} vs density {e} (6σ = {bound})",
                spec.name()
            );
        }
    }
}

#[test]
fn trajectory_backend_trains_end_to_end_deterministically() {
    let backend: ExecutionBackend = "trajectory:p1=0.004:p2=0.008:samples=12:seed=2"
        .parse()
        .unwrap();
    let run = || {
        let mut t =
            build_scenario_trainer("single-hop", &backend, &small_train(19), Some(8)).unwrap();
        t.train(2).unwrap();
        (
            t.history().clone(),
            t.critic().params(),
            t.actors().iter().map(|a| a.params()).collect::<Vec<_>>(),
        )
    };
    let (history, critic_params, actor_params) = run();
    assert_eq!(history.len(), 2);
    for r in history.records() {
        assert!(r.critic_loss.is_finite() && r.critic_loss > 0.0);
        assert!(r.mean_entropy > 0.0);
    }
    // Parameters moved under trajectory-noisy parameter-shift gradients.
    let fresh = build_scenario_trainer("single-hop", &backend, &small_train(19), Some(8)).unwrap();
    assert!(fresh
        .critic()
        .params()
        .iter()
        .zip(&critic_params)
        .any(|(a, b)| (a - b).abs() > 1e-12));
    // Bit-identical replay from the same seeds.
    assert_eq!(run(), (history, critic_params, actor_params));
}

#[test]
fn noisy_backend_trains_and_differs_from_ideal() {
    let backend: ExecutionBackend = "noisy:p1=0.004:p2=0.008".parse().unwrap();
    let mut noisy =
        build_scenario_trainer("single-hop", &backend, &small_train(23), Some(6)).unwrap();
    let mut ideal = build_scenario_trainer(
        "single-hop",
        &ExecutionBackend::Ideal,
        &small_train(23),
        Some(6),
    )
    .unwrap();
    noisy.train(1).unwrap();
    ideal.train(1).unwrap();
    assert!(noisy.history().records()[0].critic_loss.is_finite());
    // Channel noise changes the training trajectory.
    assert_ne!(noisy.critic().params(), ideal.critic().params());
}

#[test]
fn grad_method_requests_route_by_backend_capability() {
    // On a stochastic backend every gradient request lands on the
    // parameter-shift queue, so Adjoint and ParameterShift configurations
    // produce bit-identical gradients there — while on Ideal they differ
    // at floating-point level (different algorithms).
    let backend = ExecutionBackend::Sampled {
        shots: 256,
        seed: 31,
    };
    let obs = [0.2, 0.6, 0.4, 0.8];
    let gradient = |method: GradMethod, backend: &ExecutionBackend| {
        QuantumActor::new(4, 4, 4, 50, 9)
            .unwrap()
            .with_grad_method(method)
            .with_backend(backend.clone())
            .policy_gradient(&obs, 2, 1.1)
            .unwrap()
    };
    assert_eq!(
        gradient(GradMethod::Adjoint, &backend),
        gradient(GradMethod::ParameterShift, &backend)
    );
    let sampled = gradient(GradMethod::ParameterShift, &backend);
    let exact = gradient(GradMethod::ParameterShift, &ExecutionBackend::Ideal);
    assert_ne!(sampled, exact, "shot noise must reach the gradients");
}
