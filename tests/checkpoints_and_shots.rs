//! Integration: checkpoint round-trips through real trained frameworks,
//! and finite-shot execution of trained policies.

use qmarl::core::prelude::*;
use qmarl::neural::prelude::softmax;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_config(seed: u64) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default();
    c.env.episode_limit = 10;
    c.train.seed = seed;
    c
}

#[test]
fn checkpoint_restores_identical_policy() {
    let cfg = tiny_config(3);
    let mut trainer = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
    trainer.train(2).expect("trains");
    let snap = FrameworkSnapshot::capture("Proposed", &trainer);

    // Through the file format.
    let dir = std::env::temp_dir().join("qmarl_integration_ckpt");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("proposed.ckpt");
    snap.save(&path).expect("saves");
    let loaded = FrameworkSnapshot::load(&path).expect("loads");
    std::fs::remove_file(&path).ok();

    // Restored actors produce the identical action distribution.
    let mut actors = build_actors(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
    let mut critic = build_critic(FrameworkKind::Proposed, &cfg.env, &cfg.train).expect("builds");
    loaded
        .restore(&mut actors, critic.as_mut())
        .expect("restores");
    let obs = [0.3, 0.7, 0.2, 0.8];
    let original = trainer.actors()[0].probs(&obs).expect("probs");
    let restored = actors[0].probs(&obs).expect("probs");
    assert_eq!(
        original, restored,
        "checkpoint must restore the exact policy"
    );
    let state: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
    assert_eq!(
        trainer.critic().value(&state).expect("value"),
        critic.value(&state).expect("value")
    );
}

#[test]
fn checkpoints_work_for_classical_frameworks_too() {
    let cfg = tiny_config(5);
    let mut trainer = build_trainer(FrameworkKind::Comp2, &cfg).expect("builds");
    trainer.train(1).expect("trains");
    let snap = FrameworkSnapshot::capture("Comp2", &trainer);
    let text = snap.to_text();
    let parsed = FrameworkSnapshot::from_text(&text).expect("parses");
    assert_eq!(parsed, snap);
}

#[test]
fn shot_based_policy_approaches_exact_policy() {
    let actor = QuantumActor::new(4, 4, 4, 50, 13).expect("builds");
    let obs = [0.4, 0.1, 0.8, 0.55];
    let exact = actor.probs(&obs).expect("probs");
    let mut rng = StdRng::seed_from_u64(1);
    // Average many finite-shot policies: the mean must approach exact.
    let mut acc = vec![0.0; 4];
    let reps = 60;
    for _ in 0..reps {
        let logits = actor
            .model()
            .forward_shots(&obs, &actor.params(), 1024, &mut rng)
            .expect("shot forward");
        for (a, p) in acc.iter_mut().zip(softmax(&logits)) {
            *a += p / reps as f64;
        }
    }
    for (e, s) in exact.iter().zip(&acc) {
        assert!((e - s).abs() < 0.02, "exact {e} vs shot-mean {s}");
    }
}

#[test]
fn independent_trainer_runs_alongside_ctde() {
    // Both trainers accept the same actors and run on the same env config;
    // the CTDE one needs a centralized critic, the independent one local
    // critics. This is the wiring the ablation binary relies on.
    let cfg = tiny_config(17);
    let mut ctde = build_trainer(FrameworkKind::Proposed, &cfg).expect("builds");
    ctde.train(2).expect("trains");

    let env = qmarl::env::prelude::SingleHopEnv::new(cfg.env.clone(), 17).expect("valid env");
    let (actors, critics) = build_independent_quantum(&cfg.env, &cfg.train).expect("builds");
    let mut indep =
        IndependentTrainer::new(env, actors, critics, cfg.train.clone()).expect("builds");
    indep.train(2).expect("trains");

    assert_eq!(ctde.history().len(), 2);
    assert_eq!(indep.history().len(), 2);
    // Same environment, same penalty structure: both report valid records.
    for h in [ctde.history(), indep.history()] {
        for r in h.records() {
            assert!(r.metrics.total_reward <= 0.0);
            assert!(r.critic_loss.is_finite());
        }
    }
}
