//! Property: the batched update sweep is **bit-identical** to the serial
//! reference sweep — for every registered scenario, for quantum and MLP
//! stacks, across batch sizes {1, 4, 16}.
//!
//! This is the correctness contract of the batched gradient engine
//! (`runtime::prebound::prebind_adjoint` + the trainer's
//! `UpdateEngine::Batched`): the engines may only change *how* gradients
//! are computed, never a single bit of which updates are applied. The
//! assertions compare whole training histories and every final parameter
//! with `assert_eq!`, not tolerances.

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;
use qmarl::vqc::prelude::GradMethod;

/// A short horizon keeps 16-episode sweeps affordable in debug builds
/// without changing what the property covers.
const EPISODE_LIMIT: usize = 4;

fn scenario_env(name: &str, seed: u64) -> Box<dyn ScenarioEnv> {
    let params = ScenarioParams::seeded(seed).with_episode_limit(EPISODE_LIMIT);
    build_scenario_with(name, &params).expect("registered scenario builds")
}

/// Quantum stack sized to the scenario's shapes: one readout wire per
/// action (so wide scenarios get wider registers), the critic always on
/// the paper's 4-qubit folded-encoder register.
fn quantum_trainer(
    name: &str,
    seed: u64,
    grad_method: GradMethod,
    engine: UpdateEngine,
) -> CtdeTrainer<Box<dyn ScenarioEnv>> {
    let env = scenario_env(name, seed);
    let n_qubits = env.n_actions().max(4);
    let actors: Vec<Box<dyn Actor>> = (0..env.n_agents())
        .map(|n| {
            Box::new(
                QuantumActor::new(
                    n_qubits,
                    env.obs_dim(),
                    env.n_actions(),
                    50.max(2 * env.n_actions() + 8),
                    seed + n as u64,
                )
                .expect("actor builds")
                .with_grad_method(grad_method),
            ) as Box<dyn Actor>
        })
        .collect();
    let critic = Box::new(
        QuantumCritic::new(4, env.state_dim(), 50, seed + 100)
            .expect("critic builds")
            .with_grad_method(grad_method),
    );
    let mut config = TrainConfig::paper_default();
    config.seed = seed;
    config.replay_capacity = 16;
    let mut t = CtdeTrainer::new(env, actors, critic, config).expect("trainer builds");
    t.set_update_engine(engine);
    t
}

fn classical_trainer(
    name: &str,
    seed: u64,
    engine: UpdateEngine,
) -> CtdeTrainer<Box<dyn ScenarioEnv>> {
    let env = scenario_env(name, seed);
    let actors: Vec<Box<dyn Actor>> = (0..env.n_agents())
        .map(|n| {
            Box::new(
                ClassicalActor::new(&[env.obs_dim(), 5, env.n_actions()], seed + n as u64)
                    .expect("actor builds"),
            ) as Box<dyn Actor>
        })
        .collect();
    let critic =
        Box::new(ClassicalCritic::new(&[env.state_dim(), 2, 1], seed).expect("critic builds"));
    let mut config = TrainConfig::paper_default();
    config.seed = seed;
    config.replay_capacity = 16;
    let mut t = CtdeTrainer::new(env, actors, critic, config).expect("trainer builds");
    t.set_update_engine(engine);
    t
}

/// Trains one vectorized epoch of `batch` episodes (so the sweep covers a
/// `batch`-episode minibatch) and returns everything the equivalence
/// check compares.
fn run_epoch(
    mut t: CtdeTrainer<Box<dyn ScenarioEnv>>,
    batch: usize,
) -> (TrainingHistory, Vec<Vec<f64>>, Vec<f64>) {
    t.run_epoch_vec(batch, batch.min(4)).expect("epoch runs");
    (
        t.history().clone(),
        t.actors().iter().map(|a| a.params()).collect(),
        t.critic().params(),
    )
}

#[test]
fn batched_sweep_is_bit_identical_for_every_scenario() {
    for spec in scenarios() {
        for &batch in &[1usize, 4, 16] {
            let seed = 1000 + batch as u64;
            let serial = run_epoch(
                quantum_trainer(spec.name(), seed, GradMethod::Adjoint, UpdateEngine::Serial),
                batch,
            );
            let batched = run_epoch(
                quantum_trainer(
                    spec.name(),
                    seed,
                    GradMethod::Adjoint,
                    UpdateEngine::Batched,
                ),
                batch,
            );
            assert_eq!(
                serial,
                batched,
                "quantum stack drifted: scenario {} batch {batch}",
                spec.name()
            );

            let serial = run_epoch(
                classical_trainer(spec.name(), seed, UpdateEngine::Serial),
                batch,
            );
            let batched = run_epoch(
                classical_trainer(spec.name(), seed, UpdateEngine::Batched),
                batch,
            );
            assert_eq!(
                serial,
                batched,
                "MLP stack drifted: scenario {} batch {batch}",
                spec.name()
            );
        }
    }
}

#[test]
fn batched_sweep_is_bit_identical_under_parameter_shift() {
    // Adjoint unavailable (hardware-rule gradients requested): the batch
    // engine falls back to the flat parameter-shift queue, which must be
    // just as bit-exact against the serial shift path.
    for &batch in &[1usize, 4] {
        let seed = 2000 + batch as u64;
        let serial = run_epoch(
            quantum_trainer(
                "single-hop",
                seed,
                GradMethod::ParameterShift,
                UpdateEngine::Serial,
            ),
            batch,
        );
        let batched = run_epoch(
            quantum_trainer(
                "single-hop",
                seed,
                GradMethod::ParameterShift,
                UpdateEngine::Batched,
            ),
            batch,
        );
        assert_eq!(serial, batched, "parameter-shift drifted at batch {batch}");
    }
}
