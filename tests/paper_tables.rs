//! Integration: the paper's tables and quoted numbers, asserted against
//! the live implementation (Table I, Table II, Sec. IV-C budgets, the
//! Sec. IV-D achievability arithmetic).

use qmarl::core::prelude::*;
use qmarl::env::prelude::*;

#[test]
fn table1_mdp_spaces() {
    let config = ExperimentConfig::paper_default();
    let env = SingleHopEnv::new(config.env.clone(), 0).expect("valid config");
    // Observation o = {q_e(t), q_e(t−1)} ∪ {q_c,k}: 2 + K entries.
    assert_eq!(env.obs_dim(), 2 + config.env.n_clouds);
    // Action space A = I × P.
    assert_eq!(
        env.n_actions(),
        config.env.n_clouds * config.env.packet_amounts.len()
    );
    // State = concatenation over N agents.
    assert_eq!(env.state_dim(), config.env.n_edges * env.obs_dim());

    // The flat layout is destination-major.
    let space = env.action_space();
    let a0 = space.decode(0).expect("in range");
    assert_eq!((a0.destination, a0.amount), (0, 0.1));
    let a3 = space.decode(3).expect("in range");
    assert_eq!((a3.destination, a3.amount), (1, 0.2));
}

#[test]
fn table2_constants() {
    let c = ExperimentConfig::paper_default();
    assert_eq!((c.env.n_clouds, c.env.n_edges), (2, 4));
    assert_eq!(c.env.packet_amounts, vec![0.1, 0.2]);
    assert_eq!((c.env.w_p, c.env.w_r), (0.3, 4.0));
    assert_eq!(c.env.cloud_departure, 0.3);
    assert_eq!(c.env.q_max, 1.0);
    assert_eq!(c.train.n_qubits, 4);
    assert_eq!((c.train.lr_actor, c.train.lr_critic), (1e-4, 1e-5));
    assert_eq!((c.train.actor_params, c.train.critic_params), (50, 50));
    c.validate().expect("the paper's configuration is valid");
}

#[test]
fn section4c_parameter_budgets() {
    let c = ExperimentConfig::paper_default();
    let budgets: Vec<(FrameworkKind, usize, usize)> = FrameworkKind::TRAINABLE
        .iter()
        .map(|&k| {
            let r = parameter_report(k, &c).expect("builds");
            (k, r.per_actor, r.critic)
        })
        .collect();
    // Proposed / Comp1 / Comp2 live at the 50-parameter budget…
    for &(k, actor, critic) in &budgets[..3] {
        assert!((37..=50).contains(&actor), "{k} actor {actor}");
        assert!((37..=50).contains(&critic), "{k} critic {critic}");
    }
    // …Comp3 is the unconstrained > 40 K baseline.
    let (_, a3, c3) = budgets[3];
    assert!(a3 > 40_000 && c3 > 40_000);
}

#[test]
fn random_walk_calibration_matches_paper_scale() {
    // The paper reports −33.2 for the random walk; our T = 300
    // calibration lands within ±3 of it (see EXPERIMENTS.md).
    let config = ExperimentConfig::paper_default();
    let mut env = SingleHopEnv::new(config.env.clone(), 1).expect("valid config");
    let rw = random_walk_baseline(&mut env, 150, 7).expect("runs");
    assert!(
        (rw.total_reward - (-33.2)).abs() < 3.0,
        "random walk {:.1} vs paper −33.2",
        rw.total_reward
    );
    // And the Fig. 3(b–d) ranges.
    assert!(
        (0.45..0.55).contains(&rw.avg_queue),
        "avg queue {}",
        rw.avg_queue
    );
    assert!((0.0..0.15).contains(&rw.empty_ratio));
    assert!((0.0..0.2).contains(&rw.overflow_ratio));
}

#[test]
fn achievability_reproduces_paper_percentages() {
    // Sec. IV-D1 quotes: Proposed −3.0 → 90.9%, Comp1 −16.6 → 49.8%,
    // Comp2 −22.5 → 33.2% (vs 32.2% by the formula — the paper rounds),
    // Comp3 −2.8 → 91.5% against the −33.2 random walk.
    let rw = -33.2;
    assert!((achievability(-3.0, rw) - 0.909).abs() < 0.01);
    assert!((achievability(-16.6, rw) - 0.50).abs() < 0.01);
    assert!((achievability(-22.5, rw) - 0.322).abs() < 0.011);
    assert!((achievability(-2.8, rw) - 0.915).abs() < 0.01);
}

#[test]
fn reward_uses_w_r_weighting() {
    // Doubling w_R doubles only the overflow penalty.
    let mut cfg = EnvConfig::paper_default();
    cfg.init_queue = InitQueue::Fixed(1.0);
    cfg.cloud_departure = 0.0;
    cfg.arrival = ArrivalProcess::Uniform { max: 0.0 };
    let run = |w_r: f64| {
        let mut cfg = cfg.clone();
        cfg.w_r = w_r;
        let mut env = SingleHopEnv::new(cfg, 5).expect("valid config");
        env.reset();
        env.step(&[1, 1, 1, 1]).expect("step").reward
    };
    let r1 = run(4.0);
    let r2 = run(8.0);
    assert!((r2 / r1 - 2.0).abs() < 1e-9, "r1={r1}, r2={r2}");
}
